//! The CLI subcommands.

use crate::args::{parse, Args};
use ner_core::persist::Checkpoint;
use ner_core::prelude::*;
use ner_corpus::noise::{corrupt_dataset, NoiseModel};
use ner_corpus::{GeneratorConfig, NewsGenerator};
use ner_text::conll;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;
use std::io::Read;

type CmdResult = Result<(), Box<dyn Error>>;

/// `generate` — write a synthetic CoNLL corpus.
pub fn generate(raw: Vec<String>) -> CmdResult {
    let a: Args = parse(raw, &["out", "n", "seed", "unseen-rate", "scheme"])?;
    let out = a.require("out")?.to_string();
    let n = a.get_parsed("n", 200usize)?;
    let seed = a.get_parsed("seed", 42u64)?;
    let unseen = a.get_parsed("unseen-rate", 0.0f64)?;
    let scheme = parse_scheme(a.get("scheme").unwrap_or("bio"))?;

    let cfg = GeneratorConfig {
        unseen_entity_rate: unseen,
        fine_grained: a.flag("fine-grained"),
        annotate_nested: a.flag("nested"),
        institution_rate: if a.flag("nested") { 0.4 } else { 0.15 },
        ..GeneratorConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = NewsGenerator::new(cfg).dataset(&mut rng, n);
    if a.flag("noisy") {
        ds = corrupt_dataset(&ds, &NoiseModel::social_media(), &mut rng);
    }
    std::fs::write(&out, conll::write_conll(&ds.sentences, scheme))?;
    let stats = ds.stats();
    println!(
        "wrote {} sentences / {} tokens / {} entities ({} types) to {out}",
        stats.sentences, stats.tokens, stats.entities, stats.entity_types
    );
    Ok(())
}

/// `train` — fit a preset on a CoNLL file, checkpoint to JSON.
pub fn train(raw: Vec<String>) -> CmdResult {
    let a = parse(raw, &["train", "dev", "model", "preset", "epochs", "seed", "scheme", "lr"])?;
    let train_path = a.require("train")?.to_string();
    let model_path = a.require("model")?.to_string();
    let preset_name = a.get("preset").unwrap_or("charcnn-bilstm-crf");
    let epochs = a.get_parsed("epochs", 12usize)?;
    let seed = a.get_parsed("seed", 42u64)?;
    let lr = a.get_parsed("lr", 0.01f32)?;
    let scheme = parse_scheme(a.get("scheme").unwrap_or("bio"))?;

    let mut cfg = ner_core::zoo::preset(preset_name)
        .ok_or_else(|| format!("unknown preset {preset_name:?}; run `neural-ner zoo`"))?;
    cfg.scheme = scheme;
    // Presets declaring pretrained embeddings fall back to trainable random
    // tables in the CLI (no embedding file plumbing here).
    if matches!(cfg.word, ner_core::config::WordRepr::Pretrained { .. }) {
        cfg.word = ner_core::config::WordRepr::Random { dim: 32 };
    }

    let train_ds = read_dataset(&train_path, scheme)?;
    let dev_ds = match a.get("dev") {
        Some(p) => Some(read_dataset(p, scheme)?),
        None => None,
    };
    println!(
        "training {} ({}) on {} sentences ...",
        preset_name,
        cfg.signature(),
        train_ds.len()
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let encoder = SentenceEncoder::from_dataset(&train_ds, scheme, 1)
        .with_features(cfg.use_features);
    let mut model = NerModel::new(cfg, &encoder, None, &mut rng);
    let train_enc = encoder.encode_dataset(&train_ds, None);
    let dev_enc = dev_ds.map(|d| encoder.encode_dataset(&d, None));
    let tc = TrainConfig { epochs, lr, ..TrainConfig::default() };
    let report = ner_core::trainer::train(&mut model, &train_enc, dev_enc.as_deref(), &tc, &mut rng);
    if !a.flag("quiet") {
        for e in &report.epochs {
            println!(
                "epoch {:>2}  loss {:>9.4}{}",
                e.epoch,
                e.train_loss,
                e.dev_f1.map_or(String::new(), |f| format!("  dev-F1 {:.2}%", 100.0 * f))
            );
        }
    }
    if let Some(f1) = report.best_dev_f1 {
        println!("best dev F1 {:.2}% at epoch {}", 100.0 * f1, report.best_epoch);
    }

    Checkpoint::capture(&NerPipeline::new(encoder, model)).save(&model_path)?;
    println!("checkpoint written to {model_path}");
    Ok(())
}

/// `eval` — metrics of a checkpoint on a CoNLL file.
pub fn eval(raw: Vec<String>) -> CmdResult {
    let a = parse(raw, &["model", "data"])?;
    let pipeline = Checkpoint::load(a.require("model")?)?.restore()?;
    let scheme = pipeline.encoder.tag_set.scheme();
    let ds = read_dataset(a.require("data")?, scheme)?;
    let encoded = pipeline.encoder.encode_dataset(&ds, None);
    let r = ner_core::trainer::evaluate_model(&pipeline.model, &encoded);
    println!("sentences: {}   gold entities: {}   predicted: {}", encoded.len(), r.gold_entities, r.pred_entities);
    println!(
        "exact micro   P {:.2}%  R {:.2}%  F1 {:.2}%",
        100.0 * r.micro.precision,
        100.0 * r.micro.recall,
        100.0 * r.micro.f1
    );
    println!("exact macro-F1  {:.2}%", 100.0 * r.macro_f1);
    println!("relaxed type F1 {:.2}%   boundary F1 {:.2}%", 100.0 * r.relaxed_type.f1, 100.0 * r.boundary.f1);
    for (ty, prf) in &r.per_type {
        println!(
            "  {ty:<10} P {:.2}%  R {:.2}%  F1 {:.2}%",
            100.0 * prf.precision,
            100.0 * prf.recall,
            100.0 * prf.f1
        );
    }
    Ok(())
}

/// `tag` — annotate raw text (arguments or stdin).
pub fn tag(raw: Vec<String>) -> CmdResult {
    let a = parse(raw, &["model"])?;
    let pipeline = Checkpoint::load(a.require("model")?)?.restore()?;
    let inputs: Vec<String> = if a.positional().is_empty() {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf)?;
        buf.lines().filter(|l| !l.trim().is_empty()).map(str::to_string).collect()
    } else {
        a.positional().to_vec()
    };
    for text in inputs {
        println!("{}", pipeline.extract(&text).render_brackets());
    }
    Ok(())
}

/// `zoo` — list presets.
pub fn zoo(_raw: Vec<String>) -> CmdResult {
    println!("{:<22} {:<44} survey reference", "PRESET", "ARCHITECTURE");
    for entry in ner_core::zoo::zoo() {
        println!("{:<22} {:<44} {}", entry.name, entry.config.signature(), entry.reference);
    }
    Ok(())
}

fn parse_scheme(s: &str) -> Result<TagScheme, Box<dyn Error>> {
    match s.to_lowercase().as_str() {
        "io" => Ok(TagScheme::Io),
        "bio" => Ok(TagScheme::Bio),
        "bioes" | "bilou" | "iobes" => Ok(TagScheme::Bioes),
        other => Err(format!("unknown tag scheme {other:?} (io|bio|bioes)").into()),
    }
}

fn read_dataset(path: &str, scheme: TagScheme) -> Result<Dataset, Box<dyn Error>> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let sentences = conll::read_conll(&text, scheme);
    if sentences.is_empty() {
        return Err(format!("{path} contains no sentences").into());
    }
    Ok(Dataset::new(sentences))
}
