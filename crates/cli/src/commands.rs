//! The CLI subcommands.

use crate::args::{parse, Args};
use ner_core::persist::Checkpoint;
use ner_core::prelude::*;
use ner_corpus::noise::{corrupt_dataset, NoiseModel};
use ner_corpus::{GeneratorConfig, NewsGenerator};
use ner_text::conll;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;
use std::io::Read;

type CmdResult = Result<(), Box<dyn Error>>;

/// `generate` — write a synthetic CoNLL corpus.
pub fn generate(raw: Vec<String>) -> CmdResult {
    let a: Args = parse(raw, &["out", "n", "seed", "unseen-rate", "scheme"])?;
    let out = a.require("out")?.to_string();
    let n = a.get_parsed("n", 200usize)?;
    let seed = a.get_parsed("seed", 42u64)?;
    let unseen = a.get_parsed("unseen-rate", 0.0f64)?;
    let scheme = parse_scheme(a.get("scheme").unwrap_or("bio"))?;

    let cfg = GeneratorConfig {
        unseen_entity_rate: unseen,
        fine_grained: a.flag("fine-grained"),
        annotate_nested: a.flag("nested"),
        institution_rate: if a.flag("nested") { 0.4 } else { 0.15 },
        ..GeneratorConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = NewsGenerator::new(cfg).dataset(&mut rng, n);
    if a.flag("noisy") {
        ds = corrupt_dataset(&ds, &NoiseModel::social_media(), &mut rng);
    }
    std::fs::write(&out, conll::write_conll(&ds.sentences, scheme))?;
    let stats = ds.stats();
    ner_obs::info(format!(
        "wrote {} sentences / {} tokens / {} entities ({} types) to {out}",
        stats.sentences, stats.tokens, stats.entities, stats.entity_types
    ));
    Ok(())
}

/// `train` — fit a preset on a CoNLL file, checkpoint to JSON.
pub fn train(raw: Vec<String>) -> CmdResult {
    let a = parse(
        raw,
        &["train", "dev", "model", "preset", "epochs", "seed", "scheme", "lr", "trainer", "batch"],
    )?;
    let train_path = a.require("train")?.to_string();
    let model_path = a.require("model")?.to_string();
    let preset_name = a.get("preset").unwrap_or("charcnn-bilstm-crf");
    let epochs = a.get_parsed("epochs", 12usize)?;
    let seed = a.get_parsed("seed", 42u64)?;
    let lr = a.get_parsed("lr", 0.01f32)?;
    let scheme = parse_scheme(a.get("scheme").unwrap_or("bio"))?;
    let trainer = match a.get("trainer") {
        Some(s) => s.parse::<TrainerKind>()?,
        None => TrainConfig::default().trainer,
    };
    let batch = a.get_parsed("batch", TrainConfig::default().batch)?;
    if batch == 0 {
        return Err("--batch must be at least 1".into());
    }

    let mut cfg = ner_core::zoo::preset(preset_name)
        .ok_or_else(|| format!("unknown preset {preset_name:?}; run `neural-ner zoo`"))?;
    cfg.scheme = scheme;
    // Presets declaring pretrained embeddings fall back to trainable random
    // tables in the CLI (no embedding file plumbing here).
    if matches!(cfg.word, ner_core::config::WordRepr::Pretrained { .. }) {
        cfg.word = ner_core::config::WordRepr::Random { dim: 32 };
    }

    let train_ds = read_dataset(&train_path, scheme)?;
    let dev_ds = match a.get("dev") {
        Some(p) => Some(read_dataset(p, scheme)?),
        None => None,
    };
    if a.flag("quiet") {
        ner_obs::set_verbosity(ner_obs::Verbosity::Quiet);
    }
    ner_obs::info(format!(
        "training {} ({}) on {} sentences ...",
        preset_name,
        cfg.signature(),
        train_ds.len()
    ));

    let mut rng = StdRng::seed_from_u64(seed);
    let encoder =
        SentenceEncoder::from_dataset(&train_ds, scheme, 1).with_features(cfg.use_features);
    let mut model = NerModel::new(cfg, &encoder, None, &mut rng);
    let train_enc = encoder.encode_dataset(&train_ds, None);
    let dev_enc = dev_ds.map(|d| encoder.encode_dataset(&d, None));
    let tc = TrainConfig { epochs, lr, trainer, batch, ..TrainConfig::default() };
    // Per-epoch progress is emitted by the trainer itself through the
    // observability sinks (stderr at normal verbosity, JSONL when enabled).
    let report =
        ner_core::trainer::train(&mut model, &train_enc, dev_enc.as_deref(), &tc, &mut rng);
    if let Some(f1) = report.best_dev_f1 {
        ner_obs::info(format!("best dev F1 {:.2}% at epoch {}", 100.0 * f1, report.best_epoch));
    }

    Checkpoint::capture(&NerPipeline::new(encoder, model)).save(&model_path)?;
    ner_obs::info(format!("checkpoint written to {model_path}"));
    Ok(())
}

/// `eval` — metrics of a checkpoint on a CoNLL file.
pub fn eval(raw: Vec<String>) -> CmdResult {
    let a = parse(raw, &["model", "data"])?;
    let pipeline = Checkpoint::load(a.require("model")?)?.restore()?;
    let scheme = pipeline.encoder.tag_set.scheme();
    let ds = read_dataset(a.require("data")?, scheme)?;
    let encoded = pipeline.encoder.encode_dataset(&ds, None);
    let r = ner_core::trainer::evaluate_model(&pipeline.model, &encoded);
    println!(
        "sentences: {}   gold entities: {}   predicted: {}",
        encoded.len(),
        r.gold_entities,
        r.pred_entities
    );
    println!(
        "exact micro   P {:.2}%  R {:.2}%  F1 {:.2}%",
        100.0 * r.micro.precision,
        100.0 * r.micro.recall,
        100.0 * r.micro.f1
    );
    println!("exact macro-F1  {:.2}%", 100.0 * r.macro_f1);
    println!(
        "relaxed type F1 {:.2}%   boundary F1 {:.2}%",
        100.0 * r.relaxed_type.f1,
        100.0 * r.boundary.f1
    );
    for (ty, prf) in &r.per_type {
        println!(
            "  {ty:<10} P {:.2}%  R {:.2}%  F1 {:.2}%",
            100.0 * prf.precision,
            100.0 * prf.recall,
            100.0 * prf.f1
        );
    }
    Ok(())
}

/// `tag` — annotate raw text (arguments or stdin).
pub fn tag(raw: Vec<String>) -> CmdResult {
    let a = parse(raw, &["model"])?;
    let pipeline = Checkpoint::load(a.require("model")?)?.restore()?;
    let inputs: Vec<String> = if a.positional().is_empty() {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf)?;
        buf.lines().filter(|l| !l.trim().is_empty()).map(str::to_string).collect()
    } else {
        a.positional().to_vec()
    };
    // Batch annotation fans out over the global thread pool; output order
    // (and content) is identical to tagging one line at a time.
    let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
    for sentence in pipeline.extract_batch(&refs) {
        println!("{}", sentence.render_brackets());
    }
    Ok(())
}

/// `serve` — run the batching HTTP server over a checkpoint.
pub fn serve(raw: Vec<String>) -> CmdResult {
    let a = parse(
        raw,
        &[
            "ckpt",
            "addr",
            "max-batch",
            "max-wait-us",
            "queue-cap",
            "timeout-ms",
            "slo-ms",
            "replicas",
            "poll-shards",
            "read-timeout-ms",
            "trace-ring",
        ],
    )?;
    let ckpt = a.require("ckpt")?.to_string();
    let addr = a.get("addr").unwrap_or("127.0.0.1:8080").to_string();
    let defaults = ner_serve::ServeConfig::default();
    // One pipeline replica per core by default: each gets its own
    // dispatcher thread, compiled plan, and caches.
    let default_replicas =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    let config = ner_serve::ServeConfig {
        max_batch: a.get_parsed("max-batch", defaults.max_batch)?,
        max_wait: std::time::Duration::from_micros(
            a.get_parsed("max-wait-us", defaults.max_wait.as_micros() as u64)?,
        ),
        queue_cap: a.get_parsed("queue-cap", defaults.queue_cap)?,
        request_timeout: std::time::Duration::from_millis(
            a.get_parsed("timeout-ms", defaults.request_timeout.as_millis() as u64)?,
        ),
        slo_p99: std::time::Duration::from_millis(
            a.get_parsed("slo-ms", defaults.slo_p99.as_millis() as u64)?,
        ),
        replicas: a.get_parsed("replicas", default_replicas)?,
        poll_shards: a.get_parsed("poll-shards", defaults.poll_shards)?,
        read_timeout: std::time::Duration::from_millis(
            a.get_parsed("read-timeout-ms", defaults.read_timeout.as_millis() as u64)?,
        ),
        trace_recent: a.get_parsed("trace-ring", defaults.trace_recent)?,
        ..defaults
    };
    if config.max_batch == 0 || config.queue_cap == 0 {
        return Err("--max-batch and --queue-cap must be >= 1".into());
    }
    if config.replicas == 0 || config.poll_shards == 0 {
        return Err("--replicas and --poll-shards must be >= 1".into());
    }
    let pipeline = Checkpoint::load(&ckpt)?.restore()?;
    ner_obs::info(format!(
        "serving {} ({} replicas, {} poll shards, max-batch {}, queue {}, slo {}ms)",
        pipeline.model.cfg.signature(),
        config.replicas,
        config.poll_shards,
        config.max_batch,
        config.queue_cap,
        config.slo_p99.as_millis()
    ));
    let state = ner_serve::ServeState::new(pipeline, Some(ckpt.into()), config);
    let server = ner_serve::Server::bind(addr.as_str(), state)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    server.run()?;
    Ok(())
}

/// `zoo` — list presets.
pub fn zoo(_raw: Vec<String>) -> CmdResult {
    println!("{:<22} {:<44} survey reference", "PRESET", "ARCHITECTURE");
    for entry in ner_core::zoo::zoo() {
        println!("{:<22} {:<44} {}", entry.name, entry.config.signature(), entry.reference);
    }
    Ok(())
}

/// `report` — summarize a JSONL run log produced with `--log-json`.
pub fn report(raw: Vec<String>) -> CmdResult {
    let a = parse(raw, &[])?;
    let pos = a.positional();
    if pos.len() != 1 {
        return Err("usage: neural-ner report RUN.jsonl".into());
    }
    let path = &pos[0];
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;

    let mut manifest: Option<ner_obs::RunManifest> = None;
    let mut warnings: Vec<(u64, String)> = Vec::new();
    let mut epochs: Vec<serde::Value> = Vec::new();
    let mut histograms: Vec<ner_obs::HistogramSummary> = Vec::new();
    let mut spans: Vec<(String, u64, f64, f64)> = Vec::new();
    let mut counters: Vec<(String, f64)> = Vec::new();
    let mut gauges: Vec<(String, f64)> = Vec::new();
    let mut last_t_ms = 0u64;
    let mut n_lines = 0usize;
    for (i, l) in text.lines().enumerate() {
        if l.trim().is_empty() {
            continue;
        }
        let line: ner_obs::LogLine = serde_json::from_str(l)
            .map_err(|e| format!("{path}:{}: not a run-log line ({e:?})", i + 1))?;
        n_lines += 1;
        last_t_ms = last_t_ms.max(line.t_ms);
        match line.event {
            ner_obs::Event::Manifest(m) => manifest = Some(m),
            ner_obs::Event::Message { level, text } if level == "warn" => {
                warnings.push((line.t_ms, text));
            }
            ner_obs::Event::Record { kind, body } if kind == "epoch" => epochs.push(body),
            // `finish` re-emits each histogram; keep the latest per name.
            ner_obs::Event::Histogram(h) => {
                histograms.retain(|o| o.name != h.name);
                histograms.push(h);
            }
            ner_obs::Event::SpanSummary { path, count, total_ms, max_ms } => {
                spans.retain(|(p, ..)| *p != path);
                spans.push((path, count, total_ms, max_ms));
            }
            ner_obs::Event::Counter { name, value } => {
                counters.retain(|(n, _)| *n != name);
                counters.push((name, value));
            }
            ner_obs::Event::Gauge { name, value } => {
                gauges.retain(|(n, _)| *n != name);
                gauges.push((name, value));
            }
            _ => {}
        }
    }
    println!("{path}: {n_lines} events over {:.2} s", last_t_ms as f64 / 1e3);

    if let Some(m) = &manifest {
        println!("\n== run manifest ==");
        println!("name {}   version {}   seed {}", m.name, m.version, m.seed);
        println!("config {}", m.config_signature);
        println!("wall clock {:.2} s   peak tape nodes {}", m.wall_clock_secs, m.peak_tape_nodes);
        if !m.kernel_backend.is_empty() {
            println!("kernel backend {}", m.kernel_backend);
        }
        if !m.final_metrics.is_empty() {
            println!("final metrics:");
            let shown = m.final_metrics.len().min(16);
            for (k, v) in &m.final_metrics[..shown] {
                println!("  {k:<32} {v:.4}");
            }
            if m.final_metrics.len() > shown {
                println!("  ... and {} more", m.final_metrics.len() - shown);
            }
        }
    }

    if !epochs.is_empty() {
        let num = |v: &serde::Value, k: &str| v.get(k).and_then(|x| x.as_f64());
        println!("\n== loss curve ==");
        let gauge = |n: &str| gauges.iter().find(|(g, _)| g == n).map(|(_, v)| *v);
        if let Some(batched) = gauge("train.batched") {
            let backend = if batched != 0.0 { "batched" } else { "per-sentence" };
            let batch = gauge("train.batch").unwrap_or(1.0) as u64;
            match gauge("train.tokens_per_s") {
                Some(tps) => {
                    println!("trainer backend {backend} (batch {batch})   peak {tps:.0} tokens/sec")
                }
                None => println!("trainer backend {backend} (batch {batch})"),
            }
        }
        println!(
            "{:>5}  {:>10}  {:>9}  {:>8}  {:>7}  {:>8}  {:>8}  {:>7}",
            "epoch", "loss", "grad", "lr", "dev-F1", "wall", "tok/s", "skipped"
        );
        for e in &epochs {
            println!(
                "{:>5}  {:>10.4}  {:>9.3}  {:>8.5}  {:>7}  {:>6.1}ms  {:>8}  {:>7}",
                num(e, "epoch").unwrap_or(0.0) as u64,
                num(e, "train_loss").unwrap_or(f64::NAN),
                num(e, "grad_norm").unwrap_or(f64::NAN),
                num(e, "lr").unwrap_or(f64::NAN),
                num(e, "dev_f1").map_or("-".to_string(), |f| format!("{:.2}%", 100.0 * f)),
                num(e, "wall_ms").unwrap_or(0.0),
                num(e, "tokens_per_s").map_or("-".to_string(), |t| format!("{t:.0}")),
                num(e, "skipped_updates").unwrap_or(0.0) as u64,
            );
        }
    }

    if !histograms.is_empty() {
        println!("\n== latency ==");
        for h in &histograms {
            println!(
                "{}: n={}  mean={:.1}  p50={:.1}  p90={:.1}  p99={:.1}  max={:.1}",
                h.name, h.count, h.mean, h.p50, h.p90, h.p99, h.max
            );
            if h.name == "infer.sentence_us" && h.count > 0 && h.mean > 0.0 {
                if let Some((_, tokens)) = counters.iter().find(|(n, _)| n == "infer.tokens") {
                    let secs = h.count as f64 * h.mean / 1e6;
                    println!("  throughput ~{:.0} tokens/sec", tokens / secs);
                }
            }
        }
        // Per-stage share of the planned inference path, when present.
        let stage = |n: &str| histograms.iter().find(|h| h.name == n).map(|h| h.mean);
        if let (Some(e), Some(c), Some(d)) =
            (stage("infer.embed_us"), stage("infer.encode_us"), stage("infer.decode_us"))
        {
            let total = e + c + d;
            if total > 0.0 {
                println!(
                    "stage split (mean): embed {:.0}%  encode {:.0}%  decode {:.0}%",
                    100.0 * e / total,
                    100.0 * c / total,
                    100.0 * d / total
                );
            }
        }
    }

    let counter = |name: &str| counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v);
    if let (Some(hits), Some(misses)) = (counter("infer.cache.hits"), counter("infer.cache.misses"))
    {
        println!("\n== token-feature cache ==");
        let total = hits + misses;
        let rate = if total > 0.0 { 100.0 * hits / total } else { 0.0 };
        println!("hits {hits:.0}  misses {misses:.0}  hit-rate {rate:.1}%");
    }

    if let (Some(hits), Some(misses)) = (counter("pool.hits"), counter("pool.misses")) {
        println!("\n== tensor buffer pool ==");
        let total = hits + misses;
        let rate = if total > 0.0 { 100.0 * hits / total } else { 0.0 };
        println!(
            "hits {hits:.0}  misses {misses:.0}  hit-rate {rate:.1}%  recycled {:.0}",
            counter("pool.recycled").unwrap_or(0.0)
        );
    }

    if let Some(skipped) = counter("train.skipped_updates") {
        println!("\n== training stability ==");
        if skipped > 0.0 {
            println!("{skipped:.0} optimizer updates skipped on non-finite loss/gradient");
        } else {
            println!("no updates skipped (all losses and gradient norms finite)");
        }
    }

    if !spans.is_empty() {
        spans.sort_by(|a, b| b.2.total_cmp(&a.2));
        println!("\n== slowest spans ==");
        println!("{:<28} {:>8}  {:>10}  {:>9}", "span", "count", "total", "max");
        for (p, count, total_ms, max_ms) in spans.iter().take(10) {
            println!("{p:<28} {count:>8}  {total_ms:>8.1}ms  {max_ms:>7.1}ms");
        }
    }

    if !warnings.is_empty() {
        println!("\n== warnings ({}) ==", warnings.len());
        for (t, w) in warnings.iter().take(20) {
            println!("[{:>8.2}s] {w}", *t as f64 / 1e3);
        }
        if warnings.len() > 20 {
            println!("... and {} more", warnings.len() - 20);
        }
    }
    Ok(())
}

/// `trace` — render per-request waterfalls from a serving flight recorder
/// (`http://HOST:PORT`, fetched via `GET /admin/trace`) or from the
/// `"trace"` records of a JSONL run log.
pub fn trace(raw: Vec<String>) -> CmdResult {
    let a = parse(raw, &["top"])?;
    let top = a.get_parsed("top", 8usize)?;
    let pos = a.positional();
    if pos.len() != 1 {
        return Err("usage: neural-ner trace <RUN.jsonl|http://HOST:PORT> [--top N]".into());
    }
    let source = &pos[0];
    let mut records = if let Some(addr) = source.strip_prefix("http://") {
        fetch_traces(addr.trim_end_matches('/'))?
    } else {
        read_traces_jsonl(source)?
    };
    if records.is_empty() {
        return Err(format!(
            "no traces in {source} (serve some /v1/extract traffic first, or pass a \
             run log written with --log-json while serving)"
        )
        .into());
    }
    // Dedup (a trace can be both "recent" and "slowest"), slowest first.
    records.sort_by(|x, y| y.total_us.total_cmp(&x.total_us));
    records.dedup_by(|x, y| x.id == y.id);
    render_trace_split(&records);
    println!();
    for rec in records.iter().take(top) {
        render_trace_waterfall(rec);
    }
    if records.len() > top {
        println!("... and {} more traces (raise --top to see them)", records.len() - top);
    }
    Ok(())
}

/// Pulls `GET /admin/trace` from a running server.
fn fetch_traces(addr: &str) -> Result<Vec<ner_obs::trace::TraceRecord>, Box<dyn Error>> {
    use std::net::ToSocketAddrs;
    let sock = addr
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("cannot resolve {addr}"))?;
    let resp = ner_serve::client::get(sock, "/admin/trace")
        .map_err(|e| format!("GET http://{addr}/admin/trace failed: {e}"))?;
    if resp.status != 200 {
        return Err(format!("GET /admin/trace returned {}: {}", resp.status, resp.body).into());
    }
    let snap: ner_obs::trace::FlightSnapshot = serde_json::from_str(&resp.body)
        .map_err(|e| format!("cannot parse /admin/trace body: {e:?}"))?;
    let mut records = snap.slowest;
    records.extend(snap.recent);
    Ok(records)
}

/// Collects the `"trace"` records of a JSONL run log.
fn read_traces_jsonl(path: &str) -> Result<Vec<ner_obs::trace::TraceRecord>, Box<dyn Error>> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut records = Vec::new();
    for (i, l) in text.lines().enumerate() {
        if l.trim().is_empty() {
            continue;
        }
        let line: ner_obs::LogLine = serde_json::from_str(l)
            .map_err(|e| format!("{path}:{}: not a run-log line ({e:?})", i + 1))?;
        if let ner_obs::Event::Record { kind, body } = line.event {
            if kind == "trace" {
                let rec = serde::Deserialize::deserialize(&body)
                    .map_err(|e| format!("{path}:{}: bad trace record ({e:?})", i + 1))?;
                records.push(rec);
            }
        }
    }
    Ok(records)
}

/// The queue-vs-compute split aggregated over every trace: where does a
/// served request's wall time go, on average?
fn render_trace_split(records: &[ner_obs::trace::TraceRecord]) {
    let mut queue = 0.0;
    let mut compute = 0.0;
    let mut respond = 0.0;
    let mut other = 0.0;
    for rec in records {
        for s in &rec.stages {
            match s.stage.as_str() {
                "queue_wait" | "batch_form" => queue += s.us,
                "featurize" | "embed" | "encode" | "decode" => compute += s.us,
                "respond" => respond += s.us,
                _ => other += s.us,
            }
        }
    }
    let sum = queue + compute + respond + other;
    println!("== queue vs compute ({} traces) ==", records.len());
    if sum <= 0.0 {
        println!("no stage data");
        return;
    }
    let pct = |v: f64| 100.0 * v / sum;
    print!(
        "queue {:.0}% (wait+batch-form)   compute {:.0}% (featurize+embed+encode+decode)   \
         respond {:.0}%",
        pct(queue),
        pct(compute),
        pct(respond)
    );
    if other > 0.0 {
        print!("   other {:.0}%", pct(other));
    }
    println!();
}

/// One trace as a per-stage waterfall, stage durations aggregated by
/// label (a batch request repeats labels per item).
fn render_trace_waterfall(rec: &ner_obs::trace::TraceRecord) {
    print!(
        "trace {}  {}  status {}  total {:.0}us",
        rec.id, rec.endpoint, rec.status, rec.total_us
    );
    if rec.batch_id > 0 {
        print!("  batch #{} (size {})", rec.batch_id, rec.batch_size);
    }
    println!();
    let mut stages: Vec<(String, f64)> = Vec::new();
    for s in &rec.stages {
        match stages.iter_mut().find(|(n, _)| *n == s.stage) {
            Some((_, us)) => *us += s.us,
            None => stages.push((s.stage.clone(), s.us)),
        }
    }
    const BAR: usize = 36;
    for (name, us) in &stages {
        let frac = if rec.total_us > 0.0 { (us / rec.total_us).clamp(0.0, 1.0) } else { 0.0 };
        let filled = (frac * BAR as f64).round() as usize;
        println!(
            "  {name:<12} {us:>9.0}us {:>5.1}%  |{}{}|",
            100.0 * frac,
            "#".repeat(filled),
            " ".repeat(BAR - filled)
        );
    }
}

fn parse_scheme(s: &str) -> Result<TagScheme, Box<dyn Error>> {
    match s.to_lowercase().as_str() {
        "io" => Ok(TagScheme::Io),
        "bio" => Ok(TagScheme::Bio),
        "bioes" | "bilou" | "iobes" => Ok(TagScheme::Bioes),
        other => Err(format!("unknown tag scheme {other:?} (io|bio|bioes)").into()),
    }
}

fn read_dataset(path: &str, scheme: TagScheme) -> Result<Dataset, Box<dyn Error>> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let sentences = conll::read_conll(&text, scheme);
    if sentences.is_empty() {
        return Err(format!("{path} contains no sentences").into());
    }
    Ok(Dataset::new(sentences))
}
