//! `neural-ner` — the command-line face of the toolkit the survey's
//! future-work section calls for: generate corpora, train any architecture
//! of the taxonomy, evaluate with the paper's metrics, checkpoint, and tag
//! raw text.

mod args;
mod commands;

use std::process::ExitCode;

const USAGE: &str = "\
neural-ner — deep-learning NER toolkit (synthetic-corpus reproduction of
\"A Survey on Deep Learning for Named Entity Recognition\")

USAGE:
  neural-ner generate --out FILE [--n N] [--seed S] [--noisy] [--nested] [--fine-grained] [--unseen-rate R]
  neural-ner train    --train FILE --model FILE [--dev FILE] [--preset NAME] [--epochs N] [--seed S] [--trainer batched|per-sentence] [--batch N] [--quiet]
  neural-ner eval     --model FILE --data FILE
  neural-ner tag      --model FILE [TEXT ...]        (reads stdin when no TEXT)
  neural-ner serve    --ckpt FILE [--addr A] [--replicas N] [--poll-shards S] [--max-batch N] [--max-wait-us T] [--queue-cap Q] [--timeout-ms D] [--slo-ms B] [--read-timeout-ms R] [--trace-ring N]
  neural-ner zoo
  neural-ner report   RUN.jsonl
  neural-ner trace    <RUN.jsonl|http://HOST:PORT> [--top N]

COMMANDS:
  generate   write a synthetic annotated corpus in CoNLL format
  train      train a model preset on a CoNLL corpus and save a checkpoint
  eval       exact + relaxed span metrics of a checkpoint on a corpus
  tag        annotate raw text with a trained checkpoint
  serve      HTTP server: sharded nonblocking poll loop, per-core pipeline
             replicas with dynamic micro-batching, SLO-aware admission
             (POST /v1/extract and /v1/extract_batch; GET /healthz, /metrics
              in Prometheus format, /admin/trace for the flight recorder;
              POST /admin/reload swaps all replicas atomically, no downtime;
              every response carries an x-trace-id, ?trace=1 inlines stages)
  zoo        list the available architecture presets (Table 3 families)
  report     summarize a JSONL run log (loss curve, latency, slowest spans)
  trace      per-request waterfalls and queue-vs-compute split from a live
             server's /admin/trace or a run log's \"trace\" records

GLOBAL OPTIONS (any command):
  --verbosity LEVEL   stderr chatter: quiet|normal|verbose|trace (or 0-3)
  --log-json FILE     append every event as one JSON object per line
  --threads N         worker threads for kernels, training and batch tagging
                      (default: NER_THREADS env var, else the core count;
                      1 = fully serial, bit-identical to historical runs)
";

/// Strips a global `--threads N` from the argument list, mirroring how the
/// observability flags are taken before command dispatch.
fn take_threads(rest: &mut Vec<String>) -> Result<Option<usize>, String> {
    let Some(pos) = rest.iter().position(|a| a == "--threads") else {
        return Ok(None);
    };
    if pos + 1 >= rest.len() {
        return Err("--threads requires a value".into());
    }
    let value = rest.remove(pos + 1);
    rest.remove(pos);
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(Some(n)),
        _ => Err(format!("--threads has invalid value {value:?} (want an integer >= 1)")),
    }
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let mut rest: Vec<String> = argv.collect();
    let obs_cfg = match ner_obs::ObsConfig::from_env().take_args(&mut rest) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = ner_obs::init(obs_cfg) {
        eprintln!("error: cannot open run log: {e}");
        return ExitCode::FAILURE;
    }
    match take_threads(&mut rest) {
        Ok(Some(n)) => ner_par::set_global_threads(n),
        Ok(None) => {} // NER_THREADS / core count via ner_par::default_threads
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    let result = match command.as_str() {
        "generate" => commands::generate(rest),
        "train" => commands::train(rest),
        "eval" => commands::eval(rest),
        "tag" => commands::tag(rest),
        "serve" => commands::serve(rest),
        "zoo" => commands::zoo(rest),
        "report" => commands::report(rest),
        "trace" => commands::trace(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; run `neural-ner help`").into()),
    };
    // Drain accumulated metrics (counters, histograms, span summaries)
    // into the sinks before exiting; a no-op when nothing was recorded.
    ner_obs::finish();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
