//! Deep multi-task learning for NER (paper §4.1; Rei 2017, Fig. 9;
//! Aguilar et al. 2017).
//!
//! A BiLSTM-CRF tagger is co-trained with auxiliary objectives sharing the
//! same representation and encoder:
//!
//! * **language modeling** (Fig. 9) — the forward half of the BiLSTM
//!   predicts the next word, the backward half the previous word;
//! * **entity segmentation** — a binary inside-an-entity head, the
//!   "segmentation subtask" of Aguilar et al.
//!
//! The total loss is `ner + λ_lm·lm + λ_seg·seg`. Setting both λ to 0 makes
//! this exactly the single-task baseline, so ablations are one knob away.

use ner_core::config::{CharRepr, NerConfig, WordRepr};
use ner_core::decoder::Crf;
use ner_core::encoder::Encoder;
use ner_core::metrics::EvalResult;
use ner_core::repr::{EncodedSentence, InputLayer, SentenceEncoder};
use ner_tensor::nn::Linear;
use ner_tensor::optim::{Adam, Optimizer};
use ner_tensor::{ParamStore, Tape};
use ner_text::{EntitySpan, TagSet};
use rand::Rng;
use serde::Serialize;

/// Multi-task training weights.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct MultitaskWeights {
    /// Weight of the bidirectional LM objective (Rei's γ).
    pub lm: f32,
    /// Weight of the binary segmentation objective.
    pub segmentation: f32,
}

/// A BiLSTM-CRF with optional LM and segmentation co-training heads.
pub struct MultitaskNer {
    /// All trainable parameters.
    pub store: ParamStore,
    /// Tag inventory.
    pub tag_set: TagSet,
    input: InputLayer,
    encoder: Encoder,
    proj: Linear,
    crf: Crf,
    lm_fw: Linear,
    lm_bw: Linear,
    seg_head: Linear,
    hidden: usize,
    vocab_len: usize,
    weights: MultitaskWeights,
}

impl MultitaskNer {
    /// Builds the model. The encoder is fixed to a single-layer BiLSTM of
    /// width `hidden` per direction (the LM heads need the two directions
    /// separable, which `nn::bidirectional`'s `[fw ; bw]` layout provides).
    pub fn new(
        encoder: &SentenceEncoder,
        word_dim: usize,
        hidden: usize,
        weights: MultitaskWeights,
        rng: &mut impl Rng,
    ) -> Self {
        let cfg = NerConfig {
            scheme: encoder.tag_set.scheme(),
            word: WordRepr::Random { dim: word_dim },
            char_repr: CharRepr::None,
            encoder: ner_core::config::EncoderKind::Lstm { hidden, bidirectional: true, layers: 1 },
            dropout: 0.2,
            ..NerConfig::default()
        };
        let mut store = ParamStore::new();
        let input = InputLayer::new(
            &mut store,
            rng,
            &cfg,
            encoder.word_vocab.len(),
            encoder.char_vocab.len(),
            encoder.feat_dim(),
            None,
        );
        let enc = Encoder::new(&mut store, rng, "encoder", input.out_dim(), &cfg.encoder);
        let k = encoder.tag_set.len();
        let vocab_len = encoder.word_vocab.len();
        MultitaskNer {
            proj: Linear::new(&mut store, rng, "head.proj", enc.out_dim(), k),
            crf: Crf::new(&mut store, rng, "head.crf", k),
            lm_fw: Linear::new(&mut store, rng, "aux.lm_fw", hidden, vocab_len),
            lm_bw: Linear::new(&mut store, rng, "aux.lm_bw", hidden, vocab_len),
            seg_head: Linear::new(&mut store, rng, "aux.seg", enc.out_dim(), 2),
            input,
            encoder: enc,
            store,
            tag_set: encoder.tag_set.clone(),
            hidden,
            vocab_len,
            weights,
        }
    }

    /// Combined multi-task loss for one sentence.
    pub fn loss(
        &self,
        tape: &mut Tape,
        enc: &EncodedSentence,
        rng: &mut impl Rng,
    ) -> ner_tensor::Var {
        let x0 = self.input.forward(tape, &self.store, enc, None);
        let x = if self.input.dropout() > 0.0 {
            tape.dropout(x0, self.input.dropout(), rng)
        } else {
            x0
        };
        let h = self.encoder.forward(tape, &self.store, x);
        let emissions = self.proj.forward(tape, &self.store, h);
        let mut total = self.crf.nll(tape, &self.store, emissions, &enc.tag_ids);

        let n = enc.len();
        if self.weights.lm > 0.0 && n >= 2 {
            // Forward half predicts the NEXT word id; backward half the
            // PREVIOUS one (Fig. 9's two auxiliary softmaxes).
            let fw = tape.slice_cols(h, 0, self.hidden);
            let bw = tape.slice_cols(h, self.hidden, self.hidden);
            let fw_ctx = tape.slice_rows(fw, 0, n - 1);
            let fw_logits = self.lm_fw.forward(tape, &self.store, fw_ctx);
            let next: Vec<usize> = enc.word_ids[1..].to_vec();
            debug_assert!(next.iter().all(|&w| w < self.vocab_len));
            let lm_f = tape.cross_entropy_sum(fw_logits, &next);

            let bw_ctx = tape.slice_rows(bw, 1, n - 1);
            let bw_logits = self.lm_bw.forward(tape, &self.store, bw_ctx);
            let prev: Vec<usize> = enc.word_ids[..n - 1].to_vec();
            let lm_b = tape.cross_entropy_sum(bw_logits, &prev);

            let lm = tape.add(lm_f, lm_b);
            let lm_scaled = tape.scale(lm, self.weights.lm);
            total = tape.add(total, lm_scaled);
        }

        if self.weights.segmentation > 0.0 {
            let seg_logits = self.seg_head.forward(tape, &self.store, h);
            let inside: Vec<usize> = inside_entity_flags(enc);
            let seg = tape.cross_entropy_sum(seg_logits, &inside);
            let seg_scaled = tape.scale(seg, self.weights.segmentation);
            total = tape.add(total, seg_scaled);
        }
        total
    }

    /// Predicted spans (constrained Viterbi).
    pub fn predict_spans(&self, enc: &EncodedSentence) -> Vec<EntitySpan> {
        let mut tape = Tape::new();
        let x = self.input.forward(&mut tape, &self.store, enc, None);
        let h = self.encoder.forward(&mut tape, &self.store, x);
        let emissions = self.proj.forward(&mut tape, &self.store, h);
        let (tags, _) = self.crf.viterbi(&self.store, tape.value(emissions), Some(&self.tag_set));
        let labels = self.tag_set.decode(&tags);
        self.tag_set.scheme().tags_to_spans(&labels)
    }

    /// Trains for `epochs`; returns per-epoch mean losses.
    pub fn fit(
        &mut self,
        data: &[EncodedSentence],
        epochs: usize,
        lr: f32,
        rng: &mut impl Rng,
    ) -> Vec<f64> {
        let mut opt = Adam::new(lr);
        let mut losses = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let mut total = 0.0;
            for enc in data {
                if enc.is_empty() {
                    continue;
                }
                let mut tape = Tape::new();
                let loss = self.loss(&mut tape, enc, rng);
                total += tape.value(loss).item() as f64;
                tape.backward(loss, &mut self.store);
                self.store.clip_grad_norm(5.0);
                opt.step(&mut self.store);
            }
            losses.push(total / data.len().max(1) as f64);
        }
        losses
    }

    /// Evaluates exact-match span metrics on encoded data.
    pub fn evaluate(&self, data: &[EncodedSentence]) -> EvalResult {
        let golds: Vec<Vec<EntitySpan>> = data.iter().map(|e| e.gold.clone()).collect();
        let preds: Vec<Vec<EntitySpan>> = data.iter().map(|e| self.predict_spans(e)).collect();
        ner_core::metrics::evaluate(&golds, &preds)
    }
}

/// 0/1 per-token inside-an-entity flags.
fn inside_entity_flags(enc: &EncodedSentence) -> Vec<usize> {
    let mut flags = vec![0usize; enc.len()];
    for e in &enc.gold {
        for f in flags.iter_mut().take(e.end).skip(e.start) {
            *f = 1;
        }
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;
    use ner_corpus::{GeneratorConfig, NewsGenerator};
    use ner_text::TagScheme;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data(seed: u64, n: usize) -> (SentenceEncoder, Vec<EncodedSentence>) {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let ds = gen.dataset(&mut StdRng::seed_from_u64(seed), n);
        let enc = SentenceEncoder::from_dataset(&ds, TagScheme::Bio, 1);
        let encoded = enc.encode_dataset(&ds, None);
        (enc, encoded)
    }

    #[test]
    fn inside_flags_mark_entity_tokens() {
        let (enc, encoded) = data(1, 3);
        let _ = enc;
        let e = &encoded[0];
        let flags = inside_entity_flags(e);
        let expected: usize = e.gold.iter().map(|g| g.len()).sum();
        assert_eq!(flags.iter().sum::<usize>(), expected);
    }

    #[test]
    fn multitask_loss_exceeds_single_task_and_both_train() {
        let (enc, encoded) = data(2, 40);
        let mut rng = StdRng::seed_from_u64(3);
        let mut single = MultitaskNer::new(
            &enc,
            16,
            16,
            MultitaskWeights { lm: 0.0, segmentation: 0.0 },
            &mut rng,
        );
        let mut multi = MultitaskNer::new(
            &enc,
            16,
            16,
            MultitaskWeights { lm: 0.1, segmentation: 0.5 },
            &mut rng,
        );
        let mut t1 = Tape::new();
        let l1 = single.loss(&mut t1, &encoded[0], &mut rng);
        let mut t2 = Tape::new();
        let l2 = multi.loss(&mut t2, &encoded[0], &mut rng);
        assert!(t2.value(l2).item() > t1.value(l1).item(), "aux objectives should add loss mass");
        let s_losses = single.fit(&encoded, 2, 0.01, &mut rng);
        let m_losses = multi.fit(&encoded, 2, 0.01, &mut rng);
        assert!(s_losses[1] < s_losses[0]);
        assert!(m_losses[1] < m_losses[0]);
    }

    #[test]
    fn predictions_are_well_formed() {
        let (enc, encoded) = data(4, 30);
        let mut rng = StdRng::seed_from_u64(5);
        let mut model = MultitaskNer::new(
            &enc,
            16,
            16,
            MultitaskWeights { lm: 0.1, segmentation: 0.2 },
            &mut rng,
        );
        model.fit(&encoded, 3, 0.01, &mut rng);
        let result = model.evaluate(&encoded);
        assert!(result.micro.f1 > 0.2, "trained multitask model should fit train data somewhat");
    }
}
