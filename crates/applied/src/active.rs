//! Deep active learning for NER (paper §4.3; Shen et al. 2017).
//!
//! Pool-based selection with incremental training: each round the model
//! scores the unlabeled pool, the acquisition strategy picks sentences up to
//! the next annotation budget, and training *continues* on the augmented set
//! (Shen et al.'s amortization — retraining from scratch per round is
//! impractical for deep models). Strategies: random baseline, least
//! confidence (MNLP — Maximum Normalized Log-Probability) and token entropy.

use ner_core::model::NerModel;
use ner_core::repr::EncodedSentence;
use ner_core::trainer::{self, TrainConfig};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::Serialize;

/// Acquisition strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Strategy {
    /// Uniform random selection (the control).
    Random,
    /// Least confidence: ascending normalized best-path log-probability
    /// (MNLP, Shen et al.).
    LeastConfidence,
    /// Descending mean per-token posterior entropy.
    TokenEntropy,
    /// Longest sentences first — a classic cheap heuristic included as a
    /// second baseline.
    Longest,
}

/// One point of the budget sweep.
#[derive(Clone, Debug, Serialize)]
pub struct BudgetPoint {
    /// Sentences annotated so far.
    pub annotated: usize,
    /// Fraction of the pool annotated.
    pub fraction: f64,
    /// Test micro-F1 after training on the annotated set.
    pub test_f1: f64,
}

/// Result of an active-learning run.
#[derive(Clone, Debug, Serialize)]
pub struct ActiveRun {
    /// The strategy used.
    pub strategy: Strategy,
    /// The learning curve over budgets.
    pub curve: Vec<BudgetPoint>,
}

/// Ranks `pool` indices by informativeness under `strategy` (most
/// informative first).
pub fn rank_pool(
    model: &NerModel,
    pool: &[EncodedSentence],
    candidates: &[usize],
    strategy: Strategy,
    rng: &mut impl Rng,
) -> Vec<usize> {
    let mut ranked: Vec<usize> = candidates.to_vec();
    match strategy {
        Strategy::Random => ranked.shuffle(rng),
        Strategy::Longest => ranked.sort_by_key(|&i| std::cmp::Reverse(pool[i].len())),
        Strategy::LeastConfidence => {
            let mut scored: Vec<(usize, f64)> =
                ranked.iter().map(|&i| (i, model.confidence(&pool[i]))).collect();
            scored.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite confidence"));
            ranked = scored.into_iter().map(|(i, _)| i).collect();
        }
        Strategy::TokenEntropy => {
            let mut scored: Vec<(usize, f64)> = ranked
                .iter()
                .map(|&i| {
                    let ent = model.token_entropies(&pool[i]);
                    let mean = ent.iter().sum::<f64>() / ent.len().max(1) as f64;
                    (i, mean)
                })
                .collect();
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite entropy"));
            ranked = scored.into_iter().map(|(i, _)| i).collect();
        }
    }
    ranked
}

/// Runs pool-based active learning over a cumulative `budgets` schedule
/// (ascending sentence counts). `make_model` builds the initial model (so
/// the caller controls architecture and vocabularies).
pub fn run(
    mut model: NerModel,
    pool: &[EncodedSentence],
    test: &[EncodedSentence],
    strategy: Strategy,
    budgets: &[usize],
    epochs_per_round: usize,
    rng: &mut impl Rng,
) -> (ActiveRun, NerModel) {
    assert!(budgets.windows(2).all(|w| w[0] < w[1]), "budgets must be ascending");
    assert!(*budgets.last().expect("at least one budget") <= pool.len());

    let train_cfg =
        TrainConfig { epochs: epochs_per_round, patience: None, ..TrainConfig::default() };

    let mut selected: Vec<usize> = Vec::new();
    let mut remaining: Vec<usize> = (0..pool.len()).collect();
    let mut curve = Vec::with_capacity(budgets.len());

    for &budget in budgets {
        let need = budget - selected.len();
        // First round has an untrained model: fall back to random seeding
        // for the uncertainty strategies too (their scores are meaningless).
        let effective = if selected.is_empty() && strategy != Strategy::Longest {
            Strategy::Random
        } else {
            strategy
        };
        let ranked = rank_pool(&model, pool, &remaining, effective, rng);
        let chosen: Vec<usize> = ranked.into_iter().take(need).collect();
        remaining.retain(|i| !chosen.contains(i));
        selected.extend(chosen);

        // Incremental training on the augmented annotated set.
        let batch: Vec<EncodedSentence> = selected.iter().map(|&i| pool[i].clone()).collect();
        trainer::train(&mut model, &batch, None, &train_cfg, rng);

        let f1 = trainer::evaluate_model(&model, test).micro.f1;
        curve.push(BudgetPoint {
            annotated: selected.len(),
            fraction: selected.len() as f64 / pool.len() as f64,
            test_f1: f1,
        });
    }
    (ActiveRun { strategy, curve }, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ner_core::config::{CharRepr, DecoderKind, EncoderKind, NerConfig, WordRepr};
    use ner_core::repr::SentenceEncoder;
    use ner_corpus::{GeneratorConfig, NewsGenerator};
    use ner_text::TagScheme;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_cfg() -> NerConfig {
        NerConfig {
            scheme: TagScheme::Bio,
            word: WordRepr::Random { dim: 16 },
            char_repr: CharRepr::None,
            encoder: EncoderKind::Lstm { hidden: 16, bidirectional: true, layers: 1 },
            decoder: DecoderKind::Crf,
            dropout: 0.1,
            ..NerConfig::default()
        }
    }

    #[test]
    fn curve_is_produced_and_generally_improves() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let pool_ds = gen.dataset(&mut rng, 120);
        let test_ds = gen.dataset(&mut rng, 40);
        let enc = SentenceEncoder::from_dataset(&pool_ds, TagScheme::Bio, 1);
        let pool = enc.encode_dataset(&pool_ds, None);
        let test = enc.encode_dataset(&test_ds, None);
        let model = NerModel::new(quick_cfg(), &enc, None, &mut rng);
        let (run, _) =
            run(model, &pool, &test, Strategy::LeastConfidence, &[20, 60, 120], 3, &mut rng);
        assert_eq!(run.curve.len(), 3);
        assert!(
            run.curve[2].test_f1 > run.curve[0].test_f1,
            "more data should help: {:?}",
            run.curve
        );
        assert!((run.curve[2].fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ranking_respects_strategies() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let ds = gen.dataset(&mut rng, 30);
        let enc = SentenceEncoder::from_dataset(&ds, TagScheme::Bio, 1);
        let pool = enc.encode_dataset(&ds, None);
        let model = NerModel::new(quick_cfg(), &enc, None, &mut rng);
        let cands: Vec<usize> = (0..pool.len()).collect();

        let longest = rank_pool(&model, &pool, &cands, Strategy::Longest, &mut rng);
        assert!(pool[longest[0]].len() >= pool[*longest.last().unwrap()].len());

        let lc = rank_pool(&model, &pool, &cands, Strategy::LeastConfidence, &mut rng);
        assert!(model.confidence(&pool[lc[0]]) <= model.confidence(&pool[*lc.last().unwrap()]));

        let te = rank_pool(&model, &pool, &cands, Strategy::TokenEntropy, &mut rng);
        let mean_ent = |i: usize| {
            let e = model.token_entropies(&pool[i]);
            e.iter().sum::<f64>() / e.len() as f64
        };
        assert!(mean_ent(te[0]) >= mean_ent(*te.last().unwrap()));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn non_ascending_budgets_rejected() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        let ds = gen.dataset(&mut rng, 10);
        let enc = SentenceEncoder::from_dataset(&ds, TagScheme::Bio, 1);
        let pool = enc.encode_dataset(&ds, None);
        let model = NerModel::new(quick_cfg(), &enc, None, &mut rng);
        let _ = run(model, &pool, &pool, Strategy::Random, &[5, 5], 1, &mut rng);
    }
}
