//! # ner-applied — applied deep-learning techniques for NER
//!
//! The survey's §4 catalogues how deep learning is *applied* to NER beyond
//! plain supervised training; this crate implements each family on top of
//! `ner-core`:
//!
//! * [`multitask`] — §4.1: co-training with a bidirectional LM objective
//!   (Rei 2017, Fig. 9) and an entity-segmentation head (Aguilar et al.).
//! * [`transfer`] — §4.2: warm-start parameter-sharing transfer with
//!   fine-tune / freeze-encoder / from-scratch schemes and tag-hierarchy
//!   label coarsening.
//! * [`active`] — §4.3: pool-based active learning with incremental
//!   training and MNLP / token-entropy / random acquisition (Shen et al.).
//! * [`reinforce`] — §4.4: a REINFORCE-trained instance selector that
//!   filters distantly supervised label noise (Yang et al. 2018).
//! * [`adversarial`] — §4.5: FGM ε-bounded input perturbations (the DATNet
//!   perturbation flavor).

#![warn(missing_docs)]

pub mod active;
pub mod adversarial;
pub mod multitask;
pub mod reinforce;
pub mod transfer;
