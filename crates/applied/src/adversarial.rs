//! Deep adversarial learning for NER (paper §4.5).
//!
//! The perturbation flavor of DATNet (Zhou et al. 2019): each training step
//! computes the loss and its gradient with respect to the *input
//! representation*, builds the worst-case ε-bounded perturbation
//! `η = ε · g/‖g‖` (fast gradient method), and trains on the sum of the
//! clean and the perturbed losses. The classifier thus learns features
//! stable under small input shifts — the mechanism the paper credits for
//! better generalization and robustness.

use ner_core::model::NerModel;
use ner_core::repr::EncodedSentence;
use ner_core::trainer::TrainConfig;
use ner_tensor::optim::{Adam, Optimizer};
use ner_tensor::Tape;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::Serialize;

/// Per-epoch record of adversarial training.
#[derive(Clone, Debug, Serialize)]
pub struct AdvEpoch {
    /// Mean clean loss per sentence.
    pub clean_loss: f64,
    /// Mean adversarial (perturbed) loss per sentence.
    pub adv_loss: f64,
}

/// Trains `model` with FGM adversarial augmentation of strength `epsilon`.
/// With `epsilon == 0` this degenerates to standard training (the control).
pub fn train_fgm(
    model: &mut NerModel,
    data: &[EncodedSentence],
    epsilon: f32,
    cfg: &TrainConfig,
    rng: &mut impl Rng,
) -> Vec<AdvEpoch> {
    let mut opt = Adam::new(cfg.lr);
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut records = Vec::with_capacity(cfg.epochs);

    for _ in 0..cfg.epochs {
        if cfg.shuffle {
            order.shuffle(rng);
        }
        let mut clean_total = 0.0f64;
        let mut adv_total = 0.0f64;
        for &i in &order {
            let sent = &data[i];
            if sent.is_empty() {
                continue;
            }
            // Pass 1: clean loss; gradients accumulate in the store and the
            // input-representation gradient is read off the tape.
            let mut tape = Tape::new();
            let (loss, x) = model.loss_with_input(&mut tape, sent, true, rng);
            clean_total += tape.value(loss).item() as f64;
            tape.backward(loss, &mut model.store);

            if epsilon > 0.0 {
                let grad = tape.grad(x).expect("input gradient exists after backward");
                let norm = grad.sq_norm().sqrt();
                if norm > 1e-12 {
                    // x_adv = x + ε·g/‖g‖ — the argmax of the linearized loss
                    // within the ε-ball (paper §4.5's η_x).
                    let mut perturbed = tape.value(x).clone();
                    perturbed.add_scaled(grad, epsilon / norm);
                    let mut tape2 = Tape::new();
                    let adv_loss = model.loss_from_input_override(&mut tape2, sent, perturbed, rng);
                    adv_total += tape2.value(adv_loss).item() as f64;
                    tape2.backward(adv_loss, &mut model.store);
                }
            }
            if cfg.clip > 0.0 {
                model.store.clip_grad_norm(cfg.clip);
            }
            opt.step(&mut model.store);
        }
        records.push(AdvEpoch {
            clean_loss: clean_total / data.len() as f64,
            adv_loss: adv_total / data.len() as f64,
        });
    }
    records
}

/// Test-time FGM attack: perturbs each sentence's input representation by
/// `ε·g/‖g‖` along the gold-label loss gradient (evaluation mode, no
/// dropout) and measures exact-match F1 of the predictions on the perturbed
/// inputs. This is the "robust to attack" axis of §4.5.
pub fn evaluate_under_attack(
    model: &NerModel,
    data: &[EncodedSentence],
    epsilon: f32,
    rng: &mut impl Rng,
) -> f64 {
    use ner_core::metrics::evaluate;
    use ner_text::EntitySpan;
    let mut golds: Vec<Vec<EntitySpan>> = Vec::with_capacity(data.len());
    let mut preds: Vec<Vec<EntitySpan>> = Vec::with_capacity(data.len());
    for sent in data {
        if sent.is_empty() {
            continue;
        }
        golds.push(sent.gold.clone());
        // Attack direction from the gold-label loss (standard white-box FGM).
        let mut probe_store = model.store.clone();
        let mut tape = Tape::new();
        let (loss, x) = model.loss_with_input(&mut tape, sent, false, rng);
        tape.backward(loss, &mut probe_store);
        let perturbed = match tape.grad(x) {
            Some(grad) if grad.sq_norm() > 1e-24 => {
                let mut p = tape.value(x).clone();
                let norm = grad.sq_norm().sqrt();
                p.add_scaled(grad, epsilon / norm);
                p
            }
            _ => tape.value(x).clone(),
        };
        preds.push(model.predict_spans_from_input(sent, perturbed));
    }
    evaluate(&golds, &preds).micro.f1
}

#[cfg(test)]
mod tests {
    use super::*;
    use ner_core::config::{CharRepr, DecoderKind, EncoderKind, NerConfig, WordRepr};
    use ner_core::repr::SentenceEncoder;
    use ner_core::trainer;
    use ner_corpus::noise::{corrupt_dataset, NoiseModel};
    use ner_corpus::{GeneratorConfig, NewsGenerator};
    use ner_text::TagScheme;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_cfg() -> NerConfig {
        NerConfig {
            scheme: TagScheme::Bio,
            word: WordRepr::Random { dim: 16 },
            char_repr: CharRepr::None,
            encoder: EncoderKind::Lstm { hidden: 16, bidirectional: true, layers: 1 },
            decoder: DecoderKind::Crf,
            dropout: 0.1,
            ..NerConfig::default()
        }
    }

    #[test]
    fn adversarial_loss_exceeds_clean_loss() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let ds = gen.dataset(&mut rng, 40);
        let enc = SentenceEncoder::from_dataset(&ds, TagScheme::Bio, 1);
        let data = enc.encode_dataset(&ds, None);
        let mut model = NerModel::new(quick_cfg(), &enc, None, &mut rng);
        let cfg = TrainConfig { epochs: 2, patience: None, ..Default::default() };
        let records = train_fgm(&mut model, &data, 1.0, &cfg, &mut rng);
        // The FGM point maximizes the linearized loss, so on average the
        // perturbed loss should not be smaller than the clean one.
        for r in &records {
            assert!(
                r.adv_loss >= r.clean_loss * 0.95,
                "adv {} unexpectedly far below clean {}",
                r.adv_loss,
                r.clean_loss
            );
        }
        assert!(records[1].clean_loss < records[0].clean_loss, "training still converges");
    }

    #[test]
    fn epsilon_zero_matches_standard_training_shape() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let ds = gen.dataset(&mut rng, 30);
        let enc = SentenceEncoder::from_dataset(&ds, TagScheme::Bio, 1);
        let data = enc.encode_dataset(&ds, None);
        let mut model = NerModel::new(quick_cfg(), &enc, None, &mut rng);
        let cfg = TrainConfig { epochs: 2, patience: None, ..Default::default() };
        let records = train_fgm(&mut model, &data, 0.0, &cfg, &mut rng);
        assert!(records.iter().all(|r| r.adv_loss == 0.0));
        let f1 = trainer::evaluate_model(&model, &data).micro.f1;
        assert!(f1 > 0.3, "control training should fit train data, got {f1}");
    }

    #[test]
    fn fgm_improves_noisy_robustness() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        let train_ds = gen.dataset(&mut rng, 120);
        let clean_test = gen.dataset(&mut rng, 60);
        let noisy_test = corrupt_dataset(&clean_test, &NoiseModel::mild(), &mut rng);
        let enc = SentenceEncoder::from_dataset(&train_ds, TagScheme::Bio, 1);
        let data = enc.encode_dataset(&train_ds, None);
        let noisy = enc.encode_dataset(&noisy_test, None);

        let cfg = TrainConfig { epochs: 5, patience: None, ..Default::default() };
        let mut base = NerModel::new(quick_cfg(), &enc, None, &mut StdRng::seed_from_u64(7));
        train_fgm(&mut base, &data, 0.0, &cfg, &mut StdRng::seed_from_u64(8));
        let mut adv = NerModel::new(quick_cfg(), &enc, None, &mut StdRng::seed_from_u64(7));
        train_fgm(&mut adv, &data, 0.5, &cfg, &mut StdRng::seed_from_u64(8));

        let f1_base = trainer::evaluate_model(&base, &noisy).micro.f1;
        let f1_adv = trainer::evaluate_model(&adv, &noisy).micro.f1;
        // Robustness should not degrade; commonly it improves. Allow a tiny
        // tolerance to keep the test stable across seeds.
        assert!(
            f1_adv >= f1_base - 0.03,
            "FGM-trained F1 {f1_adv} collapsed below baseline {f1_base} on noisy test"
        );
    }
}
