//! Deep transfer learning for NER (paper §4.2).
//!
//! Parameter-sharing transfer in the style of Yang et al. 2017 and Lee et
//! al. 2017: a model trained on a *source* domain warm-starts a target model
//! by name-matched parameter copy; the target is then trained under one of
//! three schemes — fine-tune everything, freeze the representation+encoder
//! and train only the decoder head, or train from scratch (the control).
//! Also provides the tag-hierarchy label mapping of Beryozkin et al. 2019
//! for heterogeneous tag sets (fine-grained ↔ coarse).

use ner_core::config::NerConfig;
use ner_core::model::NerModel;
use ner_core::repr::{EncodedSentence, SentenceEncoder};
use ner_core::trainer::{self, TrainConfig, TrainReport};
use ner_embed::WordEmbeddings;
use ner_text::{Dataset, Sentence};
use rand::Rng;
use serde::Serialize;

/// How source knowledge is transferred into the target model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum TransferScheme {
    /// Copy all parameters, fine-tune all on the target.
    FineTuneAll,
    /// Copy all parameters, freeze input representation + context encoder,
    /// train only the decoder head.
    FreezeEncoder,
    /// Ignore the source model (lower-bound control).
    FromScratch,
}

/// Maps every entity label of a dataset to its coarse prefix
/// (`"LOC.city"` → `"LOC"`) — the tag-hierarchy projection used when source
/// and target tag sets differ (paper §4.2, Beryozkin et al.).
pub fn coarsen_labels(ds: &Dataset) -> Dataset {
    Dataset::new(
        ds.sentences
            .iter()
            .map(|s| Sentence {
                tokens: s.tokens.clone(),
                entities: s
                    .entities
                    .iter()
                    .map(|e| {
                        let mut e = e.clone();
                        e.label = e.coarse_label().to_string();
                        e
                    })
                    .collect(),
            })
            .collect(),
    )
}

/// Trains a target model with warm-start transfer from `source_model`.
///
/// The target model is built fresh for `cfg` against `encoder` (which must
/// be the encoder the source model was built with, so parameter shapes and
/// vocabularies line up), then receives source weights by name matching.
#[allow(clippy::too_many_arguments)]
pub fn transfer_train(
    cfg: &NerConfig,
    encoder: &SentenceEncoder,
    source_model: Option<&NerModel>,
    target_train: &[EncodedSentence],
    scheme: TransferScheme,
    pretrained: Option<&WordEmbeddings>,
    train_cfg: &TrainConfig,
    rng: &mut impl Rng,
) -> (NerModel, TrainReport) {
    let mut model = NerModel::new(cfg.clone(), encoder, pretrained, rng);

    match scheme {
        TransferScheme::FromScratch => {}
        TransferScheme::FineTuneAll | TransferScheme::FreezeEncoder => {
            let source = source_model.expect("transfer schemes require a source model");
            let copied = model.store.load_matching(&source.store);
            assert!(copied > 0, "no parameters matched between source and target");
            if scheme == TransferScheme::FreezeEncoder {
                model.store.freeze_prefix("input.", true);
                model.store.freeze_prefix("encoder.", true);
            }
        }
    }

    let report = trainer::train(&mut model, target_train, None, train_cfg, rng);
    (model, report)
}

/// Target-size sweep: evaluates each scheme at several target-training
/// sizes, returning `(scheme, size, test_f1)` rows.
#[allow(clippy::too_many_arguments)]
pub fn low_resource_sweep(
    cfg: &NerConfig,
    encoder: &SentenceEncoder,
    source_model: &NerModel,
    target_train: &[EncodedSentence],
    target_test: &[EncodedSentence],
    sizes: &[usize],
    train_cfg: &TrainConfig,
    rng: &mut impl Rng,
) -> Vec<(TransferScheme, usize, f64)> {
    let mut rows = Vec::new();
    for &size in sizes {
        let slice = &target_train[..size.min(target_train.len())];
        for scheme in [
            TransferScheme::FromScratch,
            TransferScheme::FreezeEncoder,
            TransferScheme::FineTuneAll,
        ] {
            let (model, _) = transfer_train(
                cfg,
                encoder,
                Some(source_model),
                slice,
                scheme,
                None,
                train_cfg,
                rng,
            );
            let f1 = trainer::evaluate_model(&model, target_test).micro.f1;
            rows.push((scheme, slice.len(), f1));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use ner_core::config::{CharRepr, DecoderKind, EncoderKind, WordRepr};
    use ner_corpus::noise::{corrupt_dataset, NoiseModel};
    use ner_corpus::{GeneratorConfig, NewsGenerator};
    use ner_text::{EntitySpan, TagScheme};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_cfg() -> NerConfig {
        NerConfig {
            scheme: TagScheme::Bio,
            word: WordRepr::Random { dim: 16 },
            char_repr: CharRepr::None,
            encoder: EncoderKind::Lstm { hidden: 16, bidirectional: true, layers: 1 },
            decoder: DecoderKind::Crf,
            dropout: 0.1,
            ..NerConfig::default()
        }
    }

    #[test]
    fn coarsen_strips_subtypes() {
        let s = Sentence::new(&["Paris"], vec![EntitySpan::new(0, 1, "LOC.city")]);
        let out = coarsen_labels(&Dataset::new(vec![s]));
        assert_eq!(out.sentences[0].entities[0].label, "LOC");
    }

    #[test]
    fn transfer_beats_scratch_in_low_resource_target() {
        let mut rng = StdRng::seed_from_u64(5);
        let gen = NewsGenerator::new(GeneratorConfig::default());
        // Source: plentiful clean news. Target: scarce noisy text.
        let source_ds = gen.dataset(&mut rng, 200);
        let target_train_ds =
            corrupt_dataset(&gen.dataset(&mut rng, 25), &NoiseModel::social_media(), &mut rng);
        let target_test_ds =
            corrupt_dataset(&gen.dataset(&mut rng, 60), &NoiseModel::social_media(), &mut rng);

        let enc = SentenceEncoder::from_dataset(&source_ds, TagScheme::Bio, 1);
        let source_enc = enc.encode_dataset(&source_ds, None);
        let tgt_train = enc.encode_dataset(&target_train_ds, None);
        let tgt_test = enc.encode_dataset(&target_test_ds, None);

        let cfg = quick_cfg();
        let tc = TrainConfig { epochs: 6, patience: None, ..Default::default() };
        let mut source_model = NerModel::new(cfg.clone(), &enc, None, &mut rng);
        trainer::train(&mut source_model, &source_enc, None, &tc, &mut rng);

        let tc_small = TrainConfig { epochs: 4, patience: None, ..Default::default() };
        let (scratch, _) = transfer_train(
            &cfg,
            &enc,
            None,
            &tgt_train,
            TransferScheme::FromScratch,
            None,
            &tc_small,
            &mut rng,
        );
        let (finetune, _) = transfer_train(
            &cfg,
            &enc,
            Some(&source_model),
            &tgt_train,
            TransferScheme::FineTuneAll,
            None,
            &tc_small,
            &mut rng,
        );
        let f1_scratch = trainer::evaluate_model(&scratch, &tgt_test).micro.f1;
        let f1_ft = trainer::evaluate_model(&finetune, &tgt_test).micro.f1;
        assert!(
            f1_ft > f1_scratch,
            "fine-tuning from source ({f1_ft}) should beat scratch ({f1_scratch}) at 25 target sentences"
        );
    }

    #[test]
    fn freeze_encoder_leaves_encoder_weights_untouched() {
        let mut rng = StdRng::seed_from_u64(6);
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let ds = gen.dataset(&mut rng, 40);
        let enc = SentenceEncoder::from_dataset(&ds, TagScheme::Bio, 1);
        let encoded = enc.encode_dataset(&ds, None);

        let cfg = quick_cfg();
        let tc = TrainConfig { epochs: 2, patience: None, ..Default::default() };
        let mut source = NerModel::new(cfg.clone(), &enc, None, &mut rng);
        trainer::train(&mut source, &encoded, None, &tc, &mut rng);

        let (frozen, _) = transfer_train(
            &cfg,
            &enc,
            Some(&source),
            &encoded[..10],
            TransferScheme::FreezeEncoder,
            None,
            &tc,
            &mut rng,
        );
        // Every encoder-prefixed parameter must equal the source exactly.
        for id in frozen.store.ids() {
            let name = frozen.store.name(id).to_string();
            if name.starts_with("encoder.") || name.starts_with("input.") {
                let src_id = source.store.find(&name).unwrap();
                assert_eq!(
                    frozen.store.value(id),
                    source.store.value(src_id),
                    "frozen parameter {name} changed"
                );
            }
        }
    }
}
