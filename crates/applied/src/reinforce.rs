//! Deep reinforcement learning for NER (paper §4.4; Yang et al. 2018).
//!
//! Distantly supervised corpora carry label noise; Yang et al. interpose a
//! reinforcement-learned *instance selector* between the noisy data and the
//! tagger: the selector chooses which sentences to train on, receives the
//! tagger's dev-set performance as reward, and is updated with policy
//! gradients (REINFORCE). Here the selector is a logistic policy over cheap
//! sentence features (tagger confidence, token entropy, annotation density,
//! length), which is exactly the signal that separates clean from corrupted
//! annotations.

use ner_core::model::NerModel;
use ner_core::repr::EncodedSentence;
use ner_core::trainer::{self, TrainConfig};
use rand::Rng;
use serde::Serialize;

/// Number of policy features.
pub const POLICY_DIM: usize = 4;

/// A logistic instance-selection policy.
#[derive(Clone, Debug, Serialize)]
pub struct SelectorPolicy {
    /// Feature weights (last entry is the bias).
    pub w: [f64; POLICY_DIM],
}

impl SelectorPolicy {
    /// Starts unbiased (keep probability 0.5 everywhere… plus a positive
    /// bias so early episodes keep most data).
    pub fn new() -> Self {
        SelectorPolicy { w: [0.0, 0.0, 0.0, 1.0] }
    }

    /// Keep probability for a feature vector.
    pub fn keep_prob(&self, phi: &[f64; POLICY_DIM]) -> f64 {
        let z: f64 = self.w.iter().zip(phi).map(|(w, x)| w * x).sum();
        1.0 / (1.0 + (-z).exp())
    }
}

impl Default for SelectorPolicy {
    fn default() -> Self {
        Self::new()
    }
}

/// Sentence features for the policy: per-token NLL of the *given* labels
/// under the current tagger (the classic noisy-annotation signal — a
/// corrupted annotation is implausible to a half-decent model), tagger
/// confidence, mean token entropy, and a bias. Surface statistics (length,
/// entity density) are deliberately excluded: they correlate with example
/// *informativeness*, so a selector that keys on them biases the surviving
/// training set toward easy sentences.
pub fn features(model: &NerModel, enc: &EncodedSentence) -> [f64; POLICY_DIM] {
    let label_nll = model.nll_of_labels(enc);
    let conf = model.confidence(enc);
    let ents = model.token_entropies(enc);
    let mean_ent = ents.iter().sum::<f64>() / ents.len().max(1) as f64;
    [label_nll, conf, mean_ent, 1.0]
}

/// Outcome of the selector training.
#[derive(Clone, Debug, Serialize)]
pub struct ReinforceReport {
    /// Dev reward per episode.
    pub episode_rewards: Vec<f64>,
    /// Fraction of sentences the final policy keeps.
    pub final_keep_rate: f64,
}

/// Trains an instance selector over a noisy corpus with REINFORCE.
///
/// `model` must arrive *warmed up* (a few epochs on the noisy data) so its
/// label-NLL feature is informative. Each episode samples keep/drop
/// decisions from the policy, trains a clone of the warm tagger for one
/// epoch on the kept subset, takes the negative dev gold-label NLL as the
/// (continuous, low-variance) reward, resets the
/// tagger to the warm snapshot (clean credit assignment — the reward
/// reflects *this* subset, not the training history), and updates the
/// policy along `(R − baseline) · Σ ∇ log π(aᵢ)`. The model is left at its
/// warm snapshot on return.
pub fn train_selector(
    model: &mut NerModel,
    noisy_train: &[EncodedSentence],
    dev: &[EncodedSentence],
    episodes: usize,
    policy_lr: f64,
    rng: &mut impl Rng,
) -> (SelectorPolicy, ReinforceReport) {
    let mut policy = SelectorPolicy::new();
    let tc = TrainConfig { epochs: 1, patience: None, ..TrainConfig::default() };
    let mut rewards: Vec<f64> = Vec::with_capacity(episodes);

    // Features come from the fixed warm tagger, z-scored per dimension so
    // one policy learning rate fits every feature (the bias stays 1).
    let snapshot = model.store.clone();
    let raw: Vec<[f64; POLICY_DIM]> = noisy_train.iter().map(|e| features(model, e)).collect();
    let phis = standardize(&raw);

    for _ in 0..episodes {
        let mut kept: Vec<EncodedSentence> = Vec::new();
        let mut actions: Vec<(usize, bool, f64)> = Vec::new(); // (idx, kept, p)
        for (i, phi) in phis.iter().enumerate() {
            let p = policy.keep_prob(phi);
            let keep = rng.gen_bool(p.clamp(0.05, 0.95));
            if keep {
                kept.push(noisy_train[i].clone());
            }
            actions.push((i, keep, p));
        }
        if kept.is_empty() {
            kept.push(noisy_train[0].clone());
        }
        trainer::train(model, &kept, None, &tc, rng);
        // Continuous reward: negative mean per-token dev NLL of the GOLD dev
        // labels — far lower variance than span F1, which is what a
        // handful-of-episodes REINFORCE loop needs.
        let reward =
            -dev.iter().map(|e| model.nll_of_labels(e)).sum::<f64>() / dev.len().max(1) as f64;
        model.store = snapshot.clone();

        // Moving-average baseline for variance reduction.
        let baseline = if rewards.is_empty() {
            reward
        } else {
            rewards.iter().sum::<f64>() / rewards.len() as f64
        };
        let advantage = reward - baseline;
        let scale = policy_lr * advantage / actions.len() as f64;
        for (i, keep, p) in &actions {
            // grad_w log pi(a) = (a - p) * phi for the Bernoulli-logistic policy.
            let a = if *keep { 1.0 } else { 0.0 };
            for (w, x) in policy.w.iter_mut().zip(&phis[*i]) {
                *w += scale * (a - p) * x;
            }
        }
        rewards.push(reward);
    }

    let keep_rate = phis.iter().filter(|phi| policy.keep_prob(phi) > 0.5).count() as f64
        / noisy_train.len() as f64;
    (policy, ReinforceReport { episode_rewards: rewards, final_keep_rate: keep_rate })
}

/// Z-scores every feature dimension across the pool (bias column excluded).
fn standardize(raw: &[[f64; POLICY_DIM]]) -> Vec<[f64; POLICY_DIM]> {
    let n = raw.len().max(1) as f64;
    let mut mean = [0.0f64; POLICY_DIM];
    for phi in raw {
        for (m, x) in mean.iter_mut().zip(phi) {
            *m += x / n;
        }
    }
    let mut var = [0.0f64; POLICY_DIM];
    for phi in raw {
        for ((v, x), m) in var.iter_mut().zip(phi).zip(&mean) {
            *v += (x - m) * (x - m) / n;
        }
    }
    raw.iter()
        .map(|phi| {
            let mut out = [0.0f64; POLICY_DIM];
            for i in 0..POLICY_DIM - 1 {
                out[i] = (phi[i] - mean[i]) / var[i].sqrt().max(1e-9);
            }
            out[POLICY_DIM - 1] = 1.0;
            out
        })
        .collect()
}

/// Filters a pool with a trained policy (keep-probability > 0.5), scoring
/// against features standardized over that pool.
pub fn select(
    policy: &SelectorPolicy,
    model: &NerModel,
    data: &[EncodedSentence],
) -> Vec<EncodedSentence> {
    let raw: Vec<[f64; POLICY_DIM]> = data.iter().map(|e| features(model, e)).collect();
    let phis = standardize(&raw);
    data.iter()
        .zip(&phis)
        .filter(|(_, phi)| policy.keep_prob(phi) > 0.5)
        .map(|(e, _)| e.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ner_core::config::{CharRepr, DecoderKind, EncoderKind, NerConfig, WordRepr};
    use ner_core::repr::SentenceEncoder;
    use ner_corpus::distant::{corrupt_dataset_labels, LabelNoise};
    use ner_corpus::{GeneratorConfig, NewsGenerator};
    use ner_text::{Dataset, TagScheme};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_cfg() -> NerConfig {
        NerConfig {
            scheme: TagScheme::Bio,
            word: WordRepr::Random { dim: 16 },
            char_repr: CharRepr::None,
            encoder: EncoderKind::Lstm { hidden: 16, bidirectional: true, layers: 1 },
            decoder: DecoderKind::Crf,
            dropout: 0.1,
            ..NerConfig::default()
        }
    }

    #[test]
    fn policy_gradient_moves_weights_and_rewards_are_recorded() {
        let gen = NewsGenerator::new(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let clean = gen.dataset(&mut rng, 60);
        let noisy = corrupt_dataset_labels(&clean, &LabelNoise::distant_supervision(), &mut rng);
        let noisy_ds = Dataset::new(noisy.iter().map(|n| n.sentence.clone()).collect());
        let dev = gen.dataset(&mut rng, 30);

        let enc = SentenceEncoder::from_dataset(&noisy_ds, TagScheme::Bio, 1);
        let train_enc = enc.encode_dataset(&noisy_ds, None);
        let dev_enc = enc.encode_dataset(&dev, None);
        let mut model = NerModel::new(quick_cfg(), &enc, None, &mut rng);
        // Warm the tagger: the selector's reward/features need a model whose
        // dev F1 is non-degenerate.
        trainer::train(
            &mut model,
            &train_enc,
            None,
            &TrainConfig { epochs: 3, patience: None, ..Default::default() },
            &mut rng,
        );

        let (policy, report) = train_selector(&mut model, &train_enc, &dev_enc, 4, 1.0, &mut rng);
        assert_eq!(report.episode_rewards.len(), 4);
        assert!(policy.w.iter().any(|w| *w != 0.0 && *w != 1.0), "policy should move: {policy:?}");
        assert!(report.final_keep_rate > 0.0 && report.final_keep_rate <= 1.0);
        let kept = select(&policy, &model, &train_enc);
        assert!(!kept.is_empty());
    }

    #[test]
    fn keep_prob_is_a_probability() {
        let p = SelectorPolicy::new();
        let phi = [0.8, 0.5, 1.0, 1.0];
        let v = p.keep_prob(&phi);
        assert!(v > 0.0 && v < 1.0);
    }
}
