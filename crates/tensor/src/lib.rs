//! # ner-tensor — the deep-learning substrate for `neural-ner`
//!
//! A small, dependency-light dense-tensor library with reverse-mode automatic
//! differentiation, written from scratch for the `neural-ner` workspace. It
//! provides everything the survey's taxonomy (distributed representations →
//! context encoder → tag decoder) needs to be built on a laptop:
//!
//! * [`Tensor`] — contiguous row-major `f32` storage with shape metadata and
//!   the usual non-differentiable math (BLAS-free matmul, elementwise maps).
//! * [`Tape`] — a build-then-backpropagate autograd graph. Every operation
//!   pushes a node carrying its value and a backward closure; gradients flow
//!   in reverse topological order (which is simply reverse insertion order).
//! * [`ParamStore`] — trainable parameters that persist across tapes, with
//!   gradient accumulation, named registration and (de)serialization.
//! * [`ops`] — the operation set: matmul, elementwise nonlinearities,
//!   softmax / log-softmax / logsumexp, embedding gather with scatter-add
//!   gradients, 1-D (dilated) convolution, max-over-time pooling, layer
//!   normalization, concatenation / slicing, dropout and classification
//!   losses.
//! * [`optim`] — SGD (+momentum), Adagrad, RMSProp, Adam, AdamW, global-norm
//!   gradient clipping and learning-rate schedules.
//! * [`init`] — Xavier/Glorot, He/Kaiming and uniform initializers.
//!
//! The design favours clarity and determinism: graphs are built per sentence
//! (lengths ≤ ~50) and every random component is seeded. Throughput comes
//! from four mechanisms that never change the floats: cache-blocked matmul
//! and transpose kernels that split output rows across the `ner-par`
//! work-stealing pool above a size threshold (accumulation order per output
//! element is preserved exactly, so serial and parallel results are
//! bit-identical), runtime-dispatched [`simd`] lane kernels (`NER_SIMD`,
//! SSE2/AVX2) whose lanes are independent output elements accumulating in
//! scalar order — bit-identical by construction, checked against the scalar
//! oracle — a thread-local [`pool`] of `Vec<f32>` buffers that tape nodes
//! recycle on drop, and a [`GradBuffer`] sink that lets data-parallel
//! trainers backpropagate without mutable access to shared parameters.
//!
//! ```
//! use ner_tensor::{ParamStore, Tape, Tensor, init, optim::{Optimizer, Sgd}};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut store = ParamStore::new();
//! let w = store.register("w", init::xavier(&mut rng, 2, 1));
//!
//! // Fit y = x0 + x1 with a linear model.
//! let mut opt = Sgd::new(0.1);
//! for _ in 0..200 {
//!     let mut tape = Tape::new();
//!     let x = tape.constant(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, -1.0]]));
//!     let y = tape.constant(Tensor::from_rows(&[&[3.0], &[2.0]]));
//!     let wv = tape.param(&store, w);
//!     let pred = tape.matmul(x, wv);
//!     let diff = tape.sub(pred, y);
//!     let sq = tape.mul(diff, diff);
//!     let loss = tape.mean(sq);
//!     tape.backward(loss, &mut store);
//!     opt.step(&mut store);
//! }
//! let learned = store.value(w);
//! assert!((learned.at2(0, 0) - 1.0).abs() < 1e-3);
//! assert!((learned.at2(1, 0) - 1.0).abs() < 1e-3);
//! ```

#![warn(missing_docs)]

pub mod exec;
pub mod fused;
pub mod init;
pub mod kernels;
pub mod nn;
pub mod ops;
pub mod optim;
mod param;
pub mod pool;
pub mod simd;
mod tape;
mod tensor;

pub use exec::{
    BatchedExec, BatchedTapeExec, Exec, FusedExec, FusedVal, PackedExec, PeCache, TapeExec,
};
pub use kernels::PAR_MIN_FLOPS;
pub use param::{ParamId, ParamStore};
pub use simd::SimdLevel;
pub use tape::{GradBuffer, GradSink, OpClass, SegEmitter, Tape, Var};
pub use tensor::Tensor;
