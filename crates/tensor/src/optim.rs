//! First-order optimizers and learning-rate schedules.
//!
//! Every optimizer consumes the gradients accumulated in a [`ParamStore`]
//! and clears them afterwards, so the training loop is simply
//! `forward → backward → opt.step(&mut store)`.

use crate::{ParamStore, Tensor};

/// A gradient-descent-family optimizer over a [`ParamStore`].
pub trait Optimizer {
    /// Applies one update from the accumulated gradients, then zeroes them.
    fn step(&mut self, store: &mut ParamStore);
    /// Current learning rate.
    fn learning_rate(&self) -> f32;
    /// Overrides the learning rate (used by schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain SGD with optional classical momentum and L2 weight decay.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Option<Tensor>>,
}

impl Sgd {
    /// SGD with learning rate `lr`, no momentum, no weight decay.
    pub fn new(lr: f32) -> Self {
        Sgd { lr, momentum: 0.0, weight_decay: 0.0, velocity: Vec::new() }
    }

    /// Adds classical momentum.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Adds L2 weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        if self.velocity.len() < store.len() {
            self.velocity.resize(store.len(), None);
        }
        let (lr, mu, wd) = (self.lr, self.momentum, self.weight_decay);
        let velocity = &mut self.velocity;
        store.for_each_unfrozen(|i, value, grad| {
            if mu == 0.0 {
                if wd > 0.0 {
                    value.scale_in_place(1.0 - lr * wd);
                }
                value.add_scaled(grad, -lr);
            } else {
                let v =
                    velocity[i].get_or_insert_with(|| Tensor::zeros(value.rows(), value.cols()));
                v.scale_in_place(mu);
                v.add_scaled(grad, 1.0);
                if wd > 0.0 {
                    value.scale_in_place(1.0 - lr * wd);
                }
                value.add_scaled(v, -lr);
            }
        });
        store.zero_grad();
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adagrad: per-weight learning rates from accumulated squared gradients.
pub struct Adagrad {
    lr: f32,
    eps: f32,
    accum: Vec<Option<Tensor>>,
}

impl Adagrad {
    /// Adagrad with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Adagrad { lr, eps: 1e-8, accum: Vec::new() }
    }
}

impl Optimizer for Adagrad {
    fn step(&mut self, store: &mut ParamStore) {
        if self.accum.len() < store.len() {
            self.accum.resize(store.len(), None);
        }
        let (lr, eps) = (self.lr, self.eps);
        let accum = &mut self.accum;
        store.for_each_unfrozen(|i, value, grad| {
            let a = accum[i].get_or_insert_with(|| Tensor::zeros(value.rows(), value.cols()));
            for ((v, &g), acc) in
                value.data_mut().iter_mut().zip(grad.data()).zip(a.data_mut().iter_mut())
            {
                *acc += g * g;
                *v -= lr * g / (acc.sqrt() + eps);
            }
        });
        store.zero_grad();
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// RMSProp: exponentially decayed squared-gradient scaling.
pub struct RmsProp {
    lr: f32,
    decay: f32,
    eps: f32,
    accum: Vec<Option<Tensor>>,
}

impl RmsProp {
    /// RMSProp with learning rate `lr` and the conventional 0.9 decay.
    pub fn new(lr: f32) -> Self {
        RmsProp { lr, decay: 0.9, eps: 1e-8, accum: Vec::new() }
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self, store: &mut ParamStore) {
        if self.accum.len() < store.len() {
            self.accum.resize(store.len(), None);
        }
        let (lr, decay, eps) = (self.lr, self.decay, self.eps);
        let accum = &mut self.accum;
        store.for_each_unfrozen(|i, value, grad| {
            let a = accum[i].get_or_insert_with(|| Tensor::zeros(value.rows(), value.cols()));
            for ((v, &g), acc) in
                value.data_mut().iter_mut().zip(grad.data()).zip(a.data_mut().iter_mut())
            {
                *acc = decay * *acc + (1.0 - decay) * g * g;
                *v -= lr * g / (acc.sqrt() + eps);
            }
        });
        store.zero_grad();
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction; `decoupled = true` turns it into
/// AdamW (weight decay applied to the weights, not the gradient).
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    decoupled: bool,
    t: u64,
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
}

impl Adam {
    /// Adam with the conventional β₁=0.9, β₂=0.999.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            decoupled: false,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// AdamW: decoupled weight decay `wd`.
    pub fn adamw(lr: f32, wd: f32) -> Self {
        let mut a = Adam::new(lr);
        a.weight_decay = wd;
        a.decoupled = true;
        a
    }

    /// Overrides the β coefficients.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        if self.m.len() < store.len() {
            self.m.resize(store.len(), None);
            self.v.resize(store.len(), None);
        }
        self.t += 1;
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let (wd, decoupled) = (self.weight_decay, self.decoupled);
        let (ms, vs) = (&mut self.m, &mut self.v);
        store.for_each_unfrozen(|i, value, grad| {
            let m = ms[i].get_or_insert_with(|| Tensor::zeros(value.rows(), value.cols()));
            let v = vs[i].get_or_insert_with(|| Tensor::zeros(value.rows(), value.cols()));
            if decoupled && wd > 0.0 {
                value.scale_in_place(1.0 - lr * wd);
            }
            for (((w, &g), mi), vi) in value
                .data_mut()
                .iter_mut()
                .zip(grad.data())
                .zip(m.data_mut().iter_mut())
                .zip(v.data_mut().iter_mut())
            {
                let g = if !decoupled && wd > 0.0 { g + wd * *w } else { g };
                *mi = b1 * *mi + (1.0 - b1) * g;
                *vi = b2 * *vi + (1.0 - b2) * g * g;
                let mhat = *mi / bc1;
                let vhat = *vi / bc2;
                *w -= lr * mhat / (vhat.sqrt() + eps);
            }
        });
        store.zero_grad();
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Learning-rate schedules, applied per epoch via [`LrSchedule::apply`].
#[derive(Clone, Copy, Debug)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant,
    /// `lr₀ / (1 + decay · epoch)` — the schedule of Ma & Hovy (2016).
    InverseTime {
        /// Decay coefficient per epoch.
        decay: f32,
    },
    /// Multiply by `gamma` every `every` epochs.
    Step {
        /// Epoch interval between decays.
        every: usize,
        /// Multiplicative factor applied at each step.
        gamma: f32,
    },
}

impl LrSchedule {
    /// The learning rate for `epoch` (0-based) given the base rate.
    pub fn lr_at(&self, base_lr: f32, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant => base_lr,
            LrSchedule::InverseTime { decay } => base_lr / (1.0 + decay * epoch as f32),
            LrSchedule::Step { every, gamma } => {
                base_lr * gamma.powi((epoch / every.max(1)) as i32)
            }
        }
    }

    /// Sets the optimizer's learning rate for `epoch`.
    pub fn apply(&self, opt: &mut dyn Optimizer, base_lr: f32, epoch: usize) {
        opt.set_learning_rate(self.lr_at(base_lr, epoch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ParamStore, Tape, Tensor};

    /// Minimize (w−3)² with each optimizer; all should approach w = 3.
    fn run_quadratic(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut store = ParamStore::new();
        let p = store.register("w", Tensor::scalar(0.0));
        for _ in 0..steps {
            let mut tape = Tape::new();
            let w = tape.param(&store, p);
            let c = tape.constant(Tensor::scalar(3.0));
            let d = tape.sub(w, c);
            let loss = tape.mul(d, d);
            tape.backward(loss, &mut store);
            opt.step(&mut store);
        }
        store.value(p).item()
    }

    #[test]
    fn sgd_converges() {
        assert!((run_quadratic(&mut Sgd::new(0.1), 100) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut o = Sgd::new(0.05).with_momentum(0.9);
        assert!((run_quadratic(&mut o, 200) - 3.0).abs() < 1e-2);
    }

    #[test]
    fn adagrad_converges() {
        assert!((run_quadratic(&mut Adagrad::new(0.9), 500) - 3.0).abs() < 0.05);
    }

    #[test]
    fn rmsprop_converges() {
        assert!((run_quadratic(&mut RmsProp::new(0.05), 500) - 3.0).abs() < 0.05);
    }

    #[test]
    fn adam_converges() {
        assert!((run_quadratic(&mut Adam::new(0.2), 300) - 3.0).abs() < 0.01);
    }

    #[test]
    fn adamw_decays_weights_toward_zero_without_gradient_signal() {
        let mut store = ParamStore::new();
        let p = store.register("w", Tensor::scalar(10.0));
        let mut opt = Adam::adamw(0.01, 0.5);
        // No gradient at all: pure decoupled decay shrinks the weight.
        for _ in 0..10 {
            opt.step(&mut store);
        }
        assert!(store.value(p).item() < 10.0);
    }

    #[test]
    fn frozen_params_are_skipped() {
        let mut store = ParamStore::new();
        let p = store.register("w", Tensor::scalar(1.0));
        store.set_frozen(p, true);
        store.accumulate_grad(p, &Tensor::scalar(100.0));
        Sgd::new(0.1).step(&mut store);
        assert_eq!(store.value(p).item(), 1.0);
    }

    #[test]
    fn schedules_compute_expected_rates() {
        assert_eq!(LrSchedule::Constant.lr_at(0.1, 5), 0.1);
        assert!((LrSchedule::InverseTime { decay: 0.5 }.lr_at(0.1, 2) - 0.05).abs() < 1e-7);
        assert!((LrSchedule::Step { every: 2, gamma: 0.1 }.lr_at(1.0, 4) - 0.01).abs() < 1e-7);
    }
}
