//! Thread-local `Vec<f32>` buffer pool.
//!
//! Autograd tapes allocate one value tensor per node and one gradient
//! tensor per reached node, every forward/backward pass, for every
//! sentence. The shapes recur exactly from sentence to sentence (they
//! depend only on layer dimensions and sentence length), so instead of
//! round-tripping the allocator, [`Tape`](crate::Tape) returns every
//! node's buffer here on drop and the kernels pull from here via
//! [`crate::Tensor::zeros_pooled`].
//!
//! The pool is strictly thread-local (no locks on the hot path), holds
//! free lists keyed by **power-of-two size class** (a request is served
//! from the class that is the next power of two ≥ its length), and is
//! bounded both per class and in total so a one-off giant tape cannot pin
//! memory forever. Size classes matter for the batched `[B,T]` path: its
//! buffer lengths scale with the *total token count of a batch*, which
//! rarely repeats exactly from batch to batch, so exact-length lists
//! would miss on nearly every batched allocation while class-keyed lists
//! keep serving recycled memory. Hit/miss/recycle counters are kept per
//! thread; the trainer and inference layers export them through `ner-obs`
//! as `pool.hits` / `pool.misses` (see [`take_stats`]).

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::cell::RefCell;
use std::ptr::NonNull;

/// Buffers shorter than this are cheaper to allocate than to pool.
const MIN_POOLED_LEN: usize = 16;

/// Alignment of [`AlignedBuf`] allocations: one cache line, which also
/// covers the 32-byte loads of the AVX2 lane kernels.
const PANEL_ALIGN: usize = 64;

/// Free-list depth per size class.
const MAX_BUFS_PER_LEN: usize = 64;

/// Total `f32`s the pool may hold per thread (16M floats = 64 MiB).
const MAX_POOLED_FLOATS: usize = 1 << 24;

/// Point-in-time counters of one thread's buffer pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Pooled allocations served from a free list.
    pub hits: u64,
    /// Pooled allocations that fell through to the system allocator.
    pub misses: u64,
    /// Buffers accepted back into the pool.
    pub recycled: u64,
    /// `f32`s currently held in free lists.
    pub held_floats: usize,
}

#[derive(Default)]
struct PoolInner {
    /// Free lists keyed by power-of-two size class; small linear scan (a
    /// model touches a handful of classes).
    buckets: Vec<(usize, Vec<Vec<f32>>)>,
    /// Free lists for cache-aligned panel buffers, same class keying.
    aligned: Vec<(usize, Vec<AlignedBuf>)>,
    held_floats: usize,
    hits: u64,
    misses: u64,
    recycled: u64,
}

/// A cache-line-aligned `f32` buffer for packed kernel panels (the `bᵀ`
/// panel of `matmul_nt`). `Vec<f32>` cannot guarantee alignment beyond 4
/// bytes — and rebuilding one around an over-aligned allocation would hand
/// the wrong [`Layout`] to its destructor — so this type owns its
/// allocation outright: capacity is always a pool size class and the
/// [`Drop`] impl deallocates with the exact layout used to allocate.
pub struct AlignedBuf {
    ptr: NonNull<f32>,
    len: usize,
    cap: usize,
}

// Safety: `AlignedBuf` exclusively owns its heap allocation, exactly like
// `Vec<f32>`; moving it between threads moves unique ownership.
unsafe impl Send for AlignedBuf {}

impl AlignedBuf {
    /// Allocates a zeroed buffer of `cap` floats at [`PANEL_ALIGN`].
    fn alloc(cap: usize) -> Self {
        let layout = Layout::from_size_align(cap * std::mem::size_of::<f32>(), PANEL_ALIGN)
            .expect("panel layout");
        // Safety: `cap >= MIN_POOLED_LEN` (callers round up), so the layout
        // is never zero-sized.
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw.cast::<f32>()) else {
            handle_alloc_error(layout);
        };
        AlignedBuf { ptr, len: cap, cap }
    }

    /// Number of addressable floats (the requested length, ≤ capacity).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer has zero addressable floats.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The buffer as a shared slice of its `len` floats.
    pub fn as_slice(&self) -> &[f32] {
        // Safety: `ptr` addresses `cap >= len` initialized floats.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// The buffer as a mutable slice of its `len` floats.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        // Safety: as `as_slice`, plus exclusive access through `&mut self`.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        let layout = Layout::from_size_align(self.cap * std::mem::size_of::<f32>(), PANEL_ALIGN)
            .expect("panel layout");
        // Safety: `ptr` was allocated in `alloc` with exactly this layout.
        unsafe { dealloc(self.ptr.as_ptr().cast(), layout) };
    }
}

thread_local! {
    static POOL: RefCell<PoolInner> = RefCell::new(PoolInner::default());
}

/// Size class serving requests of `len` elements: the next power of two.
/// Wastes at most 2x capacity per buffer, in exchange for letting the
/// batch-dependent lengths of the `[B,T]` path share free lists.
fn class_of(len: usize) -> usize {
    len.next_power_of_two()
}

/// A zeroed buffer of exactly `len` elements, reusing a pooled allocation
/// from the matching size class when one is available.
pub fn take(len: usize) -> Vec<f32> {
    if len < MIN_POOLED_LEN {
        return vec![0.0; len];
    }
    let class = class_of(len);
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        let slot = p.buckets.iter().position(|(c, _)| *c == class);
        if let Some(i) = slot {
            if let Some(mut buf) = p.buckets[i].1.pop() {
                p.held_floats -= class;
                p.hits += 1;
                buf.truncate(len);
                buf.fill(0.0);
                return buf;
            }
        }
        p.misses += 1;
        let mut buf = Vec::with_capacity(class);
        buf.resize(len, 0.0);
        buf
    })
}

/// Offers a buffer back to the current thread's pool. Buffers that are too
/// small, whose capacity is not a pool size class (i.e. they were not
/// allocated by [`take`]), or that would push a free list or the pool past
/// its bounds, are simply dropped.
pub fn recycle(mut buf: Vec<f32>) {
    let class = buf.capacity();
    if class < MIN_POOLED_LEN || !class.is_power_of_two() {
        return;
    }
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.held_floats + class > MAX_POOLED_FLOATS {
            return;
        }
        let slot = p.buckets.iter().position(|(c, _)| *c == class);
        let i = match slot {
            Some(i) => i,
            None => {
                p.buckets.push((class, Vec::new()));
                p.buckets.len() - 1
            }
        };
        if p.buckets[i].1.len() >= MAX_BUFS_PER_LEN {
            return;
        }
        // Stored at full class length so a later `take` of any `len` up to
        // the class can truncate down to its exact size.
        buf.resize(class, 0.0);
        p.buckets[i].1.push(buf);
        p.held_floats += class;
        p.recycled += 1;
    });
}

/// A zeroed cache-line-aligned buffer of exactly `len` floats for packed
/// kernel panels, served from the aligned free lists when possible. Small
/// requests still pool (panels are reused immediately by the next product
/// of the same shape family).
pub fn take_aligned(len: usize) -> AlignedBuf {
    let class = class_of(len.max(MIN_POOLED_LEN));
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        let slot = p.aligned.iter().position(|(c, _)| *c == class);
        if let Some(i) = slot {
            if let Some(mut buf) = p.aligned[i].1.pop() {
                p.held_floats -= class;
                p.hits += 1;
                buf.len = len;
                buf.as_mut_slice().fill(0.0);
                return buf;
            }
        }
        p.misses += 1;
        let mut buf = AlignedBuf::alloc(class);
        buf.len = len;
        buf
    })
}

/// Offers an aligned panel back to the current thread's pool, subject to
/// the same per-class and total bounds as [`recycle`].
pub fn recycle_aligned(mut buf: AlignedBuf) {
    let class = buf.cap;
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.held_floats + class > MAX_POOLED_FLOATS {
            return;
        }
        let slot = p.aligned.iter().position(|(c, _)| *c == class);
        let i = match slot {
            Some(i) => i,
            None => {
                p.aligned.push((class, Vec::new()));
                p.aligned.len() - 1
            }
        };
        if p.aligned[i].1.len() >= MAX_BUFS_PER_LEN {
            return;
        }
        buf.len = class;
        p.aligned[i].1.push(buf);
        p.held_floats += class;
        p.recycled += 1;
    });
}

/// Current counters for this thread's pool.
pub fn stats() -> PoolStats {
    POOL.with(|p| {
        let p = p.borrow();
        PoolStats {
            hits: p.hits,
            misses: p.misses,
            recycled: p.recycled,
            held_floats: p.held_floats,
        }
    })
}

/// Reads and resets this thread's counters (buffers stay pooled) — the
/// export primitive: callers add the deltas into `ner-obs` counters.
pub fn take_stats() -> PoolStats {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        let out = PoolStats {
            hits: p.hits,
            misses: p.misses,
            recycled: p.recycled,
            held_floats: p.held_floats,
        };
        p.hits = 0;
        p.misses = 0;
        p.recycled = 0;
        out
    })
}

/// Drops every pooled buffer and zeroes the counters — test isolation.
pub fn clear() {
    POOL.with(|p| *p.borrow_mut() = PoolInner::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_reuses_the_allocation() {
        clear();
        let buf = take(64);
        let ptr = buf.as_ptr();
        recycle(buf);
        let again = take(64);
        assert_eq!(again.as_ptr(), ptr, "same-length take must reuse the buffer");
        assert!(again.iter().all(|&x| x == 0.0));
        let s = stats();
        assert_eq!((s.hits, s.recycled), (1, 1));
        clear();
    }

    #[test]
    fn recycled_buffers_are_rezeroed() {
        clear();
        let mut buf = take(32);
        buf.fill(7.5);
        recycle(buf);
        assert!(take(32).iter().all(|&x| x == 0.0));
        clear();
    }

    #[test]
    fn tiny_buffers_bypass_the_pool() {
        clear();
        let buf = take(4);
        recycle(buf);
        assert_eq!(stats(), PoolStats::default());
    }

    #[test]
    fn take_stats_resets_counters_only() {
        clear();
        recycle(take(128));
        let first = take_stats();
        assert_eq!(first.recycled, 1);
        assert_eq!(take_stats().recycled, 0);
        // The buffer itself survives the counter reset.
        assert_eq!(stats().held_floats, 128);
        clear();
    }

    #[test]
    fn nearby_lengths_share_a_size_class() {
        clear();
        // Batched buffers are sized by the total token count of a batch,
        // which drifts from batch to batch; the class must still hit.
        let buf = take(900);
        let ptr = buf.as_ptr();
        recycle(buf);
        let again = take(1000);
        assert_eq!(again.as_ptr(), ptr, "class-mate take must reuse the buffer");
        assert_eq!(again.len(), 1000);
        assert!(again.iter().all(|&x| x == 0.0));
        let s = stats();
        assert_eq!((s.hits, s.misses, s.recycled), (1, 1, 1));
        clear();
    }

    #[test]
    fn aligned_panels_are_aligned_zeroed_and_reused() {
        clear();
        let mut buf = take_aligned(100);
        assert_eq!(buf.len(), 100);
        assert_eq!(buf.as_slice().as_ptr() as usize % PANEL_ALIGN, 0);
        buf.as_mut_slice().fill(3.5);
        let ptr = buf.as_slice().as_ptr();
        recycle_aligned(buf);
        let again = take_aligned(120);
        assert_eq!(again.as_slice().as_ptr(), ptr, "class-mate take must reuse the panel");
        assert_eq!(again.len(), 120);
        assert!(again.as_slice().iter().all(|&x| x == 0.0));
        let s = stats();
        assert_eq!((s.hits, s.misses, s.recycled), (1, 1, 1));
        clear();
    }

    #[test]
    fn aligned_and_vec_free_lists_are_disjoint() {
        clear();
        recycle_aligned(take_aligned(64));
        // A plain take of the same class must miss (different list) …
        let v = take(64);
        assert_eq!(stats().misses, 2);
        recycle(v);
        // … and the aligned panel is still pooled.
        assert_eq!(stats().held_floats, 128);
        clear();
    }

    #[test]
    fn per_length_depth_is_bounded() {
        clear();
        for _ in 0..(MAX_BUFS_PER_LEN + 8) {
            recycle(vec![0.0; 1024]);
        }
        assert_eq!(stats().held_floats, MAX_BUFS_PER_LEN * 1024);
        clear();
    }
}
