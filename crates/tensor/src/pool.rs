//! Thread-local `Vec<f32>` buffer pool.
//!
//! Autograd tapes allocate one value tensor per node and one gradient
//! tensor per reached node, every forward/backward pass, for every
//! sentence. The shapes recur exactly from sentence to sentence (they
//! depend only on layer dimensions and sentence length), so instead of
//! round-tripping the allocator, [`Tape`](crate::Tape) returns every
//! node's buffer here on drop and the kernels pull from here via
//! [`crate::Tensor::zeros_pooled`].
//!
//! The pool is strictly thread-local (no locks on the hot path), holds
//! exact-length free lists, and is bounded both per length and in total so
//! a one-off giant tape cannot pin memory forever. Hit/miss/recycle
//! counters are kept per thread; the trainer and inference layers export
//! them through `ner-obs` as `pool.hits` / `pool.misses` (see
//! [`take_stats`]).

use std::cell::RefCell;

/// Buffers shorter than this are cheaper to allocate than to pool.
const MIN_POOLED_LEN: usize = 16;

/// Free-list depth per distinct length.
const MAX_BUFS_PER_LEN: usize = 64;

/// Total `f32`s the pool may hold per thread (16M floats = 64 MiB).
const MAX_POOLED_FLOATS: usize = 1 << 24;

/// Point-in-time counters of one thread's buffer pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Pooled allocations served from a free list.
    pub hits: u64,
    /// Pooled allocations that fell through to the system allocator.
    pub misses: u64,
    /// Buffers accepted back into the pool.
    pub recycled: u64,
    /// `f32`s currently held in free lists.
    pub held_floats: usize,
}

#[derive(Default)]
struct PoolInner {
    /// Exact-length free lists; small linear scan (a model uses a handful
    /// of distinct shapes).
    buckets: Vec<(usize, Vec<Vec<f32>>)>,
    held_floats: usize,
    hits: u64,
    misses: u64,
    recycled: u64,
}

thread_local! {
    static POOL: RefCell<PoolInner> = RefCell::new(PoolInner::default());
}

/// A zeroed buffer of exactly `len` elements, reusing a pooled allocation
/// when one of the right length is available.
pub fn take(len: usize) -> Vec<f32> {
    if len < MIN_POOLED_LEN {
        return vec![0.0; len];
    }
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        let slot = p.buckets.iter().position(|(l, _)| *l == len);
        if let Some(i) = slot {
            if let Some(mut buf) = p.buckets[i].1.pop() {
                p.held_floats -= len;
                p.hits += 1;
                buf.fill(0.0);
                return buf;
            }
        }
        p.misses += 1;
        vec![0.0; len]
    })
}

/// Offers a buffer back to the current thread's pool. Buffers that are too
/// small, or that would push a free list or the pool past its bounds, are
/// simply dropped.
pub fn recycle(buf: Vec<f32>) {
    let len = buf.len();
    if len < MIN_POOLED_LEN || buf.capacity() != len {
        return;
    }
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.held_floats + len > MAX_POOLED_FLOATS {
            return;
        }
        let slot = p.buckets.iter().position(|(l, _)| *l == len);
        let i = match slot {
            Some(i) => i,
            None => {
                p.buckets.push((len, Vec::new()));
                p.buckets.len() - 1
            }
        };
        if p.buckets[i].1.len() >= MAX_BUFS_PER_LEN {
            return;
        }
        p.buckets[i].1.push(buf);
        p.held_floats += len;
        p.recycled += 1;
    });
}

/// Current counters for this thread's pool.
pub fn stats() -> PoolStats {
    POOL.with(|p| {
        let p = p.borrow();
        PoolStats {
            hits: p.hits,
            misses: p.misses,
            recycled: p.recycled,
            held_floats: p.held_floats,
        }
    })
}

/// Reads and resets this thread's counters (buffers stay pooled) — the
/// export primitive: callers add the deltas into `ner-obs` counters.
pub fn take_stats() -> PoolStats {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        let out = PoolStats {
            hits: p.hits,
            misses: p.misses,
            recycled: p.recycled,
            held_floats: p.held_floats,
        };
        p.hits = 0;
        p.misses = 0;
        p.recycled = 0;
        out
    })
}

/// Drops every pooled buffer and zeroes the counters — test isolation.
pub fn clear() {
    POOL.with(|p| *p.borrow_mut() = PoolInner::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_reuses_the_allocation() {
        clear();
        let buf = take(64);
        let ptr = buf.as_ptr();
        recycle(buf);
        let again = take(64);
        assert_eq!(again.as_ptr(), ptr, "same-length take must reuse the buffer");
        assert!(again.iter().all(|&x| x == 0.0));
        let s = stats();
        assert_eq!((s.hits, s.recycled), (1, 1));
        clear();
    }

    #[test]
    fn recycled_buffers_are_rezeroed() {
        clear();
        let mut buf = take(32);
        buf.fill(7.5);
        recycle(buf);
        assert!(take(32).iter().all(|&x| x == 0.0));
        clear();
    }

    #[test]
    fn tiny_buffers_bypass_the_pool() {
        clear();
        let buf = take(4);
        recycle(buf);
        assert_eq!(stats(), PoolStats::default());
    }

    #[test]
    fn take_stats_resets_counters_only() {
        clear();
        recycle(take(128));
        let first = take_stats();
        assert_eq!(first.recycled, 1);
        assert_eq!(take_stats().recycled, 0);
        // The buffer itself survives the counter reset.
        assert_eq!(stats().held_floats, 128);
        clear();
    }

    #[test]
    fn per_length_depth_is_bounded() {
        clear();
        for _ in 0..(MAX_BUFS_PER_LEN + 8) {
            recycle(vec![0.0; 1024]);
        }
        assert_eq!(stats().held_floats, MAX_BUFS_PER_LEN * 1024);
        clear();
    }
}
