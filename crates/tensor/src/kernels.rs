//! Cache-blocked, row-parallel matrix kernels.
//!
//! Every kernel here is written so that the floating-point accumulation
//! order *per output element* is identical to the textbook loop it
//! replaces: blocking only reorders which elements are worked on, never the
//! ascending `p` sweep that accumulates into one element, and the parallel
//! path splits the *output rows* across workers, which partitions elements
//! without touching their accumulation order. Serial, blocked and parallel
//! results are therefore bit-identical at every size and thread count — the
//! determinism contract the trainer and the experiment harnesses rely on
//! (see DESIGN.md).
//!
//! Parallelism kicks in only above [`PAR_MIN_FLOPS`] multiply-adds so
//! unit-scale tensors never pay pool overhead, and only when the global
//! [`ner_par`] pool has more than one thread.

use crate::pool;
use crate::simd;

/// Rows of the left operand / output processed per cache block.
pub(crate) const MC: usize = 32;

/// Output columns processed per cache block (×4 bytes ≈ a 512-byte panel
/// per row, small enough that an `MC`-row working set stays in L1/L2).
pub(crate) const NC: usize = 128;

/// Square tile edge for the blocked transpose.
const TC: usize = 32;

/// Rows per register tile in [`matmul_rows`]. With [`JB`] this sizes the
/// accumulator block that stays in registers across a full `p` sweep.
pub(crate) const RB: usize = 4;

/// Columns per register tile in [`matmul_rows`]. `RB × JB` f32
/// accumulators (8 SSE vectors at 4 lanes) plus the broadcast `a` values
/// and one `b` panel fit the 16 xmm registers of baseline x86-64, so the
/// tile never spills mid-sweep.
const JB: usize = 8;

/// Minimum multiply-add count (`m·k·n`) before a kernel consults the
/// thread pool. Below this, dispatch overhead exceeds the work: a
/// `64×64×64` product is ~260k FLOPs ≈ tens of microseconds.
pub const PAR_MIN_FLOPS: usize = 64 * 64 * 64;

/// A `*mut f32` that can cross threads for disjoint row-range writes.
struct SendMut(*mut f32);
impl SendMut {
    /// Method access keeps closures capturing the wrapper, not the field.
    fn get(&self) -> *mut f32 {
        self.0
    }
}
unsafe impl Send for SendMut {}
unsafe impl Sync for SendMut {}

/// Runs `body(r0, r1, out_rows)` over `[0, m)` either serially or split
/// into disjoint row ranges across the global pool. `row_len` is the
/// number of `f32`s per output row; `flops` gates the parallel path.
fn over_rows<F>(m: usize, row_len: usize, flops: usize, out: &mut [f32], body: F)
where
    F: Fn(usize, usize, &mut [f32]) + Sync,
{
    debug_assert_eq!(out.len(), m * row_len);
    if flops < PAR_MIN_FLOPS || m < 2 {
        body(0, m, out);
        return;
    }
    let pool = ner_par::global();
    if pool.threads() <= 1 {
        body(0, m, out);
        return;
    }
    let base = SendMut(out.as_mut_ptr());
    pool.for_each_chunk(m, 1, |range| {
        // Disjoint: every chunk covers distinct rows of `out`.
        let rows = unsafe {
            std::slice::from_raw_parts_mut(
                base.get().add(range.start * row_len),
                (range.end - range.start) * row_len,
            )
        };
        body(range.start, range.end, rows);
    });
}

/// One row's contribution over the output panel `[jb, je)` — the scalar
/// i-k-j loop the register tile reduces to on remainder rows/columns.
/// `p` ascends over the full inner dimension for every element and rows
/// of `a` that are exactly zero at `p` are skipped, so the per-element
/// operation sequence is the reference one for the whole kernel.
#[inline]
#[allow(clippy::too_many_arguments)]
fn row_panel(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    i: usize,
    r0: usize,
    jb: usize,
    je: usize,
    k: usize,
    n: usize,
) {
    let a_row = &a[i * k..(i + 1) * k];
    let out_row = &mut out[(i - r0) * n + jb..(i - r0) * n + je];
    for (p, &av) in a_row.iter().enumerate() {
        if av == 0.0 {
            continue;
        }
        let b_row = &b[p * n + jb..p * n + je];
        for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
            *o += av * bv;
        }
    }
}

/// An `RB × JB` register tile at rows `i0..i0+RB`, columns `j0..j0+JB`:
/// the accumulators live in `acc` across the entire ascending-`p` sweep,
/// so each `b` panel load feeds `RB` multiply-adds instead of one.
///
/// Bit-identical to [`row_panel`]: each element starts from the value
/// already in `out`, accumulates `av * bv` in the same ascending-`p`
/// order, and keeps the per-row `av == 0.0` skip — only *which* element
/// the next operation touches changes, never an element's own sequence.
#[inline]
#[allow(clippy::too_many_arguments)]
fn tile_quad(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    i0: usize,
    r0: usize,
    j0: usize,
    k: usize,
    n: usize,
) {
    let mut acc = [[0.0f32; JB]; RB];
    for (r, row) in acc.iter_mut().enumerate() {
        row.copy_from_slice(&out[(i0 + r - r0) * n + j0..][..JB]);
    }
    let a0 = &a[i0 * k..][..k];
    let a1 = &a[(i0 + 1) * k..][..k];
    let a2 = &a[(i0 + 2) * k..][..k];
    let a3 = &a[(i0 + 3) * k..][..k];
    for p in 0..k {
        let b_row: &[f32; JB] = b[p * n + j0..][..JB].try_into().unwrap();
        let av = [a0[p], a1[p], a2[p], a3[p]];
        for r in 0..RB {
            if av[r] == 0.0 {
                continue;
            }
            for c in 0..JB {
                acc[r][c] += av[r] * b_row[c];
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        out[(i0 + r - r0) * n + j0..][..JB].copy_from_slice(row);
    }
}

/// `out[r0..r1] += a[r0..r1] × b` for `a: [m,k]`, `b: [k,n]`.
///
/// Full `RB`-row × `JB`-column groups go through the register tile of
/// [`tile_quad`]; remainder rows and columns fall back to the panel loop
/// of [`row_panel`]. The `i`/`j` cache blocking keeps the `b` panel
/// resident across the `MC` rows of a block. Both paths accumulate each
/// output element over the full ascending-`p` sweep with the same
/// operation sequence, so tiling never changes a result bit — single-row
/// products (`m == 1`) simply take the panel path, which is why batched
/// `[B,T]` evaluation amortizes weight-panel traffic that per-sentence
/// `[1,k]` products cannot.
fn matmul_rows(a: &[f32], b: &[f32], out: &mut [f32], r0: usize, r1: usize, k: usize, n: usize) {
    for ib in (r0..r1).step_by(MC) {
        let ie = (ib + MC).min(r1);
        for jb in (0..n).step_by(NC) {
            let je = (jb + NC).min(n);
            let mut i = ib;
            while i + RB <= ie {
                let mut j = jb;
                while j + JB <= je {
                    tile_quad(a, b, out, i, r0, j, k, n);
                    j += JB;
                }
                if j < je {
                    for ii in i..i + RB {
                        row_panel(a, b, out, ii, r0, j, je, k, n);
                    }
                }
                i += RB;
            }
            for ii in i..ie {
                row_panel(a, b, out, ii, r0, jb, je, k, n);
            }
        }
    }
}

/// `a [m,k] × b [k,n] → out [m,n]` (zero-initialized by the caller),
/// parallel over output rows above the FLOP threshold.
///
/// The active [`simd`] level is captured here on the calling thread —
/// before the row split — so a [`simd::with_level`] override covers the
/// `ner-par` workers; [`simd::SimdLevel::Off`] runs the scalar
/// `matmul_rows` oracle the lane kernels are checked against.
pub fn matmul(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let lvl = simd::active();
    over_rows(m, n, m * k * n, out, |r0, r1, rows| {
        if simd::nn_rows(lvl, a, b, rows, r0, r1, k, n) {
            return;
        }
        matmul_rows(a, b, rows, r0, r1, k, n)
    });
}

/// `out[r0..r1] = (aᵀ × b)[r0..r1]` for `a: [k,m]`, `b: [k,n]` (no
/// transpose materialized). `p` walks the shared leading dimension in
/// ascending order for every output element; the row blocking only keeps
/// an `MC × n` output panel hot across the whole `p` sweep.
fn matmul_tn_rows(a: &[f32], b: &[f32], out: &mut [f32], r0: usize, r1: usize, k: usize, n: usize) {
    let m = a.len().checked_div(k).unwrap_or(0);
    for ib in (r0..r1).step_by(MC) {
        let ie = (ib + MC).min(r1);
        for p in 0..k {
            let b_row = &b[p * n..(p + 1) * n];
            for i in ib..ie {
                let av = a[p * m + i];
                if av == 0.0 {
                    continue;
                }
                let out_row = &mut out[(i - r0) * n..(i - r0 + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += av * bv;
                }
            }
        }
    }
}

/// Minimum `m` before [`matmul_tn`] packs `aᵀ`: the pack costs ~2·k·m
/// memory passes, which only pays once several output rows run through
/// the register tiles. Below this the broadcast-and-skip kernel runs
/// unchanged (bit-identical, so the threshold is perf-only).
const TN_PACK_MIN_M: usize = 4;

/// `aᵀ [m,k-rows] × b → out [m,n]` where `a: [k,m]`, `b: [k,n]`.
///
/// For `m ≥ TN_PACK_MIN_M` the kernel transposes `a` once, on the calling
/// thread, into a cache-aligned pooled panel `at: [m,k]` and runs the NN
/// register tiles (or [`simd`] lane tiles) over it. TN's per-element
/// contract — ascending `p`, skip when the `a` value is exactly zero,
/// accumulate into `out` — is exactly NN's contract applied to `aᵀ`
/// (`at[i·k+p] = a[p·m+i]`), so the packed path is bit-identical to the
/// broadcast kernel by construction while replacing its strided
/// column-gather loads (the reason it ran at scalar speed) with the
/// contiguous panels the tiles were built for.
pub fn matmul_tn(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
    let lvl = simd::active();
    if m < TN_PACK_MIN_M {
        over_rows(m, n, m * k * n, out, |r0, r1, rows| {
            if simd::tn_rows(lvl, a, b, rows, r0, r1, k, n, m) {
                return;
            }
            matmul_tn_rows(a, b, rows, r0, r1, k, n)
        });
        return;
    }
    let mut at = pool::take_aligned(m * k);
    transpose(a, at.as_mut_slice(), k, m);
    let ats = at.as_slice();
    over_rows(m, n, m * k * n, out, |r0, r1, rows| {
        if simd::nn_rows(lvl, ats, b, rows, r0, r1, k, n) {
            return;
        }
        matmul_rows(ats, b, rows, r0, r1, k, n)
    });
    pool::recycle_aligned(at);
}

/// `out[r0..r1] = (a × bᵀ)[r0..r1]` for `a: [m,k]`, `b: [n,k]`. Each
/// output element is an independent dot product accumulated in ascending
/// `p` order; blocking keeps a panel of `b` rows hot across `MC` rows of
/// `a`.
fn matmul_nt_rows(a: &[f32], b: &[f32], out: &mut [f32], r0: usize, r1: usize, k: usize, n: usize) {
    for ib in (r0..r1).step_by(MC) {
        let ie = (ib + MC).min(r1);
        for jb in (0..n).step_by(MC) {
            let je = (jb + MC).min(n);
            for i in ib..ie {
                let a_row = &a[i * k..(i + 1) * k];
                for j in jb..je {
                    let b_row = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0;
                    for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                        acc += av * bv;
                    }
                    out[(i - r0) * n + j] += acc;
                }
            }
        }
    }
}

/// One NT output element as a dot product over a contiguous row of
/// `b: [n,k]` — the historical NT inner loop (accumulate from zero, no
/// zero-skip, one final `out += acc`), kept as the remainder path and the
/// per-element reference the tiled kernels must reproduce bit-for-bit.
#[inline]
#[allow(clippy::too_many_arguments)]
fn nt_dot(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    i: usize,
    r0: usize,
    j: usize,
    k: usize,
    n: usize,
) {
    let a_row = &a[i * k..(i + 1) * k];
    let b_row = &b[j * k..(j + 1) * k];
    let mut acc = 0.0;
    for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
        acc += av * bv;
    }
    out[(i - r0) * n + j] += acc;
}

/// An `RB × JB` register tile of the NT kernel over the packed panel
/// `bt = bᵀ: [k,n]`. Bit-identical to [`nt_dot`] per element: every
/// accumulator starts at zero, sweeps `p` ascending with no zero-skip, and
/// lands with one `out += acc` — only the element grouping changes, which
/// is what turns `n` sequential dot products into a panel reuse pattern.
#[inline]
#[allow(clippy::too_many_arguments)]
fn nt_tile_quad(
    a: &[f32],
    bt: &[f32],
    out: &mut [f32],
    i0: usize,
    r0: usize,
    j0: usize,
    k: usize,
    n: usize,
) {
    let mut acc = [[0.0f32; JB]; RB];
    let a0 = &a[i0 * k..][..k];
    let a1 = &a[(i0 + 1) * k..][..k];
    let a2 = &a[(i0 + 2) * k..][..k];
    let a3 = &a[(i0 + 3) * k..][..k];
    for p in 0..k {
        let b_row: &[f32; JB] = bt[p * n + j0..][..JB].try_into().unwrap();
        let av = [a0[p], a1[p], a2[p], a3[p]];
        for r in 0..RB {
            for c in 0..JB {
                acc[r][c] += av[r] * b_row[c];
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        for (o, &v) in out[(i0 + r - r0) * n + j0..][..JB].iter_mut().zip(row.iter()) {
            *o += v;
        }
    }
}

/// `out[r0..r1] += (a × bᵀ)[r0..r1]` through register tiles over the packed
/// panel `bt`; remainder rows/columns run [`nt_dot`] on the original `b`.
#[allow(clippy::too_many_arguments)]
fn matmul_nt_rows_tiled(
    a: &[f32],
    b: &[f32],
    bt: &[f32],
    out: &mut [f32],
    r0: usize,
    r1: usize,
    k: usize,
    n: usize,
) {
    for ib in (r0..r1).step_by(MC) {
        let ie = (ib + MC).min(r1);
        for jb in (0..n).step_by(NC) {
            let je = (jb + NC).min(n);
            let mut i = ib;
            while i + RB <= ie {
                let mut j = jb;
                while j + JB <= je {
                    nt_tile_quad(a, bt, out, i, r0, j, k, n);
                    j += JB;
                }
                for ii in i..i + RB {
                    for jj in j..je {
                        nt_dot(a, b, out, ii, r0, jj, k, n);
                    }
                }
                i += RB;
            }
            for ii in i..ie {
                for jj in jb..je {
                    nt_dot(a, b, out, ii, r0, jj, k, n);
                }
            }
        }
    }
}

/// Minimum `m` before [`matmul_nt`] packs `bᵀ`: the pack (zero + tiled
/// transpose) costs ~2·k·n memory passes, which the register tiles only
/// amortize once several output rows reuse the panel. Below this the
/// historical per-row dot kernel runs unchanged (it is bit-identical, so
/// the threshold is perf-only).
const NT_PACK_MIN_M: usize = 4;

/// `a [m,k] × bᵀ [k,n-rows] → out [m,n]` where `b: [n,k]`.
///
/// For `m ≥ NT_PACK_MIN_M` the kernel packs `bᵀ` once, on the calling
/// thread, into a cache-aligned pooled panel, then runs register tiles
/// over it (`nt_tile_quad` or the [`simd`] lane tiles) — replacing the
/// loop-carried dependence of `n` sequential dot products per output row
/// with `RB × JB` independent accumulators, which is where the historical
/// ~2.5x NT-vs-NN GFLOPS gap came from.
pub fn matmul_nt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let lvl = simd::active();
    if m < NT_PACK_MIN_M {
        over_rows(m, n, m * k * n, out, |r0, r1, rows| matmul_nt_rows(a, b, rows, r0, r1, k, n));
        return;
    }
    let mut bt = pool::take_aligned(k * n);
    transpose(b, bt.as_mut_slice(), n, k);
    let bts = bt.as_slice();
    over_rows(m, n, m * k * n, out, |r0, r1, rows| {
        if simd::nt_rows(lvl, a, b, bts, rows, r0, r1, k, n) {
            return;
        }
        matmul_nt_rows_tiled(a, b, bts, rows, r0, r1, k, n)
    });
    pool::recycle_aligned(bt);
}

/// Tiled transpose of the `[rows, cols]` matrix `src` into the
/// `[cols, rows]` matrix rows `[r0, r1)` of `out` (pure permutation —
/// numerics cannot differ from the scalar double loop).
fn transpose_rows(src: &[f32], out: &mut [f32], r0: usize, r1: usize, rows: usize, cols: usize) {
    debug_assert_eq!(src.len(), rows * cols);
    for cb in (r0..r1).step_by(TC) {
        let ce = (cb + TC).min(r1);
        for rb in (0..rows).step_by(TC) {
            let re = (rb + TC).min(rows);
            for c in cb..ce {
                let out_row = &mut out[(c - r0) * rows..(c - r0 + 1) * rows];
                for r in rb..re {
                    out_row[r] = src[r * cols + c];
                }
            }
        }
    }
}

/// Transpose `src: [rows, cols]` into `out: [cols, rows]`, parallel over
/// output rows for large matrices.
pub(crate) fn transpose(src: &[f32], out: &mut [f32], rows: usize, cols: usize) {
    // A transpose moves rows*cols elements; treat each as ~one "flop" and
    // scale by TC so only genuinely large permutations go parallel.
    over_rows(cols, rows, rows * cols * TC, out, |r0, r1, out_rows| {
        transpose_rows(src, out_rows, r0, r1, rows, cols)
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                if av == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[i * n + j] += av * b[p * n + j];
                }
            }
        }
        out
    }

    fn ramp(len: usize, scale: f32) -> Vec<f32> {
        (0..len).map(|i| ((i % 13) as f32 - 6.0) * scale).collect()
    }

    #[test]
    fn blocked_matmul_is_bit_identical_to_naive_across_block_edges() {
        // Sizes straddling the MC/NC block boundaries.
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (31, 33, 127), (32, 64, 128), (33, 17, 129)] {
            let a = ramp(m * k, 0.25);
            let b = ramp(k * n, 0.5);
            let mut out = vec![0.0f32; m * n];
            matmul_rows(&a, &b, &mut out, 0, m, k, n);
            assert_eq!(out, naive_matmul(&a, &b, m, k, n), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn tn_and_nt_match_explicit_transpose_compositions() {
        let (k, m, n) = (37, 33, 29);
        let a = ramp(k * m, 0.1); // a: [k, m]
        let b = ramp(k * n, 0.2); // b: [k, n]
        let mut tn = vec![0.0f32; m * n];
        matmul_tn_rows(&a, &b, &mut tn, 0, m, k, n);
        let mut at = vec![0.0f32; m * k];
        transpose_rows(&a, &mut at, 0, m, k, m);
        assert_eq!(tn, naive_matmul(&at, &b, m, k, n));

        let c = ramp(m * k, 0.3); // c: [m, k]
        let d = ramp(n * k, 0.4); // d: [n, k]
        let mut nt = vec![0.0f32; m * n];
        matmul_nt_rows(&c, &d, &mut nt, 0, m, k, n);
        let mut dt = vec![0.0f32; k * n];
        transpose_rows(&d, &mut dt, 0, k, n, k);
        let expect = naive_matmul(&c, &dt, m, k, n);
        for (x, y) in nt.iter().zip(&expect) {
            // nt accumulates each dot product before the final add, so it
            // agrees with the naive j-inner loop only to rounding.
            assert!((x - y).abs() <= 1e-4 * y.abs().max(1.0));
        }
    }

    #[test]
    fn tiled_nt_is_bit_identical_to_the_dot_product_kernel() {
        for &(m, k, n) in &[(4, 9, 8), (5, 17, 9), (33, 40, 31), (32, 64, 128)] {
            let a = ramp(m * k, 0.25);
            let b = ramp(n * k, 0.5);
            let mut want = vec![0.0f32; m * n];
            matmul_nt_rows(&a, &b, &mut want, 0, m, k, n);
            let mut bt = vec![0.0f32; k * n];
            transpose_rows(&b, &mut bt, 0, k, n, k);
            let mut got = vec![0.0f32; m * n];
            matmul_nt_rows_tiled(&a, &b, &bt, &mut got, 0, m, k, n);
            assert_eq!(got, want, "shape {m}x{k}x{n}");
        }
    }

    fn lane_levels() -> Vec<simd::SimdLevel> {
        [simd::SimdLevel::Sse2, simd::SimdLevel::Avx2]
            .into_iter()
            .filter(|&l| simd::is_supported(l))
            .collect()
    }

    #[test]
    fn lane_matmuls_match_the_scalar_oracle_bitwise() {
        let shapes = [
            (1, 7, 1),
            (2, 3, 5),
            (4, 16, 8),
            (5, 33, 9),
            (7, 12, 17),
            (33, 40, 31),
            (32, 64, 128),
        ];
        for &(m, k, n) in &shapes {
            let a = ramp(m * k, 0.25);
            let b = ramp(k * n, 0.5);
            let mut want = vec![0.0f32; m * n];
            matmul_rows(&a, &b, &mut want, 0, m, k, n);
            for &lvl in &lane_levels() {
                let mut got = vec![0.0f32; m * n];
                assert!(simd::nn_rows(lvl, &a, &b, &mut got, 0, m, k, n));
                assert_eq!(got, want, "nn {m}x{k}x{n} {lvl:?}");
            }

            let at = ramp(k * m, 0.3); // [k, m]
            let mut want = vec![0.0f32; m * n];
            matmul_tn_rows(&at, &b, &mut want, 0, m, k, n);
            for &lvl in &lane_levels() {
                let mut got = vec![0.0f32; m * n];
                assert!(simd::tn_rows(lvl, &at, &b, &mut got, 0, m, k, n, m));
                assert_eq!(got, want, "tn {m}x{k}x{n} {lvl:?}");
            }

            let b2 = ramp(n * k, 0.4); // [n, k]
            let mut want = vec![0.0f32; m * n];
            matmul_nt_rows(&a, &b2, &mut want, 0, m, k, n);
            let mut bt = vec![0.0f32; k * n];
            transpose_rows(&b2, &mut bt, 0, k, n, k);
            for &lvl in &lane_levels() {
                let mut got = vec![0.0f32; m * n];
                assert!(simd::nt_rows(lvl, &a, &b2, &bt, &mut got, 0, m, k, n));
                assert_eq!(got, want, "nt {m}x{k}x{n} {lvl:?}");
            }
        }
    }

    #[test]
    fn packed_tn_is_bit_identical_to_the_broadcast_kernel() {
        // Shapes on both sides of TN_PACK_MIN_M, straddling tile edges;
        // `ramp` contains exact zeros so the skip contract is exercised.
        for &(k, m, n) in &[
            (7, 1, 5),
            (9, 3, 4),
            (5, 4, 9),
            (17, 5, 9),
            (33, 31, 29),
            (40, 33, 31),
            (64, 32, 128),
        ] {
            let a = ramp(k * m, 0.25); // [k, m]
            let b = ramp(k * n, 0.5); // [k, n]
            let mut want = vec![0.0f32; m * n];
            matmul_tn_rows(&a, &b, &mut want, 0, m, k, n);
            let mut got = vec![0.0f32; m * n];
            matmul_tn(&a, &b, &mut got, k, m, n);
            assert!(
                got.iter().zip(&want).all(|(x, y)| x.to_bits() == y.to_bits()),
                "tn {k}x{m}x{n}"
            );
        }
    }

    #[test]
    fn transpose_tiles_cover_ragged_shapes() {
        for &(r, c) in &[(1, 1), (5, 3), (31, 33), (32, 32), (65, 31)] {
            let src = ramp(r * c, 1.0);
            let mut out = vec![0.0f32; r * c];
            transpose_rows(&src, &mut out, 0, c, r, c);
            for i in 0..r {
                for j in 0..c {
                    assert_eq!(out[j * r + i], src[i * c + j]);
                }
            }
        }
    }
}
