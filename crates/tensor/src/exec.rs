//! The execution backend behind every layer forward.
//!
//! Each neural building block in [`crate::nn`] (and every module built on
//! top of it in `ner-core`) has exactly **one** forward implementation,
//! written against the [`Exec`] trait. The trait has two implementations:
//!
//! * [`Tape`] (aliased [`TapeExec`]) — records an autograd node per
//!   operation so the trainer can backpropagate. The trait methods expand
//!   coarse operations (`affine_act`, `lstm_gates`, …) into exactly the
//!   node chains the historical per-layer forwards pushed, so training
//!   trajectories are preserved.
//! * [`FusedExec`] — tape-free inference. Operations write into pooled
//!   buffers via the fused kernels in [`crate::fused`]; nothing is
//!   recorded, parameters are borrowed rather than copied, and every
//!   intermediate buffer is recycled into the thread-local [`crate::pool`]
//!   when the backend is dropped.
//!
//! **Determinism contract.** For every operation the two backends perform
//! the same floating-point arithmetic in the same order, so a forward pass
//! is bit-identical whichever backend runs it (`tests/prop_fused.rs`,
//! `ner-core/tests/plan_parity.rs`). Coarse operations exist precisely
//! where a fused kernel can skip tape bookkeeping without touching the
//! accumulation order.

use crate::fused::{self, Activation};
use crate::{pool, simd, OpClass, ParamId, ParamStore, Tape, Tensor, Var};
use rand::Rng;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// An execution backend for layer forwards: either records autograd nodes
/// ([`Tape`]) or evaluates eagerly into pooled buffers ([`FusedExec`]).
///
/// Values are lightweight `Copy` handles; [`value`](Exec::value) reads the
/// tensor behind a handle.
pub trait Exec {
    /// Handle to a computed tensor.
    type V: Copy;

    /// Introduces a literal tensor.
    fn constant(&mut self, value: Tensor) -> Self::V;
    /// Leases a parameter.
    fn param(&mut self, store: &ParamStore, id: ParamId) -> Self::V;
    /// Gathers rows of an embedding table: `[ids.len(), dim]`.
    fn lookup(&mut self, store: &ParamStore, id: ParamId, ids: &[usize]) -> Self::V;
    /// Reads the tensor behind a handle.
    fn value(&self, v: Self::V) -> &Tensor;

    /// Matrix product `a·b`.
    fn matmul(&mut self, a: Self::V, b: Self::V) -> Self::V;
    /// Matrix transpose.
    fn transpose(&mut self, a: Self::V) -> Self::V;
    /// Elementwise sum.
    fn add(&mut self, a: Self::V, b: Self::V) -> Self::V;
    /// Elementwise difference.
    fn sub(&mut self, a: Self::V, b: Self::V) -> Self::V;
    /// Elementwise product.
    fn mul(&mut self, a: Self::V, b: Self::V) -> Self::V;
    /// Multiplication by a scalar.
    fn scale(&mut self, a: Self::V, s: f32) -> Self::V;
    /// Broadcast-adds the row vector `bias [1, d]` to every row of `m`.
    fn add_bias(&mut self, m: Self::V, bias: Self::V) -> Self::V;
    /// Applies a nonlinearity ([`Activation::None`] is the identity and
    /// returns `a` unchanged on both backends).
    fn activation(&mut self, a: Self::V, act: Activation) -> Self::V;

    /// Fused affine layer `act(x·w + b)` — on the tape this is the
    /// `affine` node followed by the activation node.
    fn affine_act(&mut self, x: Self::V, w: Self::V, b: Self::V, act: Activation) -> Self::V;
    /// Fused same-padded 1-D convolution + activation (layouts of
    /// `Tape::conv1d`).
    fn conv1d_act(
        &mut self,
        x: Self::V,
        w: Self::V,
        b: Self::V,
        k: usize,
        dilation: usize,
        act: Activation,
    ) -> Self::V;
    /// Row-wise layer normalization with learned gain/bias.
    fn layer_norm(&mut self, x: Self::V, gain: Self::V, bias: Self::V) -> Self::V;
    /// Row-wise softmax.
    fn softmax_rows(&mut self, a: Self::V) -> Self::V;
    /// Column-wise max over rows `[n, d] → [1, d]`.
    fn max_over_rows(&mut self, a: Self::V) -> Self::V;

    /// Copies columns `[start, start+len)`.
    fn slice_cols(&mut self, a: Self::V, start: usize, len: usize) -> Self::V;
    /// Copies rows `[start, start+len)`.
    fn slice_rows(&mut self, a: Self::V, start: usize, len: usize) -> Self::V;
    /// Copies row `i` as a `[1, d]` tensor.
    fn row(&mut self, a: Self::V, i: usize) -> Self::V;
    /// Stacks parts vertically.
    fn concat_rows(&mut self, parts: &[Self::V]) -> Self::V;
    /// Concatenates parts side by side.
    fn concat_cols(&mut self, parts: &[Self::V]) -> Self::V;
    /// Reverses the row order.
    fn reverse_rows(&mut self, a: Self::V) -> Self::V;

    /// One LSTM gate application on the pre-activation `pre [1, 4·hidden]`
    /// (gate order i, f, g, o) and previous cell state `c [1, hidden]`;
    /// returns `(h', c')`.
    fn lstm_gates(&mut self, pre: Self::V, c: Self::V, hidden: usize) -> (Self::V, Self::V);
    /// One GRU gate application on the bias-added projections
    /// `xp`/`hp [1, 3·hidden]` (gate order z, r, n) and previous hidden
    /// state; returns `h'`.
    fn gru_gates(&mut self, xp: Self::V, hp: Self::V, h_prev: Self::V, hidden: usize) -> Self::V;

    /// Sinusoidal positional encodings `[n, d]` — [`FusedExec`] serves
    /// them from a shared [`PeCache`] when one is attached.
    fn positional_encoding(&mut self, n: usize, d: usize) -> Self::V;

    /// Runs a whole LSTM pass left to right, `xs [n, d_in] → [n, hidden]`
    /// (gate order i, f, g, o). The provided implementation expands to the
    /// historical per-step chain — lease weights and zero states, then per
    /// step `row`, two `matmul`s, `add`, `add_bias`, [`Exec::lstm_gates`] —
    /// which is what the tape records. [`FusedExec`] overrides it with a
    /// sequence-batched input projection and an in-place gate sweep that
    /// compute the same floats in the same per-element order.
    fn lstm_sequence(
        &mut self,
        store: &ParamStore,
        w_ih: ParamId,
        w_hh: ParamId,
        b: ParamId,
        hidden: usize,
        xs: Self::V,
    ) -> Self::V {
        let n = self.value(xs).rows();
        let w_ih = self.param(store, w_ih);
        let w_hh = self.param(store, w_hh);
        let b = self.param(store, b);
        let mut h = self.constant(Tensor::zeros(1, hidden));
        let mut c = self.constant(Tensor::zeros(1, hidden));
        let mut outputs = Vec::with_capacity(n);
        for t in 0..n {
            let x_t = self.row(xs, t);
            let xp = self.matmul(x_t, w_ih);
            let hp = self.matmul(h, w_hh);
            let s = self.add(xp, hp);
            let pre = self.add_bias(s, b);
            let (h_new, c_new) = self.lstm_gates(pre, c, hidden);
            h = h_new;
            c = c_new;
            outputs.push(h);
        }
        self.concat_rows(&outputs)
    }

    /// Runs a whole GRU pass left to right, `xs [n, d_in] → [n, hidden]`
    /// (gate order z, r, n). Same contract as [`Exec::lstm_sequence`]: the
    /// provided implementation is the historical per-step tape chain,
    /// [`FusedExec`] overrides it with a batched equivalent.
    #[allow(clippy::too_many_arguments)]
    fn gru_sequence(
        &mut self,
        store: &ParamStore,
        w_ih: ParamId,
        w_hh: ParamId,
        b_ih: ParamId,
        b_hh: ParamId,
        hidden: usize,
        xs: Self::V,
    ) -> Self::V {
        let n = self.value(xs).rows();
        let w_ih = self.param(store, w_ih);
        let w_hh = self.param(store, w_hh);
        let b_ih = self.param(store, b_ih);
        let b_hh = self.param(store, b_hh);
        let mut h = self.constant(Tensor::zeros(1, hidden));
        let mut outputs = Vec::with_capacity(n);
        for t in 0..n {
            let x_t = self.row(xs, t);
            let xp0 = self.matmul(x_t, w_ih);
            let xp = self.add_bias(xp0, b_ih);
            let hp0 = self.matmul(h, w_hh);
            let hp = self.add_bias(hp0, b_hh);
            h = self.gru_gates(xp, hp, h, hidden);
            outputs.push(h);
        }
        self.concat_rows(&outputs)
    }
}

/// An [`Exec`] backend that evaluates a whole batch of sentences as one
/// *packed-rows* problem: token rows packed into a single `[N, d]` matrix,
/// segment `s` occupying rows `[offset_of(s), offset_of(s) + len_of(s))` in
/// caller order.
///
/// Two implementations share this shape: [`BatchedExec`] (tape-free
/// inference) and [`BatchedTapeExec`] (autograd recording for batched
/// training). Layer forwards that need per-segment work (attention cores,
/// char compositions, decoder losses) are written once against this trait:
/// packed row-wise operations go through the plain [`Exec`] methods, and
/// per-segment subgraphs run inside [`scoped`](PackedExec::scoped), which
/// routes operations to the per-sentence execution path of the backend —
/// the inner [`FusedExec`] for inference, the raw per-sentence [`Tape`]
/// chain (tagged with the owning segment for gradient routing) for
/// training.
pub trait PackedExec: Exec {
    /// Number of segments (sentences) in the batch.
    fn segments(&self) -> usize;
    /// Length of segment `s`.
    fn len_of(&self, s: usize) -> usize;
    /// Packed row offset of segment `s`.
    fn offset_of(&self, s: usize) -> usize;
    /// Total packed rows across all segments.
    fn total_rows(&self) -> usize;
    /// Copies segment `s` out of a packed `[N, d]` value as its own
    /// `[len_of(s), d]` value.
    fn slice_segment(&mut self, v: Self::V, s: usize) -> Self::V;
    /// Runs `f` in segment `s`'s per-sentence scope: every operation
    /// recorded inside behaves exactly as it would on the per-sentence
    /// backend, and (in training) its parameter gradients are routed to
    /// segment `s`'s buffer.
    fn scoped<R>(&mut self, s: usize, f: impl FnOnce(&mut Self) -> R) -> R;
}

/// The recording backend: [`Tape`] itself. Named for symmetry with
/// [`FusedExec`].
pub type TapeExec = Tape;

impl Exec for Tape {
    type V = Var;

    fn constant(&mut self, value: Tensor) -> Var {
        Tape::constant(self, value)
    }

    fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        Tape::param(self, store, id)
    }

    fn lookup(&mut self, store: &ParamStore, id: ParamId, ids: &[usize]) -> Var {
        self.param_rows(store, id, ids)
    }

    fn value(&self, v: Var) -> &Tensor {
        Tape::value(self, v)
    }

    fn matmul(&mut self, a: Var, b: Var) -> Var {
        Tape::matmul(self, a, b)
    }

    fn transpose(&mut self, a: Var) -> Var {
        Tape::transpose(self, a)
    }

    fn add(&mut self, a: Var, b: Var) -> Var {
        Tape::add(self, a, b)
    }

    fn sub(&mut self, a: Var, b: Var) -> Var {
        Tape::sub(self, a, b)
    }

    fn mul(&mut self, a: Var, b: Var) -> Var {
        Tape::mul(self, a, b)
    }

    fn scale(&mut self, a: Var, s: f32) -> Var {
        Tape::scale(self, a, s)
    }

    fn add_bias(&mut self, m: Var, bias: Var) -> Var {
        Tape::add_bias(self, m, bias)
    }

    fn activation(&mut self, a: Var, act: Activation) -> Var {
        match act {
            Activation::None => a,
            Activation::Relu => self.relu(a),
            Activation::Tanh => self.tanh(a),
            Activation::Sigmoid => self.sigmoid(a),
        }
    }

    fn affine_act(&mut self, x: Var, w: Var, b: Var, act: Activation) -> Var {
        let lin = self.affine(x, w, b);
        Exec::activation(self, lin, act)
    }

    fn conv1d_act(
        &mut self,
        x: Var,
        w: Var,
        b: Var,
        k: usize,
        dilation: usize,
        act: Activation,
    ) -> Var {
        let conv = self.conv1d(x, w, b, k, dilation);
        Exec::activation(self, conv, act)
    }

    fn layer_norm(&mut self, x: Var, gain: Var, bias: Var) -> Var {
        Tape::layer_norm(self, x, gain, bias)
    }

    fn softmax_rows(&mut self, a: Var) -> Var {
        Tape::softmax_rows(self, a)
    }

    fn max_over_rows(&mut self, a: Var) -> Var {
        Tape::max_over_rows(self, a)
    }

    fn slice_cols(&mut self, a: Var, start: usize, len: usize) -> Var {
        Tape::slice_cols(self, a, start, len)
    }

    fn slice_rows(&mut self, a: Var, start: usize, len: usize) -> Var {
        Tape::slice_rows(self, a, start, len)
    }

    fn row(&mut self, a: Var, i: usize) -> Var {
        Tape::row(self, a, i)
    }

    fn concat_rows(&mut self, parts: &[Var]) -> Var {
        Tape::concat_rows(self, parts)
    }

    fn concat_cols(&mut self, parts: &[Var]) -> Var {
        Tape::concat_cols(self, parts)
    }

    fn reverse_rows(&mut self, a: Var) -> Var {
        Tape::reverse_rows(self, a)
    }

    // Expands to exactly the node chain `LstmCell::step` historically
    // pushed, so training tapes are unchanged node for node.
    fn lstm_gates(&mut self, pre: Var, c: Var, hidden: usize) -> (Var, Var) {
        let h = hidden;
        let i_pre = self.slice_cols(pre, 0, h);
        let f_pre = self.slice_cols(pre, h, h);
        let g_pre = self.slice_cols(pre, 2 * h, h);
        let o_pre = self.slice_cols(pre, 3 * h, h);
        let i = self.sigmoid(i_pre);
        let f = self.sigmoid(f_pre);
        let g = self.tanh(g_pre);
        let o = self.sigmoid(o_pre);
        let fc = Tape::mul(self, f, c);
        let ig = Tape::mul(self, i, g);
        let c_new = Tape::add(self, fc, ig);
        let ct = self.tanh(c_new);
        let h_new = Tape::mul(self, o, ct);
        (h_new, c_new)
    }

    // The historical `GruCell::step` chain, node for node.
    fn gru_gates(&mut self, xp: Var, hp: Var, h_prev: Var, hidden: usize) -> Var {
        let h = hidden;
        let xz = self.slice_cols(xp, 0, h);
        let xr = self.slice_cols(xp, h, h);
        let xn = self.slice_cols(xp, 2 * h, h);
        let hz = self.slice_cols(hp, 0, h);
        let hr = self.slice_cols(hp, h, h);
        let hn = self.slice_cols(hp, 2 * h, h);
        let z_pre = Tape::add(self, xz, hz);
        let z = self.sigmoid(z_pre);
        let r_pre = Tape::add(self, xr, hr);
        let r = self.sigmoid(r_pre);
        let rhn = Tape::mul(self, r, hn);
        let n_pre = Tape::add(self, xn, rhn);
        let n = self.tanh(n_pre);
        // h' = (1−z)⊙n + z⊙h  =  n − z⊙n + z⊙h
        let zn = Tape::mul(self, z, n);
        let zh = Tape::mul(self, z, h_prev);
        let n_minus = Tape::sub(self, n, zn);
        Tape::add(self, n_minus, zh)
    }

    fn positional_encoding(&mut self, n: usize, d: usize) -> Var {
        let pe = crate::nn::positional_encoding(n, d);
        Tape::constant(self, pe)
    }
}

/// A shared, thread-safe cache of sinusoidal positional encodings keyed by
/// `(length, dim)` — encodings are deterministic, so one computation per
/// shape serves every sentence.
#[derive(Default)]
pub struct PeCache {
    cache: Mutex<HashMap<(usize, usize), Arc<Tensor>>>,
}

impl PeCache {
    /// An empty cache.
    pub fn new() -> Self {
        PeCache::default()
    }

    /// Returns the `[n, d]` encoding, computing and caching it on a miss.
    pub fn get(&self, n: usize, d: usize) -> Arc<Tensor> {
        let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            cache.entry((n, d)).or_insert_with(|| Arc::new(crate::nn::positional_encoding(n, d))),
        )
    }

    /// Number of cached shapes.
    pub fn len(&self) -> usize {
        self.cache.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// What a [`FusedExec`] slot holds.
enum Slot {
    /// A computed intermediate, recycled into the buffer pool on drop.
    Owned(Tensor),
    /// A cache-shared tensor (positional encodings).
    Shared(Arc<Tensor>),
    /// A borrowed parameter — never copied.
    Param(ParamId),
}

/// Handle to a [`FusedExec`] value.
#[derive(Clone, Copy, Debug)]
pub struct FusedVal(usize);

/// The tape-free inference backend: evaluates each operation eagerly with
/// the fused kernels in [`crate::fused`], writing into pooled buffers.
///
/// Parameters are leased by id (no copy); every owned intermediate is
/// returned to the thread-local buffer [`crate::pool`] when the backend is
/// dropped, so a warm evaluation loop allocates nothing per sentence.
pub struct FusedExec<'a> {
    store: &'a ParamStore,
    pe: Option<&'a PeCache>,
    slots: Vec<Slot>,
}

impl<'a> FusedExec<'a> {
    /// A fresh backend reading parameters from `store`.
    pub fn new(store: &'a ParamStore) -> Self {
        FusedExec { store, pe: None, slots: Vec::with_capacity(64) }
    }

    /// Serves positional encodings from `cache` instead of recomputing.
    pub fn with_pe_cache(mut self, cache: &'a PeCache) -> Self {
        self.pe = Some(cache);
        self
    }

    fn push(&mut self, t: Tensor) -> FusedVal {
        self.slots.push(Slot::Owned(t));
        FusedVal(self.slots.len() - 1)
    }

    fn tensor(&self, v: FusedVal) -> &Tensor {
        match &self.slots[v.0] {
            Slot::Owned(t) => t,
            Slot::Shared(t) => t,
            Slot::Param(id) => self.store.value(*id),
        }
    }
}

impl Drop for FusedExec<'_> {
    fn drop(&mut self) {
        // One recycling sweep instead of per-op frees — mirrors how a
        // dropped Tape returns all node buffers to the pool.
        for slot in self.slots.drain(..) {
            if let Slot::Owned(t) = slot {
                pool::recycle(t.into_data());
            }
        }
    }
}

impl Exec for FusedExec<'_> {
    type V = FusedVal;

    fn constant(&mut self, value: Tensor) -> FusedVal {
        self.push(value)
    }

    fn param(&mut self, store: &ParamStore, id: ParamId) -> FusedVal {
        debug_assert!(std::ptr::eq(store, self.store), "FusedExec reads from its own store");
        let _ = store;
        self.slots.push(Slot::Param(id));
        FusedVal(self.slots.len() - 1)
    }

    fn lookup(&mut self, store: &ParamStore, id: ParamId, ids: &[usize]) -> FusedVal {
        let out = {
            let table = store.value(id);
            let mut out = Tensor::zeros_pooled(ids.len(), table.cols());
            for (r, &i) in ids.iter().enumerate() {
                out.row_mut(r).copy_from_slice(table.row(i));
            }
            out
        };
        self.push(out)
    }

    fn value(&self, v: FusedVal) -> &Tensor {
        self.tensor(v)
    }

    fn matmul(&mut self, a: FusedVal, b: FusedVal) -> FusedVal {
        let out = self.tensor(a).matmul(self.tensor(b));
        self.push(out)
    }

    fn transpose(&mut self, a: FusedVal) -> FusedVal {
        let out = self.tensor(a).transposed();
        self.push(out)
    }

    fn add(&mut self, a: FusedVal, b: FusedVal) -> FusedVal {
        let out = {
            let (av, bv) = (self.tensor(a), self.tensor(b));
            let mut out = Tensor::zeros_pooled(av.rows(), av.cols());
            for ((o, &x), &y) in out.data_mut().iter_mut().zip(av.data()).zip(bv.data()) {
                *o = x + y;
            }
            out
        };
        self.push(out)
    }

    fn sub(&mut self, a: FusedVal, b: FusedVal) -> FusedVal {
        let out = {
            let (av, bv) = (self.tensor(a), self.tensor(b));
            let mut out = Tensor::zeros_pooled(av.rows(), av.cols());
            for ((o, &x), &y) in out.data_mut().iter_mut().zip(av.data()).zip(bv.data()) {
                *o = x - y;
            }
            out
        };
        self.push(out)
    }

    fn mul(&mut self, a: FusedVal, b: FusedVal) -> FusedVal {
        let out = {
            let (av, bv) = (self.tensor(a), self.tensor(b));
            let mut out = Tensor::zeros_pooled(av.rows(), av.cols());
            for ((o, &x), &y) in out.data_mut().iter_mut().zip(av.data()).zip(bv.data()) {
                *o = x * y;
            }
            out
        };
        self.push(out)
    }

    fn scale(&mut self, a: FusedVal, s: f32) -> FusedVal {
        let out = {
            let av = self.tensor(a);
            let mut out = Tensor::zeros_pooled(av.rows(), av.cols());
            for (o, &x) in out.data_mut().iter_mut().zip(av.data()) {
                *o = x * s;
            }
            out
        };
        self.push(out)
    }

    fn add_bias(&mut self, m: FusedVal, bias: FusedVal) -> FusedVal {
        let out = {
            let (mv, bv) = (self.tensor(m), self.tensor(bias));
            let mut out = fused::pooled_copy(mv);
            fused::add_bias_in_place(&mut out, bv);
            out
        };
        self.push(out)
    }

    fn activation(&mut self, a: FusedVal, act: Activation) -> FusedVal {
        if act == Activation::None {
            return a;
        }
        let out = {
            let av = self.tensor(a);
            let mut out = fused::pooled_copy(av);
            act.apply(&mut out);
            out
        };
        self.push(out)
    }

    fn affine_act(&mut self, x: FusedVal, w: FusedVal, b: FusedVal, act: Activation) -> FusedVal {
        let out = fused::affine_act(self.tensor(x), self.tensor(w), self.tensor(b), act);
        self.push(out)
    }

    fn conv1d_act(
        &mut self,
        x: FusedVal,
        w: FusedVal,
        b: FusedVal,
        k: usize,
        dilation: usize,
        act: Activation,
    ) -> FusedVal {
        let out =
            fused::conv1d_act(self.tensor(x), self.tensor(w), self.tensor(b), k, dilation, act);
        self.push(out)
    }

    fn layer_norm(&mut self, x: FusedVal, gain: FusedVal, bias: FusedVal) -> FusedVal {
        let out = fused::layer_norm(self.tensor(x), self.tensor(gain), self.tensor(bias));
        self.push(out)
    }

    fn softmax_rows(&mut self, a: FusedVal) -> FusedVal {
        let out = {
            let mut out = fused::pooled_copy(self.tensor(a));
            fused::softmax_rows_in_place(&mut out);
            out
        };
        self.push(out)
    }

    fn max_over_rows(&mut self, a: FusedVal) -> FusedVal {
        let out = fused::max_over_rows(self.tensor(a));
        self.push(out)
    }

    fn slice_cols(&mut self, a: FusedVal, start: usize, len: usize) -> FusedVal {
        let out = fused::slice_cols(self.tensor(a), start, len);
        self.push(out)
    }

    fn slice_rows(&mut self, a: FusedVal, start: usize, len: usize) -> FusedVal {
        let out = {
            let av = self.tensor(a);
            assert!(start + len <= av.rows(), "slice_rows out of bounds");
            let mut out = Tensor::zeros_pooled(len, av.cols());
            for r in 0..len {
                out.row_mut(r).copy_from_slice(av.row(start + r));
            }
            out
        };
        self.push(out)
    }

    fn row(&mut self, a: FusedVal, i: usize) -> FusedVal {
        let out = {
            let av = self.tensor(a);
            let mut out = Tensor::zeros_pooled(1, av.cols());
            out.row_mut(0).copy_from_slice(av.row(i));
            out
        };
        self.push(out)
    }

    fn concat_rows(&mut self, parts: &[FusedVal]) -> FusedVal {
        assert!(!parts.is_empty(), "concat_rows of nothing");
        let out = {
            let total: usize = parts.iter().map(|&p| self.tensor(p).rows()).sum();
            let cols = self.tensor(parts[0]).cols();
            let mut out = Tensor::zeros_pooled(total, cols);
            let mut r = 0;
            for &p in parts {
                let pv = self.tensor(p);
                assert_eq!(pv.cols(), cols, "concat_rows width mismatch");
                for pr in 0..pv.rows() {
                    out.row_mut(r).copy_from_slice(pv.row(pr));
                    r += 1;
                }
            }
            out
        };
        self.push(out)
    }

    fn concat_cols(&mut self, parts: &[FusedVal]) -> FusedVal {
        assert!(!parts.is_empty(), "concat_cols of nothing");
        let out = {
            let rows = self.tensor(parts[0]).rows();
            let total: usize = parts.iter().map(|&p| self.tensor(p).cols()).sum();
            let mut out = Tensor::zeros_pooled(rows, total);
            let mut c = 0;
            for &p in parts {
                let pv = self.tensor(p);
                assert_eq!(pv.rows(), rows, "concat_cols height mismatch");
                let w = pv.cols();
                for r in 0..rows {
                    out.row_mut(r)[c..c + w].copy_from_slice(pv.row(r));
                }
                c += w;
            }
            out
        };
        self.push(out)
    }

    fn reverse_rows(&mut self, a: FusedVal) -> FusedVal {
        let out = {
            let av = self.tensor(a);
            let (n, d) = av.shape();
            let mut out = Tensor::zeros_pooled(n, d);
            for r in 0..n {
                out.row_mut(r).copy_from_slice(av.row(n - 1 - r));
            }
            out
        };
        self.push(out)
    }

    // The same scalar expressions the tape's expanded gate chain computes,
    // associated identically: cₙ = f·c + i·g, h = o·tanh(cₙ).
    fn lstm_gates(&mut self, pre: FusedVal, c: FusedVal, hidden: usize) -> (FusedVal, FusedVal) {
        let (h_new, c_new) = {
            let (pv, cv) = (self.tensor(pre), self.tensor(c));
            assert_eq!(pv.shape(), (1, 4 * hidden), "lstm_gates pre-activation shape");
            let mut h_new = Tensor::zeros_pooled(1, hidden);
            let mut c_new = Tensor::zeros_pooled(1, hidden);
            let p = pv.row(0);
            let c_prev = cv.row(0);
            for j in 0..hidden {
                let i = Activation::Sigmoid.eval(p[j]);
                let f = Activation::Sigmoid.eval(p[hidden + j]);
                let g = Activation::Tanh.eval(p[2 * hidden + j]);
                let o = Activation::Sigmoid.eval(p[3 * hidden + j]);
                let cn = f * c_prev[j] + i * g;
                c_new.row_mut(0)[j] = cn;
                h_new.row_mut(0)[j] = o * cn.tanh();
            }
            (h_new, c_new)
        };
        let h = self.push(h_new);
        let c = self.push(c_new);
        (h, c)
    }

    // h' = (n − z⊙n) + z⊙h, associated exactly as the tape's
    // sub-then-add chain.
    fn gru_gates(
        &mut self,
        xp: FusedVal,
        hp: FusedVal,
        h_prev: FusedVal,
        hidden: usize,
    ) -> FusedVal {
        let out = {
            let (xv, hv, prev) = (self.tensor(xp), self.tensor(hp), self.tensor(h_prev));
            assert_eq!(xv.shape(), (1, 3 * hidden), "gru_gates projection shape");
            let mut out = Tensor::zeros_pooled(1, hidden);
            let (x, h, hp_row) = (xv.row(0), hv.row(0), prev.row(0));
            for j in 0..hidden {
                let z = Activation::Sigmoid.eval(x[j] + h[j]);
                let r = Activation::Sigmoid.eval(x[hidden + j] + h[hidden + j]);
                let nj = (x[2 * hidden + j] + r * h[2 * hidden + j]).tanh();
                out.row_mut(0)[j] = (nj - z * nj) + z * hp_row[j];
            }
            out
        };
        self.push(out)
    }

    fn positional_encoding(&mut self, n: usize, d: usize) -> FusedVal {
        match self.pe {
            Some(cache) => {
                self.slots.push(Slot::Shared(cache.get(n, d)));
                FusedVal(self.slots.len() - 1)
            }
            None => {
                let pe = crate::nn::positional_encoding(n, d);
                self.push(pe)
            }
        }
    }

    // Batched override: one `[n, 4h]` input projection for the whole
    // sequence instead of n `[1, 4h]` matmuls, and the gate sweep runs in
    // place with no per-step slot bookkeeping. Per output element the
    // accumulation order equals the per-step chain's (row-wise matmul is
    // the same sweep; `(x + h) + b` is the tape's add-then-add_bias
    // association), so the floats are bit-identical to the default.
    fn lstm_sequence(
        &mut self,
        store: &ParamStore,
        w_ih: ParamId,
        w_hh: ParamId,
        b: ParamId,
        hidden: usize,
        xs: FusedVal,
    ) -> FusedVal {
        let out = {
            let xsv = self.tensor(xs);
            let n = xsv.rows();
            let h = hidden;
            let w_hh = store.value(w_hh);
            let b = store.value(b);
            let xp = xsv.matmul(store.value(w_ih)); // [n, 4h]
            let mut out = Tensor::zeros_pooled(n, h);
            let mut hstate = Tensor::zeros(1, h);
            let mut c = vec![0.0f32; h];
            let mut pre = vec![0.0f32; 4 * h];
            // The pre-activation build `(x + h) + b` runs across SIMD
            // lanes (same two-add sequence per element); the gate sweep
            // below is transcendental-bound and stays scalar for
            // bit-identity with the tape chain.
            let lvl = simd::active();
            for t in 0..n {
                let hp = hstate.matmul(w_hh); // [1, 4h]
                simd::add3(lvl, &mut pre, xp.row(t), hp.data(), b.data());
                fused::recycle(hp);
                let out_row = out.row_mut(t);
                for j in 0..h {
                    let i = Activation::Sigmoid.eval(pre[j]);
                    let f = Activation::Sigmoid.eval(pre[h + j]);
                    let g = Activation::Tanh.eval(pre[2 * h + j]);
                    let o = Activation::Sigmoid.eval(pre[3 * h + j]);
                    let cn = f * c[j] + i * g;
                    c[j] = cn;
                    out_row[j] = o * cn.tanh();
                }
                hstate.row_mut(0).copy_from_slice(out.row(t));
            }
            fused::recycle(xp);
            out
        };
        self.push(out)
    }

    // Batched override, same contract as `lstm_sequence`: per-element
    // float order matches the per-step chain exactly.
    fn gru_sequence(
        &mut self,
        store: &ParamStore,
        w_ih: ParamId,
        w_hh: ParamId,
        b_ih: ParamId,
        b_hh: ParamId,
        hidden: usize,
        xs: FusedVal,
    ) -> FusedVal {
        let out = {
            let xsv = self.tensor(xs);
            let n = xsv.rows();
            let h = hidden;
            let w_hh = store.value(w_hh);
            let b_hh = store.value(b_hh);
            let mut xp = xsv.matmul(store.value(w_ih)); // [n, 3h]
            fused::add_bias_in_place(&mut xp, store.value(b_ih));
            let mut out = Tensor::zeros_pooled(n, h);
            let mut hstate = Tensor::zeros(1, h);
            for t in 0..n {
                let mut hp = hstate.matmul(w_hh); // [1, 3h]
                fused::add_bias_in_place(&mut hp, b_hh);
                let x_row = xp.row(t);
                let h_row = hp.data();
                let h_prev = hstate.data();
                let out_row = out.row_mut(t);
                for j in 0..h {
                    let z = Activation::Sigmoid.eval(x_row[j] + h_row[j]);
                    let r = Activation::Sigmoid.eval(x_row[h + j] + h_row[h + j]);
                    let nj = (x_row[2 * h + j] + r * h_row[2 * h + j]).tanh();
                    // h' = (n − z⊙n) + z⊙h, associated exactly as the
                    // tape's sub-then-add chain.
                    out_row[j] = (nj - z * nj) + z * h_prev[j];
                }
                hstate.row_mut(0).copy_from_slice(out.row(t));
                fused::recycle(hp);
            }
            fused::recycle(xp);
            out
        };
        self.push(out)
    }
}

/// The cross-sentence batched inference backend: evaluates a whole batch of
/// sentences as one *packed-rows* problem.
///
/// The batch's token rows are packed into a single `[N, d]` matrix
/// (`N = Σ lenᵢ`), segment `s` occupying rows
/// `[offset_of(s), offset_of(s) + len_of(s))` in caller order. Row-wise
/// operations (affine layers, activations, layer norm, embedding lookups)
/// need no special handling — the inner [`FusedExec`] computes each packed
/// row exactly as it would the same row of a single sentence. The
/// sequence-shaped operations are overridden to respect segment
/// boundaries:
///
/// * [`lstm_sequence`](Exec::lstm_sequence) / [`gru_sequence`](Exec::gru_sequence)
///   run **one recurrent GEMM per timestep across the whole batch**: the
///   hidden states of every sentence still alive at timestep `t` form a
///   `[live, h]` matrix multiplied against `w_hh` in a single call.
///   Segments are ordered longest-first internally, so the live set at any
///   timestep is a contiguous prefix — the "per-timestep live-row mask" is
///   a prefix length, and shorter sentences drop out cleanly with no
///   padding arithmetic.
/// * [`conv1d_act`](Exec::conv1d_act) and
///   [`reverse_rows`](Exec::reverse_rows) apply per segment (a convolution
///   window must not straddle a sentence boundary).
/// * [`positional_encoding`](Exec::positional_encoding) stacks the
///   per-segment encodings.
///
/// **Float-parity contract.** The kernels in `crate::kernels` keep the
/// per-output-element accumulation order independent of how many rows a
/// GEMM has, and the gate sweeps here are the same scalar expressions as
/// the per-sentence [`FusedExec`] overrides, so every packed output row is
/// **bit-identical** to the row the per-sentence path produces — not just
/// tag-identical (`ner-core/tests/prop_batched.rs` pins this across the
/// model zoo).
///
/// Operations whose inputs are *not* packed token rows (per-word character
/// matrices, per-segment attention scores, greedy decoder steps) must run
/// on the [`inner`](BatchedExec::inner_mut) backend directly; the two share
/// one slot space, so handles interchange freely.
pub struct BatchedExec<'a> {
    inner: FusedExec<'a>,
    /// Per-segment lengths, caller order. Every length is ≥ 1.
    lens: Vec<usize>,
    /// Packed row offset of each segment, caller order.
    offsets: Vec<usize>,
    /// Segment indices sorted longest-first (ties by index, so the
    /// ordering — and therefore every float — is deterministic).
    order: Vec<usize>,
    /// `lens[order[p]]` — descending.
    sorted_lens: Vec<usize>,
    /// Total packed rows, `Σ lens`.
    total: usize,
    /// Inside a [`PackedExec::scoped`] call: packed overrides stand down
    /// and delegate to the inner per-sentence backend, because the values
    /// in flight are per-segment tensors, not packed rows.
    in_scope: bool,
}

impl<'a> BatchedExec<'a> {
    /// A fresh batched backend for segments of the given lengths.
    ///
    /// # Panics
    /// Panics if `lens` is empty or contains a zero length — empty
    /// sentences must be filtered out before packing.
    pub fn new(store: &'a ParamStore, lens: &[usize]) -> Self {
        assert!(!lens.is_empty(), "BatchedExec needs at least one segment");
        assert!(lens.iter().all(|&l| l > 0), "BatchedExec segments must be non-empty");
        let mut offsets = Vec::with_capacity(lens.len());
        let mut total = 0;
        for &l in lens {
            offsets.push(total);
            total += l;
        }
        let mut order: Vec<usize> = (0..lens.len()).collect();
        order.sort_by_key(|&s| std::cmp::Reverse(lens[s]));
        let sorted_lens = order.iter().map(|&s| lens[s]).collect();
        BatchedExec {
            inner: FusedExec::new(store),
            lens: lens.to_vec(),
            offsets,
            order,
            sorted_lens,
            total,
            in_scope: false,
        }
    }

    /// Serves positional encodings from `cache` instead of recomputing.
    pub fn with_pe_cache(mut self, cache: &'a PeCache) -> Self {
        self.inner = self.inner.with_pe_cache(cache);
        self
    }

    /// Number of segments (sentences) in the batch.
    pub fn segments(&self) -> usize {
        self.lens.len()
    }

    /// Length of segment `s`.
    pub fn len_of(&self, s: usize) -> usize {
        self.lens[s]
    }

    /// Packed row offset of segment `s`.
    pub fn offset_of(&self, s: usize) -> usize {
        self.offsets[s]
    }

    /// Total packed rows across all segments.
    pub fn total_rows(&self) -> usize {
        self.total
    }

    /// The inner per-sentence backend, for operations on tensors that are
    /// not packed token rows (char matrices, attention cores, decoders).
    pub fn inner_mut(&mut self) -> &mut FusedExec<'a> {
        &mut self.inner
    }

    /// Copies segment `s` out of a packed `[N, d]` value as its own
    /// `[len_of(s), d]` value.
    pub fn slice_segment(&mut self, v: FusedVal, s: usize) -> FusedVal {
        let (off, len) = (self.offsets[s], self.lens[s]);
        Exec::slice_rows(&mut self.inner, v, off, len)
    }

    /// How many segments are still alive (length > `t`) at timestep `t`.
    /// Sorted longest-first, the live set is always the prefix
    /// `order[..live_at(t)]`.
    fn live_at(&self, t: usize) -> usize {
        self.sorted_lens.partition_point(|&l| l > t)
    }
}

impl Exec for BatchedExec<'_> {
    type V = FusedVal;

    fn constant(&mut self, value: Tensor) -> FusedVal {
        self.inner.constant(value)
    }

    fn param(&mut self, store: &ParamStore, id: ParamId) -> FusedVal {
        self.inner.param(store, id)
    }

    fn lookup(&mut self, store: &ParamStore, id: ParamId, ids: &[usize]) -> FusedVal {
        self.inner.lookup(store, id, ids)
    }

    fn value(&self, v: FusedVal) -> &Tensor {
        self.inner.value(v)
    }

    fn matmul(&mut self, a: FusedVal, b: FusedVal) -> FusedVal {
        self.inner.matmul(a, b)
    }

    fn transpose(&mut self, a: FusedVal) -> FusedVal {
        self.inner.transpose(a)
    }

    fn add(&mut self, a: FusedVal, b: FusedVal) -> FusedVal {
        self.inner.add(a, b)
    }

    fn sub(&mut self, a: FusedVal, b: FusedVal) -> FusedVal {
        self.inner.sub(a, b)
    }

    fn mul(&mut self, a: FusedVal, b: FusedVal) -> FusedVal {
        self.inner.mul(a, b)
    }

    fn scale(&mut self, a: FusedVal, s: f32) -> FusedVal {
        self.inner.scale(a, s)
    }

    fn add_bias(&mut self, m: FusedVal, bias: FusedVal) -> FusedVal {
        self.inner.add_bias(m, bias)
    }

    fn activation(&mut self, a: FusedVal, act: Activation) -> FusedVal {
        self.inner.activation(a, act)
    }

    fn affine_act(&mut self, x: FusedVal, w: FusedVal, b: FusedVal, act: Activation) -> FusedVal {
        self.inner.affine_act(x, w, b, act)
    }

    // A convolution window must not straddle a sentence boundary, so the
    // packed input is convolved per segment; each segment's rows come out
    // bit-identical to convolving that sentence alone.
    fn conv1d_act(
        &mut self,
        x: FusedVal,
        w: FusedVal,
        b: FusedVal,
        k: usize,
        dilation: usize,
        act: Activation,
    ) -> FusedVal {
        if self.in_scope || PackedExec::segments(self) <= 1 {
            return self.inner.conv1d_act(x, w, b, k, dilation, act);
        }
        let out = {
            let xv = self.inner.tensor(x);
            let wv = self.inner.tensor(w);
            let bv = self.inner.tensor(b);
            assert_eq!(xv.rows(), self.total, "BatchedExec::conv1d_act expects packed token rows");
            let mut out: Option<Tensor> = None;
            for s in 0..self.lens.len() {
                let (off, len) = (self.offsets[s], self.lens[s]);
                let mut seg = Tensor::zeros_pooled(len, xv.cols());
                for r in 0..len {
                    seg.row_mut(r).copy_from_slice(xv.row(off + r));
                }
                let res = fused::conv1d_act(&seg, wv, bv, k, dilation, act);
                let dst = out.get_or_insert_with(|| Tensor::zeros_pooled(self.total, res.cols()));
                for r in 0..len {
                    dst.row_mut(off + r).copy_from_slice(res.row(r));
                }
                fused::recycle(res);
                fused::recycle(seg);
            }
            out.expect("at least one segment")
        };
        self.inner.push(out)
    }

    fn layer_norm(&mut self, x: FusedVal, gain: FusedVal, bias: FusedVal) -> FusedVal {
        self.inner.layer_norm(x, gain, bias)
    }

    fn softmax_rows(&mut self, a: FusedVal) -> FusedVal {
        self.inner.softmax_rows(a)
    }

    fn max_over_rows(&mut self, a: FusedVal) -> FusedVal {
        self.inner.max_over_rows(a)
    }

    fn slice_cols(&mut self, a: FusedVal, start: usize, len: usize) -> FusedVal {
        self.inner.slice_cols(a, start, len)
    }

    fn slice_rows(&mut self, a: FusedVal, start: usize, len: usize) -> FusedVal {
        self.inner.slice_rows(a, start, len)
    }

    fn row(&mut self, a: FusedVal, i: usize) -> FusedVal {
        self.inner.row(a, i)
    }

    fn concat_rows(&mut self, parts: &[FusedVal]) -> FusedVal {
        self.inner.concat_rows(parts)
    }

    fn concat_cols(&mut self, parts: &[FusedVal]) -> FusedVal {
        self.inner.concat_cols(parts)
    }

    // Sequence reversal is per sentence: each segment's rows flip in
    // place, never crossing its boundary.
    fn reverse_rows(&mut self, a: FusedVal) -> FusedVal {
        if self.in_scope || PackedExec::segments(self) <= 1 {
            return self.inner.reverse_rows(a);
        }
        let out = {
            let av = self.inner.tensor(a);
            assert_eq!(
                av.rows(),
                self.total,
                "BatchedExec::reverse_rows expects packed token rows"
            );
            let mut out = Tensor::zeros_pooled(self.total, av.cols());
            for s in 0..self.lens.len() {
                let (off, len) = (self.offsets[s], self.lens[s]);
                for r in 0..len {
                    out.row_mut(off + r).copy_from_slice(av.row(off + len - 1 - r));
                }
            }
            out
        };
        self.inner.push(out)
    }

    fn lstm_gates(&mut self, pre: FusedVal, c: FusedVal, hidden: usize) -> (FusedVal, FusedVal) {
        self.inner.lstm_gates(pre, c, hidden)
    }

    fn gru_gates(
        &mut self,
        xp: FusedVal,
        hp: FusedVal,
        h_prev: FusedVal,
        hidden: usize,
    ) -> FusedVal {
        self.inner.gru_gates(xp, hp, h_prev, hidden)
    }

    // Each segment restarts its positional clock: the packed encoding is
    // the per-segment `[len, d]` encodings stacked in caller order.
    fn positional_encoding(&mut self, n: usize, d: usize) -> FusedVal {
        if self.in_scope || PackedExec::segments(self) <= 1 {
            return self.inner.positional_encoding(n, d);
        }
        assert_eq!(n, self.total, "BatchedExec::positional_encoding expects packed token rows");
        let out = {
            let mut out = Tensor::zeros_pooled(n, d);
            for s in 0..self.lens.len() {
                let (off, len) = (self.offsets[s], self.lens[s]);
                match self.inner.pe {
                    Some(cache) => {
                        let pe = cache.get(len, d);
                        for r in 0..len {
                            out.row_mut(off + r).copy_from_slice(pe.row(r));
                        }
                    }
                    None => {
                        let pe = crate::nn::positional_encoding(len, d);
                        for r in 0..len {
                            out.row_mut(off + r).copy_from_slice(pe.row(r));
                        }
                        fused::recycle(pe);
                    }
                }
            }
            out
        };
        self.inner.push(out)
    }

    // One `[N, 4h]` input projection for the whole batch, then one
    // `[live, 4h]` recurrent GEMM per timestep shared by every sentence
    // still alive at that timestep. Per live row the recurrent product,
    // the `(x + h) + b` association, and the gate sweep are exactly the
    // per-sentence override's — the kernels keep per-output-element
    // accumulation order independent of GEMM height, so every output row
    // is bit-identical to scoring its sentence alone.
    fn lstm_sequence(
        &mut self,
        store: &ParamStore,
        w_ih: ParamId,
        w_hh: ParamId,
        b: ParamId,
        hidden: usize,
        xs: FusedVal,
    ) -> FusedVal {
        if self.in_scope || PackedExec::segments(self) <= 1 {
            return self.inner.lstm_sequence(store, w_ih, w_hh, b, hidden, xs);
        }
        let out = {
            let xsv = self.inner.tensor(xs);
            assert_eq!(
                xsv.rows(),
                self.total,
                "BatchedExec::lstm_sequence expects packed token rows"
            );
            let h = hidden;
            let w_hh = store.value(w_hh);
            let b = store.value(b);
            let xp = xsv.matmul(store.value(w_ih)); // [N, 4h]
            let mut out = Tensor::zeros_pooled(self.total, h);
            let nseg = self.order.len();
            let max_len = self.sorted_lens[0];
            // Hidden/cell state per sorted position; the live prefix only
            // ever shrinks, so positions are stable for a segment's whole
            // lifetime.
            let mut hstate = Tensor::zeros(nseg, h);
            let mut c = vec![0.0f32; nseg * h];
            let mut pre = vec![0.0f32; 4 * h];
            let lvl = simd::active();
            let mut live = nseg;
            for t in 0..max_len {
                let new_live = self.live_at(t);
                if new_live < live {
                    // Shrink the recurrent GEMM to the rows still alive.
                    let mut shrunk = Tensor::zeros(new_live, h);
                    for p in 0..new_live {
                        shrunk.row_mut(p).copy_from_slice(hstate.row(p));
                    }
                    hstate = shrunk;
                    live = new_live;
                }
                let hp = hstate.matmul(w_hh); // [live, 4h]
                for p in 0..live {
                    let r = self.offsets[self.order[p]] + t;
                    simd::add3(lvl, &mut pre, xp.row(r), hp.row(p), b.data());
                    let cs = &mut c[p * h..(p + 1) * h];
                    let out_row = out.row_mut(r);
                    for j in 0..h {
                        let i = Activation::Sigmoid.eval(pre[j]);
                        let f = Activation::Sigmoid.eval(pre[h + j]);
                        let g = Activation::Tanh.eval(pre[2 * h + j]);
                        let o = Activation::Sigmoid.eval(pre[3 * h + j]);
                        let cn = f * cs[j] + i * g;
                        cs[j] = cn;
                        out_row[j] = o * cn.tanh();
                    }
                    hstate.row_mut(p).copy_from_slice(out.row(r));
                }
                fused::recycle(hp);
            }
            fused::recycle(xp);
            out
        };
        self.inner.push(out)
    }

    // Batched override, same contract as `lstm_sequence`: one recurrent
    // GEMM per timestep over the live prefix, per-element float order
    // identical to the per-sentence sweep.
    fn gru_sequence(
        &mut self,
        store: &ParamStore,
        w_ih: ParamId,
        w_hh: ParamId,
        b_ih: ParamId,
        b_hh: ParamId,
        hidden: usize,
        xs: FusedVal,
    ) -> FusedVal {
        if self.in_scope || PackedExec::segments(self) <= 1 {
            return self.inner.gru_sequence(store, w_ih, w_hh, b_ih, b_hh, hidden, xs);
        }
        let out = {
            let xsv = self.inner.tensor(xs);
            assert_eq!(
                xsv.rows(),
                self.total,
                "BatchedExec::gru_sequence expects packed token rows"
            );
            let h = hidden;
            let w_hh = store.value(w_hh);
            let b_hh = store.value(b_hh);
            let mut xp = xsv.matmul(store.value(w_ih)); // [N, 3h]
            fused::add_bias_in_place(&mut xp, store.value(b_ih));
            let mut out = Tensor::zeros_pooled(self.total, h);
            let nseg = self.order.len();
            let max_len = self.sorted_lens[0];
            let mut hstate = Tensor::zeros(nseg, h);
            let mut live = nseg;
            for t in 0..max_len {
                let new_live = self.live_at(t);
                if new_live < live {
                    let mut shrunk = Tensor::zeros(new_live, h);
                    for p in 0..new_live {
                        shrunk.row_mut(p).copy_from_slice(hstate.row(p));
                    }
                    hstate = shrunk;
                    live = new_live;
                }
                let mut hp = hstate.matmul(w_hh); // [live, 3h]
                fused::add_bias_in_place(&mut hp, b_hh);
                for p in 0..live {
                    let r = self.offsets[self.order[p]] + t;
                    let x_row = xp.row(r);
                    let h_row = hp.row(p);
                    let out_row = out.row_mut(r);
                    {
                        let h_prev = hstate.row(p);
                        for j in 0..h {
                            let z = Activation::Sigmoid.eval(x_row[j] + h_row[j]);
                            let rr = Activation::Sigmoid.eval(x_row[h + j] + h_row[h + j]);
                            let nj = (x_row[2 * h + j] + rr * h_row[2 * h + j]).tanh();
                            // h' = (n − z⊙n) + z⊙h, associated exactly as
                            // the tape's sub-then-add chain.
                            out_row[j] = (nj - z * nj) + z * h_prev[j];
                        }
                    }
                    hstate.row_mut(p).copy_from_slice(out.row(r));
                }
                fused::recycle(hp);
            }
            fused::recycle(xp);
            out
        };
        self.inner.push(out)
    }
}

impl PackedExec for BatchedExec<'_> {
    fn segments(&self) -> usize {
        self.lens.len()
    }

    fn len_of(&self, s: usize) -> usize {
        self.lens[s]
    }

    fn offset_of(&self, s: usize) -> usize {
        self.offsets[s]
    }

    fn total_rows(&self) -> usize {
        self.total
    }

    fn slice_segment(&mut self, v: FusedVal, s: usize) -> FusedVal {
        BatchedExec::slice_segment(self, v, s)
    }

    // Inside a scope the values in flight are per-segment tensors, so the
    // packed overrides stand down and everything runs on the inner fused
    // backend — exactly what `inner_mut` callers did by hand.
    fn scoped<R>(&mut self, _s: usize, f: impl FnOnce(&mut Self) -> R) -> R {
        let prev = self.in_scope;
        self.in_scope = true;
        let out = f(self);
        self.in_scope = prev;
        out
    }
}

/// Row-copies `[off, off + len)` of `t` into a fresh `[len, cols]` tensor —
/// the bytes a per-sentence oracle would have seen for that segment.
fn rows_of(t: &Tensor, off: usize, len: usize) -> Tensor {
    let mut out = Tensor::zeros(len, t.cols());
    for r in 0..len {
        out.row_mut(r).copy_from_slice(t.row(off + r));
    }
    out
}

/// The batched **training** backend: records autograd nodes over the same
/// packed, length-sorted `[N, d]` layout [`BatchedExec`] uses for
/// inference, on a caller-provided [`Tape`].
///
/// Packed row-wise operations (projections, bias adds, layer norm,
/// convolutions, the whole-sequence LSTM/GRU sweeps) become *one* node for
/// the whole batch: the forward computes the same floats in the same order
/// as the fused batched backend (so `[B, T]` training forwards are
/// bit-identical to serving's), and the backward rule re-derives each
/// **segment's** parameter gradients with the per-sentence formulas on that
/// segment's row slice, emitting them through the tape's
/// [`SegEmitter`](crate::SegEmitter) so
/// [`Tape::backward_into_segmented`] can keep one
/// [`GradBuffer`](crate::GradBuffer) per sentence bit-identical to the historical
/// one-tape-per-sentence trainer. Per-segment subgraphs (char
/// compositions, attention cores, decoder losses) run inside
/// [`PackedExec::scoped`], which records the ordinary per-sentence node
/// chain tagged with the owning segment.
///
/// Two deliberate deviations from naive "replay the oracle" are proven
/// harmless in DESIGN.md ("Batched training"): zero-initialized
/// accumulators and skipped zero-padding adds can flip the sign of a ±0.0
/// gradient, and the full-height `dX` GEMMs rely on the kernels'
/// per-output-element accumulation order being height-independent
/// (pinned by `kernels::tests`).
pub struct BatchedTapeExec<'t> {
    tape: &'t mut Tape,
    /// Per-segment lengths, caller order. Every length is ≥ 1.
    lens: Vec<usize>,
    /// Packed row offset of each segment, caller order.
    offsets: Vec<usize>,
    /// Segment indices sorted longest-first (ties by index).
    order: Vec<usize>,
    /// `lens[order[p]]` — descending.
    sorted_lens: Vec<usize>,
    /// Total packed rows, `Σ lens`.
    total: usize,
    /// `Some(s)` inside a [`PackedExec::scoped`] call: every operation
    /// delegates to the raw per-sentence tape chain, tagged with segment
    /// `s` for gradient routing.
    scope: Option<usize>,
}

impl<'t> BatchedTapeExec<'t> {
    /// A fresh batched recording backend over `tape` for segments of the
    /// given lengths.
    ///
    /// # Panics
    /// Panics if `lens` is empty or contains a zero length — empty
    /// sentences must be filtered out before packing.
    pub fn new(tape: &'t mut Tape, lens: &[usize]) -> Self {
        assert!(!lens.is_empty(), "BatchedTapeExec needs at least one segment");
        assert!(lens.iter().all(|&l| l > 0), "BatchedTapeExec segments must be non-empty");
        let mut offsets = Vec::with_capacity(lens.len());
        let mut total = 0;
        for &l in lens {
            offsets.push(total);
            total += l;
        }
        let mut order: Vec<usize> = (0..lens.len()).collect();
        order.sort_by_key(|&s| std::cmp::Reverse(lens[s]));
        let sorted_lens = order.iter().map(|&s| lens[s]).collect();
        BatchedTapeExec {
            tape,
            lens: lens.to_vec(),
            offsets,
            order,
            sorted_lens,
            total,
            scope: None,
        }
    }

    /// How many segments are still alive (length > `t`) at timestep `t`.
    fn live_at(&self, t: usize) -> usize {
        self.sorted_lens.partition_point(|&l| l > t)
    }

    /// Inverted dropout over the packed rows, one RNG stream per segment:
    /// segment `s` draws exactly the `len_of(s) · d` row-major mask values
    /// the per-sentence oracle would draw from `rngs[s]`, so masks — and
    /// therefore every trained float — match the one-tape-per-sentence
    /// trainer. With `p == 0` this is the identity (no node), mirroring
    /// [`Tape::dropout`].
    pub fn dropout_packed(&mut self, a: Var, p: f32, rngs: &mut [impl Rng]) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0,1)");
        if p == 0.0 {
            return a;
        }
        assert_eq!(rngs.len(), self.lens.len(), "one RNG stream per segment");
        let v = self.tape.value(a);
        assert_eq!(v.rows(), self.total, "dropout_packed expects packed token rows");
        let cols = v.cols();
        let keep = 1.0 - p;
        let scale = 1.0 / keep;
        let mut mask: Vec<f32> = Vec::with_capacity(self.total * cols);
        for (s, rng) in rngs.iter_mut().enumerate() {
            let n = self.lens[s] * cols;
            mask.extend((0..n).map(|_| if rng.gen::<f32>() < keep { scale } else { 0.0 }));
        }
        let mut out = v.clone();
        for (o, &m) in out.data_mut().iter_mut().zip(&mask) {
            *o *= m;
        }
        self.tape.custom_in_class(OpClass::Dropout, out, &[a], move |g| {
            let mut ga = g.clone();
            for (o, &m) in ga.data_mut().iter_mut().zip(&mask) {
                *o *= m;
            }
            vec![Some(ga)]
        })
    }

    /// The underlying tape, for per-segment subgraphs that need
    /// `Tape`-only operations (decoder losses, CRF custom nodes). Use
    /// inside [`PackedExec::scoped`] so the recorded nodes are tagged
    /// with the owning segment; unscoped parameter leaves reached by the
    /// segmented backward panic.
    pub fn tape_mut(&mut self) -> &mut Tape {
        self.tape
    }

    /// Clones of the layout vectors for capture in backward closures.
    fn layout(&self) -> (Vec<usize>, Vec<usize>) {
        (self.lens.clone(), self.offsets.clone())
    }
}

impl Exec for BatchedTapeExec<'_> {
    type V = Var;

    fn constant(&mut self, value: Tensor) -> Var {
        self.tape.constant(value)
    }

    fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        self.tape.param(store, id)
    }

    // Packed word-level lookup: one gather node for all segments; the
    // backward emits each segment's `(indices, rows)` scatter exactly as
    // its per-sentence `param_rows` leaf would have sunk it. Scoped (or
    // non-packed) lookups fall through to the plain leaf, which routes by
    // its segment tag — an unscoped non-packed lookup would panic in the
    // segmented backward, by design.
    fn lookup(&mut self, store: &ParamStore, id: ParamId, ids: &[usize]) -> Var {
        if self.scope.is_some() || ids.len() != self.total {
            return self.tape.param_rows(store, id, ids);
        }
        let (lens, offsets) = self.layout();
        let ids_c = ids.to_vec();
        let value = store.value(id).gather_rows(ids);
        self.tape.custom_segmented(OpClass::Embedding, value, &[], move |g, em| {
            for s in 0..lens.len() {
                let (off, len) = (offsets[s], lens[s]);
                em.rows(s, id, ids_c[off..off + len].to_vec(), rows_of(g, off, len));
            }
            vec![]
        })
    }

    fn value(&self, v: Var) -> &Tensor {
        self.tape.value(v)
    }

    // A projection of the packed rows by a parameter matrix becomes one
    // packed GEMM node: `dX` is the full-height `g·Wᵀ` (bit-identical per
    // row because the kernels' accumulation order is height-independent),
    // and each segment's `dW = x_sᵀ·g_s` is re-derived on its row slice —
    // the per-sentence formula on the per-sentence bytes.
    fn matmul(&mut self, a: Var, b: Var) -> Var {
        if self.scope.is_none() {
            if let Some(id) = self.tape.param_id_of(b) {
                if self.tape.value(a).rows() == self.total {
                    let (lens, offsets) = self.layout();
                    let va = self.tape.value(a).clone();
                    let vb = self.tape.value(b).clone();
                    let out = va.matmul(&vb);
                    return self.tape.custom_segmented(
                        OpClass::MatMul,
                        out,
                        &[a, b],
                        move |g, em| {
                            for s in 0..lens.len() {
                                let (off, len) = (offsets[s], lens[s]);
                                let xs = rows_of(&va, off, len);
                                let gs = rows_of(g, off, len);
                                em.dense(s, id, xs.matmul_tn(&gs));
                            }
                            vec![Some(g.matmul_nt(&vb)), None]
                        },
                    );
                }
            }
        }
        Tape::matmul(self.tape, a, b)
    }

    fn transpose(&mut self, a: Var) -> Var {
        Tape::transpose(self.tape, a)
    }

    fn add(&mut self, a: Var, b: Var) -> Var {
        Tape::add(self.tape, a, b)
    }

    fn sub(&mut self, a: Var, b: Var) -> Var {
        Tape::sub(self.tape, a, b)
    }

    fn mul(&mut self, a: Var, b: Var) -> Var {
        Tape::mul(self.tape, a, b)
    }

    fn scale(&mut self, a: Var, s: f32) -> Var {
        Tape::scale(self.tape, a, s)
    }

    // Packed bias add: forward is the oracle's row loop over all packed
    // rows; each segment's `db` is the oracle's zero-init column sum over
    // its own rows, ascending.
    fn add_bias(&mut self, m: Var, bias: Var) -> Var {
        if self.scope.is_none() {
            if let Some(id) = self.tape.param_id_of(bias) {
                if self.tape.value(m).rows() == self.total {
                    let (lens, offsets) = self.layout();
                    let vb = self.tape.value(bias).clone();
                    let mut out = self.tape.value(m).clone();
                    for r in 0..out.rows() {
                        for (o, &bv) in out.row_mut(r).iter_mut().zip(vb.row(0)) {
                            *o += bv;
                        }
                    }
                    return self.tape.custom_segmented(
                        OpClass::Elementwise,
                        out,
                        &[m, bias],
                        move |g, em| {
                            for s in 0..lens.len() {
                                let (off, len) = (offsets[s], lens[s]);
                                let mut gb = Tensor::zeros(1, g.cols());
                                for r in 0..len {
                                    let src = g.row(off + r);
                                    for (o, &x) in gb.data_mut().iter_mut().zip(src) {
                                        *o += x;
                                    }
                                }
                                em.dense(s, id, gb);
                            }
                            vec![Some(g.clone()), None]
                        },
                    );
                }
            }
        }
        Tape::add_bias(self.tape, m, bias)
    }

    fn activation(&mut self, a: Var, act: Activation) -> Var {
        match act {
            Activation::None => a,
            Activation::Relu => self.tape.relu(a),
            Activation::Tanh => self.tape.tanh(a),
            Activation::Sigmoid => self.tape.sigmoid(a),
        }
    }

    fn affine_act(&mut self, x: Var, w: Var, b: Var, act: Activation) -> Var {
        let xw = Exec::matmul(self, x, w);
        let lin = Exec::add_bias(self, xw, b);
        Exec::activation(self, lin, act)
    }

    // Packed same-padded convolution: each segment is convolved within its
    // own bounds (windows never straddle a boundary), forward and backward
    // replicating `Tape::conv1d`'s loops — including its `x == 0` sparsity
    // skip — on the segment's rows.
    fn conv1d_act(
        &mut self,
        x: Var,
        w: Var,
        b: Var,
        k: usize,
        dilation: usize,
        act: Activation,
    ) -> Var {
        let packed = self.scope.is_none()
            && self.tape.value(x).rows() == self.total
            && self.tape.param_id_of(w).is_some()
            && self.tape.param_id_of(b).is_some();
        if !packed {
            return Exec::conv1d_act(&mut *self.tape, x, w, b, k, dilation, act);
        }
        assert!(k % 2 == 1, "conv1d requires an odd filter width");
        assert!(dilation >= 1, "dilation must be >= 1");
        let w_id = self.tape.param_id_of(w).expect("checked above");
        let b_id = self.tape.param_id_of(b).expect("checked above");
        let (lens, offsets) = self.layout();
        let vx = self.tape.value(x).clone();
        let vw = self.tape.value(w).clone();
        let vb = self.tape.value(b).clone();
        let d_in = vx.cols();
        let d_out = vw.cols();
        assert_eq!(vw.rows(), k * d_in, "filter bank shape must be [k*d_in, d_out]");
        assert_eq!(vb.shape(), (1, d_out), "bias shape must be [1, d_out]");
        let half = (k / 2) as isize;

        let mut out = Tensor::zeros(self.total, d_out);
        for s in 0..lens.len() {
            let (off, len) = (offsets[s], lens[s]);
            for t in 0..len as isize {
                let out_row = out.row_mut(off + t as usize);
                out_row.copy_from_slice(vb.row(0));
                for j in 0..k as isize {
                    let src = t + (j - half) * dilation as isize;
                    if src < 0 || src >= len as isize {
                        continue;
                    }
                    let x_row = vx.row(off + src as usize);
                    for (i, &xv) in x_row.iter().enumerate() {
                        if xv == 0.0 {
                            continue;
                        }
                        let w_row = vw.row(j as usize * d_in + i);
                        for (o, &wv) in out_row.iter_mut().zip(w_row) {
                            *o += xv * wv;
                        }
                    }
                }
            }
        }

        let total = self.total;
        let conv = self.tape.custom_segmented(OpClass::Conv, out, &[x, w, b], move |g, em| {
            let mut gx = Tensor::zeros(total, d_in);
            for s in 0..lens.len() {
                let (off, len) = (offsets[s], lens[s]);
                let mut gw = Tensor::zeros(k * d_in, d_out);
                let mut gb = Tensor::zeros(1, d_out);
                for t in 0..len as isize {
                    let g_row = g.row(off + t as usize);
                    for (o, &gv) in gb.row_mut(0).iter_mut().zip(g_row) {
                        *o += gv;
                    }
                    for j in 0..k as isize {
                        let src = t + (j - half) * dilation as isize;
                        if src < 0 || src >= len as isize {
                            continue;
                        }
                        let x_row = vx.row(off + src as usize);
                        let gx_row_base = off + src as usize;
                        for i in 0..d_in {
                            let w_row = vw.row(j as usize * d_in + i);
                            let gw_row = gw.row_mut(j as usize * d_in + i);
                            let xv = x_row[i];
                            let mut gx_acc = 0.0;
                            for ((&gv, &wv), gw_v) in g_row.iter().zip(w_row).zip(gw_row.iter_mut())
                            {
                                gx_acc += gv * wv;
                                *gw_v += gv * xv;
                            }
                            gx.row_mut(gx_row_base)[i] += gx_acc;
                        }
                    }
                }
                em.dense(s, b_id, gb);
                em.dense(s, w_id, gw);
            }
            vec![Some(gx), None, None]
        });
        Exec::activation(self, conv, act)
    }

    // Packed layer norm: the statistics are per row, so the forward is the
    // oracle's row loop over the packed matrix; `dx` is row-wise too, and
    // each segment's gain/bias sums run over its own rows, ascending.
    fn layer_norm(&mut self, x: Var, gain: Var, bias: Var) -> Var {
        let packed = self.scope.is_none()
            && self.tape.value(x).rows() == self.total
            && self.tape.param_id_of(gain).is_some()
            && self.tape.param_id_of(bias).is_some();
        if !packed {
            return Tape::layer_norm(self.tape, x, gain, bias);
        }
        const EPS: f32 = 1e-5;
        let gain_id = self.tape.param_id_of(gain).expect("checked above");
        let bias_id = self.tape.param_id_of(bias).expect("checked above");
        let (lens, offsets) = self.layout();
        let vx = self.tape.value(x).clone();
        let vg = self.tape.value(gain).clone();
        let vb = self.tape.value(bias).clone();
        let (n, d) = vx.shape();
        assert_eq!(vg.shape(), (1, d), "gain must be [1, d]");
        assert_eq!(vb.shape(), (1, d), "bias must be [1, d]");

        let mut xhat = Tensor::zeros(n, d);
        let mut inv_std = vec![0.0f32; n];
        let mut out = Tensor::zeros(n, d);
        for r in 0..n {
            let row = vx.row(r);
            let mu: f32 = row.iter().sum::<f32>() / d as f32;
            let var: f32 = row.iter().map(|&v| (v - mu) * (v - mu)).sum::<f32>() / d as f32;
            let istd = 1.0 / (var + EPS).sqrt();
            inv_std[r] = istd;
            for c in 0..d {
                let xh = (row[c] - mu) * istd;
                xhat.set2(r, c, xh);
                out.set2(r, c, vg.at2(0, c) * xh + vb.at2(0, c));
            }
        }

        self.tape.custom_segmented(OpClass::Norm, out, &[x, gain, bias], move |g, em| {
            let mut gx = Tensor::zeros(n, d);
            for s in 0..lens.len() {
                let (off, len) = (offsets[s], lens[s]);
                let mut ggain = Tensor::zeros(1, d);
                let mut gbias = Tensor::zeros(1, d);
                for r in off..off + len {
                    let grow = g.row(r);
                    let xhrow = xhat.row(r);
                    let dxhat: Vec<f32> =
                        grow.iter().zip(vg.row(0)).map(|(&gv, &gn)| gv * gn).collect();
                    let mean_dxhat: f32 = dxhat.iter().sum::<f32>() / d as f32;
                    let mean_dxhat_xhat: f32 =
                        dxhat.iter().zip(xhrow).map(|(&a, &b)| a * b).sum::<f32>() / d as f32;
                    let istd = inv_std[r];
                    for c in 0..d {
                        gx.set2(r, c, istd * (dxhat[c] - mean_dxhat - xhrow[c] * mean_dxhat_xhat));
                        ggain.row_mut(0)[c] += grow[c] * xhrow[c];
                        gbias.row_mut(0)[c] += grow[c];
                    }
                }
                em.dense(s, bias_id, gbias);
                em.dense(s, gain_id, ggain);
            }
            vec![Some(gx), None, None]
        })
    }

    fn softmax_rows(&mut self, a: Var) -> Var {
        Tape::softmax_rows(self.tape, a)
    }

    fn max_over_rows(&mut self, a: Var) -> Var {
        Tape::max_over_rows(self.tape, a)
    }

    fn slice_cols(&mut self, a: Var, start: usize, len: usize) -> Var {
        Tape::slice_cols(self.tape, a, start, len)
    }

    fn slice_rows(&mut self, a: Var, start: usize, len: usize) -> Var {
        Tape::slice_rows(self.tape, a, start, len)
    }

    fn row(&mut self, a: Var, i: usize) -> Var {
        Tape::row(self.tape, a, i)
    }

    fn concat_rows(&mut self, parts: &[Var]) -> Var {
        Tape::concat_rows(self.tape, parts)
    }

    fn concat_cols(&mut self, parts: &[Var]) -> Var {
        Tape::concat_cols(self.tape, parts)
    }

    // Per-segment row reversal, forward and backward (no parameters).
    fn reverse_rows(&mut self, a: Var) -> Var {
        if self.scope.is_some() {
            return Tape::reverse_rows(self.tape, a);
        }
        let av = self.tape.value(a);
        assert_eq!(av.rows(), self.total, "reverse_rows expects packed token rows");
        let (lens, offsets) = self.layout();
        let cols = av.cols();
        let total = self.total;
        let mut out = Tensor::zeros(total, cols);
        for s in 0..lens.len() {
            let (off, len) = (offsets[s], lens[s]);
            for r in 0..len {
                out.row_mut(off + r).copy_from_slice(av.row(off + len - 1 - r));
            }
        }
        self.tape.custom_in_class(OpClass::Shape, out, &[a], move |g| {
            let mut ga = Tensor::zeros(total, cols);
            for s in 0..lens.len() {
                let (off, len) = (offsets[s], lens[s]);
                for r in 0..len {
                    ga.row_mut(off + r).copy_from_slice(g.row(off + len - 1 - r));
                }
            }
            vec![Some(ga)]
        })
    }

    fn lstm_gates(&mut self, pre: Var, c: Var, hidden: usize) -> (Var, Var) {
        Exec::lstm_gates(&mut *self.tape, pre, c, hidden)
    }

    fn gru_gates(&mut self, xp: Var, hp: Var, h_prev: Var, hidden: usize) -> Var {
        Exec::gru_gates(&mut *self.tape, xp, hp, h_prev, hidden)
    }

    // Each segment restarts its positional clock; encodings are constants,
    // so the packed node is just the per-segment stacks.
    fn positional_encoding(&mut self, n: usize, d: usize) -> Var {
        if self.scope.is_some() {
            return Exec::positional_encoding(&mut *self.tape, n, d);
        }
        assert_eq!(n, self.total, "positional_encoding expects packed token rows");
        let mut out = Tensor::zeros(n, d);
        for s in 0..self.lens.len() {
            let (off, len) = (self.offsets[s], self.lens[s]);
            let pe = crate::nn::positional_encoding(len, d);
            for r in 0..len {
                out.row_mut(off + r).copy_from_slice(pe.row(r));
            }
            fused::recycle(pe);
        }
        self.tape.constant(out)
    }

    // One `[N, 4h]` input projection and one `[live, 4h]` recurrent GEMM
    // per timestep, exactly the fused batched forward — plus stashes of the
    // post-activation gates, cell states and tanh(c) so the backward is a
    // hand-rolled BPTT over the same packing. The backward's fold orders
    // mirror the per-sentence tape sweep: `dh` is the output gradient plus
    // the recurrent term, `dc` is the carry (from t+1's `f⊙c` node, visited
    // first) plus the tanh term, and each segment's `db`/`dW_hh`/`dW_ih`
    // accumulate per timestep, descending, through the same `matmul_tn`
    // kernel calls the oracle's `[1, ·]` nodes made.
    fn lstm_sequence(
        &mut self,
        store: &ParamStore,
        w_ih: ParamId,
        w_hh: ParamId,
        b: ParamId,
        hidden: usize,
        xs: Var,
    ) -> Var {
        if self.scope.is_some() {
            return lstm_chain_on_tape(self.tape, store, w_ih, w_hh, b, hidden, xs);
        }
        let h = hidden;
        let xsv = self.tape.value(xs);
        assert_eq!(xsv.rows(), self.total, "lstm_sequence expects packed token rows");
        let d_in = xsv.cols();
        let xs_c = xsv.clone();
        let w_ih_v = store.value(w_ih).clone();
        let w_hh_v = store.value(w_hh).clone();
        let b_v = store.value(b).clone();

        let xp = xs_c.matmul(&w_ih_v); // [N, 4h]
        let total = self.total;
        let mut out = Tensor::zeros(total, h);
        let mut gates = Tensor::zeros(total, 4 * h); // i | f | g | o, post-activation
        let mut cells = Tensor::zeros(total, h); // c after the update
        let mut cts = Tensor::zeros(total, h); // tanh(c)
        let nseg = self.order.len();
        let max_len = self.sorted_lens[0];
        let mut hstate = Tensor::zeros(nseg, h);
        let mut c = vec![0.0f32; nseg * h];
        let mut pre = vec![0.0f32; 4 * h];
        let lvl = simd::active();
        let mut live = nseg;
        for t in 0..max_len {
            let new_live = self.live_at(t);
            if new_live < live {
                let mut shrunk = Tensor::zeros(new_live, h);
                for p in 0..new_live {
                    shrunk.row_mut(p).copy_from_slice(hstate.row(p));
                }
                hstate = shrunk;
                live = new_live;
            }
            let hp = hstate.matmul(&w_hh_v); // [live, 4h]
            for p in 0..live {
                let r = self.offsets[self.order[p]] + t;
                simd::add3(lvl, &mut pre, xp.row(r), hp.row(p), b_v.data());
                let cs = &mut c[p * h..(p + 1) * h];
                let out_row = out.row_mut(r);
                let gates_row = gates.row_mut(r);
                let cells_row = cells.row_mut(r);
                let cts_row = cts.row_mut(r);
                for j in 0..h {
                    let i = Activation::Sigmoid.eval(pre[j]);
                    let f = Activation::Sigmoid.eval(pre[h + j]);
                    let g = Activation::Tanh.eval(pre[2 * h + j]);
                    let o = Activation::Sigmoid.eval(pre[3 * h + j]);
                    let cn = f * cs[j] + i * g;
                    cs[j] = cn;
                    gates_row[j] = i;
                    gates_row[h + j] = f;
                    gates_row[2 * h + j] = g;
                    gates_row[3 * h + j] = o;
                    cells_row[j] = cn;
                    let ctv = cn.tanh();
                    cts_row[j] = ctv;
                    out_row[j] = o * ctv;
                }
                hstate.row_mut(p).copy_from_slice(out.row(r));
            }
            fused::recycle(hp);
        }
        fused::recycle(xp);

        let out_c = out.clone();
        let (lens, offsets) = self.layout();
        let order = self.order.clone();
        let sorted_lens = self.sorted_lens.clone();
        self.tape.custom_segmented(OpClass::Custom, out, &[xs], move |g, em| {
            let nseg = lens.len();
            let mut db: Vec<Tensor> = (0..nseg).map(|_| Tensor::zeros(1, 4 * h)).collect();
            let mut dw_hh: Vec<Tensor> = (0..nseg).map(|_| Tensor::zeros(h, 4 * h)).collect();
            let mut dw_ih: Vec<Tensor> = (0..nseg).map(|_| Tensor::zeros(d_in, 4 * h)).collect();
            let mut dxs = Tensor::zeros(total, d_in);
            let mut rec = vec![0.0f32; nseg * h];
            let mut carry = vec![0.0f32; nseg * h];
            let zero_h = vec![0.0f32; h];
            let max_len = sorted_lens[0];
            for t in (0..max_len).rev() {
                let live = sorted_lens.partition_point(|&l| l > t);
                let live_next = sorted_lens.partition_point(|&l| l > t + 1);
                let mut dpre_mat = Tensor::zeros(live, 4 * h);
                for p in 0..live {
                    let s = order[p];
                    let r = offsets[s] + t;
                    let g_row = g.row(r);
                    let gates_row = gates.row(r);
                    let cts_row = cts.row(r);
                    let dpre_row = dpre_mat.row_mut(p);
                    for j in 0..h {
                        // dOut first (set by concat), then the t+1
                        // recurrent matmul's contribution.
                        let dh = if p < live_next { g_row[j] + rec[p * h + j] } else { g_row[j] };
                        let o = gates_row[3 * h + j];
                        let ctv = cts_row[j];
                        let do_ = dh * ctv;
                        let dct = dh * o;
                        let dcnew_t = dct * (1.0 - ctv * ctv);
                        // Carry first: t+1's f⊙c node has the later tape
                        // index and is visited before t's tanh.
                        let dc = if p < live_next { carry[p * h + j] + dcnew_t } else { dcnew_t };
                        let i = gates_row[j];
                        let f = gates_row[h + j];
                        let gg = gates_row[2 * h + j];
                        let c_prev = if t > 0 { cells.row(r - 1)[j] } else { 0.0 };
                        let di = dc * gg;
                        let dg = dc * i;
                        let df = dc * c_prev;
                        carry[p * h + j] = dc * f;
                        dpre_row[j] = di * (i * (1.0 - i));
                        dpre_row[h + j] = df * (f * (1.0 - f));
                        dpre_row[2 * h + j] = dg * (1.0 - gg * gg);
                        dpre_row[3 * h + j] = do_ * (o * (1.0 - o));
                    }
                    // Per-segment parameter gradients via the oracle's own
                    // kernel calls on [1, ·] shapes.
                    let dpre_t = Tensor::row_vector(dpre_mat.row(p));
                    db[s].add_scaled(&dpre_t, 1.0);
                    let h_prev = if t > 0 {
                        Tensor::row_vector(out_c.row(r - 1))
                    } else {
                        Tensor::row_vector(&zero_h)
                    };
                    dw_hh[s].add_scaled(&h_prev.matmul_tn(&dpre_t), 1.0);
                    let x_row = Tensor::row_vector(xs_c.row(r));
                    dw_ih[s].add_scaled(&x_row.matmul_tn(&dpre_t), 1.0);
                }
                let dx_mat = dpre_mat.matmul_nt(&w_ih_v); // [live, d_in]
                let rec_mat = dpre_mat.matmul_nt(&w_hh_v); // [live, h]
                for p in 0..live {
                    let r = offsets[order[p]] + t;
                    dxs.row_mut(r).copy_from_slice(dx_mat.row(p));
                    rec[p * h..(p + 1) * h].copy_from_slice(rec_mat.row(p));
                }
            }
            for (s, ((dbs, dwhhs), dwihs)) in db.into_iter().zip(dw_hh).zip(dw_ih).enumerate() {
                // Oracle sink order: b leaf (latest) first, then w_hh,
                // then w_ih.
                em.dense(s, b, dbs);
                em.dense(s, w_hh, dwhhs);
                em.dense(s, w_ih, dwihs);
            }
            vec![Some(dxs)]
        })
    }

    // Batched GRU, same contract as `lstm_sequence`. The backward's `dh`
    // folds three terms in oracle order — output gradient (set by concat),
    // then t+1's `z⊙h` product (later tape index, visited first), then
    // t+1's recurrent matmul — and `dz`/`dn` reproduce the `set-then-add`
    // order of the gate chain's mul/sub nodes.
    fn gru_sequence(
        &mut self,
        store: &ParamStore,
        w_ih: ParamId,
        w_hh: ParamId,
        b_ih: ParamId,
        b_hh: ParamId,
        hidden: usize,
        xs: Var,
    ) -> Var {
        if self.scope.is_some() {
            return gru_chain_on_tape(self.tape, store, w_ih, w_hh, b_ih, b_hh, hidden, xs);
        }
        let h = hidden;
        let xsv = self.tape.value(xs);
        assert_eq!(xsv.rows(), self.total, "gru_sequence expects packed token rows");
        let d_in = xsv.cols();
        let xs_c = xsv.clone();
        let w_ih_v = store.value(w_ih).clone();
        let w_hh_v = store.value(w_hh).clone();
        let b_ih_v = store.value(b_ih).clone();
        let b_hh_v = store.value(b_hh).clone();

        let mut xp = xs_c.matmul(&w_ih_v); // [N, 3h]
        fused::add_bias_in_place(&mut xp, &b_ih_v);
        let total = self.total;
        let mut out = Tensor::zeros(total, h);
        let mut gates = Tensor::zeros(total, 3 * h); // z | r | n, post-activation
        let mut hns = Tensor::zeros(total, h); // recurrent n-projection, post-bias
        let nseg = self.order.len();
        let max_len = self.sorted_lens[0];
        let mut hstate = Tensor::zeros(nseg, h);
        let mut live = nseg;
        for t in 0..max_len {
            let new_live = self.live_at(t);
            if new_live < live {
                let mut shrunk = Tensor::zeros(new_live, h);
                for p in 0..new_live {
                    shrunk.row_mut(p).copy_from_slice(hstate.row(p));
                }
                hstate = shrunk;
                live = new_live;
            }
            let mut hp = hstate.matmul(&w_hh_v); // [live, 3h]
            fused::add_bias_in_place(&mut hp, &b_hh_v);
            for p in 0..live {
                let r = self.offsets[self.order[p]] + t;
                let x_row = xp.row(r);
                let h_row = hp.row(p);
                let out_row = out.row_mut(r);
                let gates_row = gates.row_mut(r);
                let hns_row = hns.row_mut(r);
                {
                    let h_prev = hstate.row(p);
                    for j in 0..h {
                        let z = Activation::Sigmoid.eval(x_row[j] + h_row[j]);
                        let rr = Activation::Sigmoid.eval(x_row[h + j] + h_row[h + j]);
                        let nj = (x_row[2 * h + j] + rr * h_row[2 * h + j]).tanh();
                        out_row[j] = (nj - z * nj) + z * h_prev[j];
                        gates_row[j] = z;
                        gates_row[h + j] = rr;
                        gates_row[2 * h + j] = nj;
                        hns_row[j] = h_row[2 * h + j];
                    }
                }
                hstate.row_mut(p).copy_from_slice(out.row(r));
            }
            fused::recycle(hp);
        }
        fused::recycle(xp);

        let out_c = out.clone();
        let (lens, offsets) = self.layout();
        let order = self.order.clone();
        let sorted_lens = self.sorted_lens.clone();
        self.tape.custom_segmented(OpClass::Custom, out, &[xs], move |g, em| {
            let nseg = lens.len();
            let mut db_ih: Vec<Tensor> = (0..nseg).map(|_| Tensor::zeros(1, 3 * h)).collect();
            let mut db_hh: Vec<Tensor> = (0..nseg).map(|_| Tensor::zeros(1, 3 * h)).collect();
            let mut dw_hh: Vec<Tensor> = (0..nseg).map(|_| Tensor::zeros(h, 3 * h)).collect();
            let mut dw_ih: Vec<Tensor> = (0..nseg).map(|_| Tensor::zeros(d_in, 3 * h)).collect();
            let mut dxs = Tensor::zeros(total, d_in);
            let mut zh_term = vec![0.0f32; nseg * h];
            let mut mat_term = vec![0.0f32; nseg * h];
            let zero_h = vec![0.0f32; h];
            let max_len = sorted_lens[0];
            for t in (0..max_len).rev() {
                let live = sorted_lens.partition_point(|&l| l > t);
                let live_next = sorted_lens.partition_point(|&l| l > t + 1);
                let mut dhp_mat = Tensor::zeros(live, 3 * h);
                let mut dxp_mat = Tensor::zeros(live, 3 * h);
                for p in 0..live {
                    let s = order[p];
                    let r = offsets[s] + t;
                    let g_row = g.row(r);
                    let gates_row = gates.row(r);
                    let hns_row = hns.row(r);
                    let dhp_row = dhp_mat.row_mut(p);
                    let dxp_row = dxp_mat.row_mut(p);
                    for j in 0..h {
                        let dh = if p < live_next {
                            (g_row[j] + zh_term[p * h + j]) + mat_term[p * h + j]
                        } else {
                            g_row[j]
                        };
                        let z = gates_row[j];
                        let r_ = gates_row[h + j];
                        let n = gates_row[2 * h + j];
                        let h_prev = if t > 0 { out_c.row(r - 1)[j] } else { 0.0 };
                        let dzn = -dh;
                        // z⊙h (later node) sets, z⊙n adds.
                        let dz = dh * h_prev + dzn * n;
                        // The sub node sets, z⊙n adds.
                        let dn = dh + dzn * z;
                        let dn_pre = dn * (1.0 - n * n);
                        let drhn = dn_pre;
                        let hn = hns_row[j];
                        let dr = drhn * hn;
                        let dhn = drhn * r_;
                        let dr_pre = dr * (r_ * (1.0 - r_));
                        let dz_pre = dz * (z * (1.0 - z));
                        dhp_row[j] = dz_pre;
                        dhp_row[h + j] = dr_pre;
                        dhp_row[2 * h + j] = dhn;
                        dxp_row[j] = dz_pre;
                        dxp_row[h + j] = dr_pre;
                        dxp_row[2 * h + j] = dn_pre;
                        zh_term[p * h + j] = dh * z;
                    }
                    let dhp_t = Tensor::row_vector(dhp_mat.row(p));
                    db_hh[s].add_scaled(&dhp_t, 1.0);
                    let h_prev = if t > 0 {
                        Tensor::row_vector(out_c.row(r - 1))
                    } else {
                        Tensor::row_vector(&zero_h)
                    };
                    dw_hh[s].add_scaled(&h_prev.matmul_tn(&dhp_t), 1.0);
                    let dxp_t = Tensor::row_vector(dxp_mat.row(p));
                    db_ih[s].add_scaled(&dxp_t, 1.0);
                    let x_row = Tensor::row_vector(xs_c.row(r));
                    dw_ih[s].add_scaled(&x_row.matmul_tn(&dxp_t), 1.0);
                }
                let dx_mat = dxp_mat.matmul_nt(&w_ih_v); // [live, d_in]
                let mt = dhp_mat.matmul_nt(&w_hh_v); // [live, h]
                for p in 0..live {
                    let r = offsets[order[p]] + t;
                    dxs.row_mut(r).copy_from_slice(dx_mat.row(p));
                    mat_term[p * h..(p + 1) * h].copy_from_slice(mt.row(p));
                }
            }
            for (s, (((dbhhs, dbihs), dwhhs), dwihs)) in
                db_hh.into_iter().zip(db_ih).zip(dw_hh).zip(dw_ih).enumerate()
            {
                // Oracle sink order: b_hh, b_ih, w_hh, w_ih.
                em.dense(s, b_hh, dbhhs);
                em.dense(s, b_ih, dbihs);
                em.dense(s, w_hh, dwhhs);
                em.dense(s, w_ih, dwihs);
            }
            vec![Some(dxs)]
        })
    }
}

/// [`Exec::lstm_sequence`]'s provided per-step chain, invoked on the raw
/// tape (used for scoped char-level LSTMs, where `xs` is a per-word matrix
/// rather than packed rows).
fn lstm_chain_on_tape(
    tape: &mut Tape,
    store: &ParamStore,
    w_ih: ParamId,
    w_hh: ParamId,
    b: ParamId,
    hidden: usize,
    xs: Var,
) -> Var {
    Exec::lstm_sequence(tape, store, w_ih, w_hh, b, hidden, xs)
}

/// [`Exec::gru_sequence`]'s provided per-step chain on the raw tape.
#[allow(clippy::too_many_arguments)]
fn gru_chain_on_tape(
    tape: &mut Tape,
    store: &ParamStore,
    w_ih: ParamId,
    w_hh: ParamId,
    b_ih: ParamId,
    b_hh: ParamId,
    hidden: usize,
    xs: Var,
) -> Var {
    Exec::gru_sequence(tape, store, w_ih, w_hh, b_ih, b_hh, hidden, xs)
}

impl PackedExec for BatchedTapeExec<'_> {
    fn segments(&self) -> usize {
        self.lens.len()
    }

    fn len_of(&self, s: usize) -> usize {
        self.lens[s]
    }

    fn offset_of(&self, s: usize) -> usize {
        self.offsets[s]
    }

    fn total_rows(&self) -> usize {
        self.total
    }

    fn slice_segment(&mut self, v: Var, s: usize) -> Var {
        let (off, len) = (self.offsets[s], self.lens[s]);
        Tape::slice_rows(self.tape, v, off, len)
    }

    fn scoped<R>(&mut self, s: usize, f: impl FnOnce(&mut Self) -> R) -> R {
        let prev = self.scope;
        self.scope = Some(s);
        self.tape.set_segment(Some(s));
        let out = f(self);
        self.scope = prev;
        self.tape.set_segment(prev);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fill so tests need no RNG plumbing.
    fn filled(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut t = Tensor::zeros(rows, cols);
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        for v in t.data_mut() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *v = ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
        }
        t
    }

    fn pack(store: &ParamStore, lens: &[usize], d: usize, seed: u64) -> (Tensor, Vec<Tensor>) {
        let _ = store;
        let total: usize = lens.iter().sum();
        let packed = filled(total, d, seed);
        let mut segs = Vec::new();
        let mut off = 0;
        for &l in lens {
            let mut seg = Tensor::zeros(l, d);
            for r in 0..l {
                seg.row_mut(r).copy_from_slice(packed.row(off + r));
            }
            segs.push(seg);
            off += l;
        }
        (packed, segs)
    }

    fn assert_bits_eq(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "element {i}: {x} vs {y}");
        }
    }

    const LENS: &[usize] = &[5, 1, 3, 5, 2];

    #[test]
    fn batched_lstm_rows_are_bit_identical_to_per_segment_fused() {
        let h = 7;
        let d = 4;
        let mut store = ParamStore::default();
        let w_ih = store.register("w_ih", filled(d, 4 * h, 1));
        let w_hh = store.register("w_hh", filled(h, 4 * h, 2));
        let b = store.register("b", filled(1, 4 * h, 3));
        let (packed, segs) = pack(&store, LENS, d, 9);

        let mut bx = BatchedExec::new(&store, LENS);
        let xs = bx.constant(packed);
        let out = bx.lstm_sequence(&store, w_ih, w_hh, b, h, xs);
        let batched = bx.value(out).clone();

        let mut off = 0;
        for seg in &segs {
            let mut fx = FusedExec::new(&store);
            let xs = fx.constant(seg.clone());
            let out = fx.lstm_sequence(&store, w_ih, w_hh, b, h, xs);
            let want = fx.value(out);
            for r in 0..seg.rows() {
                assert_bits_eq(batched.row(off + r), want.row(r));
            }
            off += seg.rows();
        }
    }

    #[test]
    fn batched_gru_rows_are_bit_identical_to_per_segment_fused() {
        let h = 6;
        let d = 5;
        let mut store = ParamStore::default();
        let w_ih = store.register("w_ih", filled(d, 3 * h, 4));
        let w_hh = store.register("w_hh", filled(h, 3 * h, 5));
        let b_ih = store.register("b_ih", filled(1, 3 * h, 6));
        let b_hh = store.register("b_hh", filled(1, 3 * h, 7));
        let (packed, segs) = pack(&store, LENS, d, 11);

        let mut bx = BatchedExec::new(&store, LENS);
        let xs = bx.constant(packed);
        let out = bx.gru_sequence(&store, w_ih, w_hh, b_ih, b_hh, h, xs);
        let batched = bx.value(out).clone();

        let mut off = 0;
        for seg in &segs {
            let mut fx = FusedExec::new(&store);
            let xs = fx.constant(seg.clone());
            let out = fx.gru_sequence(&store, w_ih, w_hh, b_ih, b_hh, h, xs);
            let want = fx.value(out);
            for r in 0..seg.rows() {
                assert_bits_eq(batched.row(off + r), want.row(r));
            }
            off += seg.rows();
        }
    }

    #[test]
    fn batched_conv_and_reverse_respect_segment_boundaries() {
        let d = 4;
        let dout = 3;
        let k = 3;
        let mut store = ParamStore::default();
        let w = store.register("w", filled(k * d, dout, 8));
        let b = store.register("b", filled(1, dout, 9));
        let (packed, segs) = pack(&store, LENS, d, 13);

        let mut bx = BatchedExec::new(&store, LENS);
        let xs = bx.constant(packed);
        let (wv, bv) = (bx.param(&store, w), bx.param(&store, b));
        let conv = bx.conv1d_act(xs, wv, bv, k, 1, Activation::Relu);
        let rev = bx.reverse_rows(xs);
        let conv_t = bx.value(conv).clone();
        let rev_t = bx.value(rev).clone();

        let mut off = 0;
        for seg in &segs {
            let mut fx = FusedExec::new(&store);
            let xs = fx.constant(seg.clone());
            let (wv, bv) = (fx.param(&store, w), fx.param(&store, b));
            let conv = fx.conv1d_act(xs, wv, bv, k, 1, Activation::Relu);
            let rev = fx.reverse_rows(xs);
            for r in 0..seg.rows() {
                assert_bits_eq(conv_t.row(off + r), fx.value(conv).row(r));
                assert_bits_eq(rev_t.row(off + r), fx.value(rev).row(r));
            }
            off += seg.rows();
        }
    }

    #[test]
    fn batched_positional_encoding_restarts_per_segment() {
        let d = 8;
        let store = ParamStore::default();
        let cache = PeCache::new();
        for with_cache in [false, true] {
            let mut bx = BatchedExec::new(&store, LENS);
            if with_cache {
                bx = bx.with_pe_cache(&cache);
            }
            let total = bx.total_rows();
            let pe = bx.positional_encoding(total, d);
            let pe_t = bx.value(pe).clone();
            let mut off = 0;
            for &l in LENS {
                let want = crate::nn::positional_encoding(l, d);
                for r in 0..l {
                    assert_bits_eq(pe_t.row(off + r), want.row(r));
                }
                off += l;
            }
        }
    }

    #[test]
    fn single_segment_batch_delegates_to_fused() {
        let h = 4;
        let d = 3;
        let mut store = ParamStore::default();
        let w_ih = store.register("w_ih", filled(d, 4 * h, 1));
        let w_hh = store.register("w_hh", filled(h, 4 * h, 2));
        let b = store.register("b", filled(1, 4 * h, 3));
        let x = filled(6, d, 21);

        let mut bx = BatchedExec::new(&store, &[6]);
        let xs = bx.constant(x.clone());
        let out = bx.lstm_sequence(&store, w_ih, w_hh, b, h, xs);
        let got = bx.value(out).clone();

        let mut fx = FusedExec::new(&store);
        let xs = fx.constant(x);
        let out = fx.lstm_sequence(&store, w_ih, w_hh, b, h, xs);
        assert_bits_eq(got.data(), fx.value(out).data());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_length_segments_are_rejected() {
        let store = ParamStore::default();
        let _ = BatchedExec::new(&store, &[3, 0, 2]);
    }

    #[test]
    fn slice_segment_recovers_caller_order_rows() {
        let store = ParamStore::default();
        let lens = [2usize, 4, 1];
        let (packed, segs) = pack(&store, &lens, 3, 17);
        let mut bx = BatchedExec::new(&store, &lens);
        let xs = bx.constant(packed);
        for (s, seg) in segs.iter().enumerate() {
            let sl = bx.slice_segment(xs, s);
            assert_bits_eq(bx.value(sl).data(), seg.data());
        }
    }
    // ---- BatchedTapeExec: packed autograd vs the per-sentence oracle ----

    use crate::GradBuffer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Gradient comparison under the ±0 license: bit-identical except that
    /// +0.0 and −0.0 are interchangeable (zero-sign differences cannot
    /// reach the weights through clipping or any optimizer — DESIGN.md
    /// "Batched training").
    fn assert_grads_eq(name: &str, a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len(), "{name}: gradient length");
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!(
                x.to_bits() == y.to_bits() || (x == 0.0 && y == 0.0),
                "{name} element {i}: oracle {x} ({:#010x}) vs packed {y} ({:#010x})",
                x.to_bits(),
                y.to_bits()
            );
        }
    }

    /// The historical trainer: one tape and one [`GradBuffer`] per
    /// sentence, loss = sum of the graph's output, buffers applied to a
    /// fresh store clone in caller order. Returns that store.
    fn run_oracle(
        store: &ParamStore,
        segs: &[Tensor],
        build: impl Fn(&mut Tape, usize, Var) -> Var,
    ) -> ParamStore {
        let mut oracle = store.clone();
        for (s, seg) in segs.iter().enumerate() {
            let mut t = Tape::default();
            let xs = t.constant(seg.clone());
            let out = build(&mut t, s, xs);
            let loss = t.sum(out);
            let mut buf = GradBuffer::new(store.len());
            t.backward_into(loss, &mut buf);
            buf.apply_to(&mut oracle);
        }
        oracle
    }

    /// The batched trainer: one packed tape, per-segment sums folded left
    /// into one scalar loss, one segmented backward into per-segment
    /// buffers, applied to a fresh store clone in caller order.
    fn run_packed(
        store: &ParamStore,
        lens: &[usize],
        build: impl FnOnce(&mut BatchedTapeExec<'_>) -> Var,
    ) -> ParamStore {
        let mut tape = Tape::default();
        let loss = {
            let mut bx = BatchedTapeExec::new(&mut tape, lens);
            let out = build(&mut bx);
            let mut total = None;
            for s in 0..lens.len() {
                let hs = bx.slice_segment(out, s);
                let ls = bx.scoped(s, |ex| {
                    let t = ex.tape_mut();
                    t.sum(hs)
                });
                total = Some(match total {
                    None => ls,
                    Some(acc) => Exec::add(&mut bx, acc, ls),
                });
            }
            total.expect("at least one segment")
        };
        let mut buffers: Vec<GradBuffer> =
            (0..lens.len()).map(|_| GradBuffer::new(store.len())).collect();
        tape.backward_into_segmented(loss, &mut buffers);
        let mut got = store.clone();
        for buf in buffers {
            buf.apply_to(&mut got);
        }
        got
    }

    fn compare_grads(store: &ParamStore, oracle: &ParamStore, got: &ParamStore) {
        for id in store.ids() {
            assert_grads_eq(store.name(id), oracle.grad(id).data(), got.grad(id).data());
        }
    }

    #[test]
    fn packed_tape_affine_grads_match_oracle() {
        let (d, dout) = (4, 6);
        let mut store = ParamStore::default();
        let w = store.register("w", filled(d, dout, 31));
        let b = store.register("b", filled(1, dout, 32));
        let (packed, segs) = pack(&store, LENS, d, 101);
        let oracle = run_oracle(&store, &segs, |t, _, xs| {
            let wv = Exec::param(t, &store, w);
            let bv = Exec::param(t, &store, b);
            Exec::affine_act(t, xs, wv, bv, Activation::Tanh)
        });
        let got = run_packed(&store, LENS, |bx| {
            let xs = bx.constant(packed.clone());
            let wv = Exec::param(bx, &store, w);
            let bv = Exec::param(bx, &store, b);
            Exec::affine_act(bx, xs, wv, bv, Activation::Tanh)
        });
        compare_grads(&store, &oracle, &got);
    }

    #[test]
    fn packed_tape_conv_grads_match_oracle() {
        let (d, dout, k) = (3, 5, 3);
        for dilation in [1usize, 2] {
            let mut store = ParamStore::default();
            let w = store.register("w", filled(k * d, dout, 33));
            let b = store.register("b", filled(1, dout, 34));
            let (packed, segs) = pack(&store, LENS, d, 103);
            let oracle = run_oracle(&store, &segs, |t, _, xs| {
                let wv = Exec::param(t, &store, w);
                let bv = Exec::param(t, &store, b);
                Exec::conv1d_act(t, xs, wv, bv, k, dilation, Activation::Relu)
            });
            let got = run_packed(&store, LENS, |bx| {
                let xs = bx.constant(packed.clone());
                let wv = Exec::param(bx, &store, w);
                let bv = Exec::param(bx, &store, b);
                Exec::conv1d_act(bx, xs, wv, bv, k, dilation, Activation::Relu)
            });
            compare_grads(&store, &oracle, &got);
        }
    }

    #[test]
    fn packed_tape_layer_norm_grads_match_oracle() {
        let d = 6;
        let mut store = ParamStore::default();
        let gain = store.register("gain", filled(1, d, 35));
        let bias = store.register("bias", filled(1, d, 36));
        let (packed, segs) = pack(&store, LENS, d, 105);
        let oracle = run_oracle(&store, &segs, |t, _, xs| {
            let gv = Exec::param(t, &store, gain);
            let bv = Exec::param(t, &store, bias);
            Exec::layer_norm(t, xs, gv, bv)
        });
        let got = run_packed(&store, LENS, |bx| {
            let xs = bx.constant(packed.clone());
            let gv = Exec::param(bx, &store, gain);
            let bv = Exec::param(bx, &store, bias);
            Exec::layer_norm(bx, xs, gv, bv)
        });
        compare_grads(&store, &oracle, &got);
    }

    #[test]
    fn packed_tape_bilstm_composite_grads_match_oracle() {
        // The real BiLSTM shape: forward LSTM ‖ time-reversed LSTM,
        // concatenated and projected — exercises reverse_rows, both packed
        // sequence nodes, concat_cols and the packed projection together.
        let (d, h, dout) = (4, 5, 3);
        let mut store = ParamStore::default();
        let fw_ih = store.register("f.w_ih", filled(d, 4 * h, 41));
        let fw_hh = store.register("f.w_hh", filled(h, 4 * h, 42));
        let fb = store.register("f.b", filled(1, 4 * h, 43));
        let rw_ih = store.register("r.w_ih", filled(d, 4 * h, 44));
        let rw_hh = store.register("r.w_hh", filled(h, 4 * h, 45));
        let rb = store.register("r.b", filled(1, 4 * h, 46));
        let w = store.register("proj.w", filled(2 * h, dout, 47));
        let b = store.register("proj.b", filled(1, dout, 48));
        let (packed, segs) = pack(&store, LENS, d, 107);
        let oracle = run_oracle(&store, &segs, |t, _, xs| {
            let fwd = Exec::lstm_sequence(t, &store, fw_ih, fw_hh, fb, h, xs);
            let xr = Exec::reverse_rows(t, xs);
            let bwd_r = Exec::lstm_sequence(t, &store, rw_ih, rw_hh, rb, h, xr);
            let bwd = Exec::reverse_rows(t, bwd_r);
            let cat = Exec::concat_cols(t, &[fwd, bwd]);
            let wv = Exec::param(t, &store, w);
            let bv = Exec::param(t, &store, b);
            Exec::affine_act(t, cat, wv, bv, Activation::None)
        });
        let got = run_packed(&store, LENS, |bx| {
            let xs = bx.constant(packed.clone());
            let fwd = Exec::lstm_sequence(bx, &store, fw_ih, fw_hh, fb, h, xs);
            let xr = Exec::reverse_rows(bx, xs);
            let bwd_r = Exec::lstm_sequence(bx, &store, rw_ih, rw_hh, rb, h, xr);
            let bwd = Exec::reverse_rows(bx, bwd_r);
            let cat = Exec::concat_cols(bx, &[fwd, bwd]);
            let wv = Exec::param(bx, &store, w);
            let bv = Exec::param(bx, &store, b);
            Exec::affine_act(bx, cat, wv, bv, Activation::None)
        });
        compare_grads(&store, &oracle, &got);
    }

    #[test]
    fn packed_tape_gru_grads_match_oracle() {
        let (d, h) = (5, 6);
        let mut store = ParamStore::default();
        let w_ih = store.register("w_ih", filled(d, 3 * h, 51));
        let w_hh = store.register("w_hh", filled(h, 3 * h, 52));
        let b_ih = store.register("b_ih", filled(1, 3 * h, 53));
        let b_hh = store.register("b_hh", filled(1, 3 * h, 54));
        let (packed, segs) = pack(&store, LENS, d, 109);
        let oracle = run_oracle(&store, &segs, |t, _, xs| {
            Exec::gru_sequence(t, &store, w_ih, w_hh, b_ih, b_hh, h, xs)
        });
        let got = run_packed(&store, LENS, |bx| {
            let xs = bx.constant(packed.clone());
            Exec::gru_sequence(bx, &store, w_ih, w_hh, b_ih, b_hh, h, xs)
        });
        compare_grads(&store, &oracle, &got);
    }

    #[test]
    fn packed_tape_handles_odd_length_mixes() {
        // Single-sentence buckets, all-equal lengths, a dominant long
        // sentence on either side — the packed paths must not stand down
        // even when one segment makes the packing trivial.
        let (d, h) = (3, 4);
        let mut store = ParamStore::default();
        let w_ih = store.register("w_ih", filled(d, 4 * h, 55));
        let w_hh = store.register("w_hh", filled(h, 4 * h, 56));
        let b = store.register("b", filled(1, 4 * h, 57));
        for lens in
            [&[4usize][..], &[1][..], &[3, 3, 3][..], &[1, 1, 1, 1][..], &[7, 1][..], &[1, 7][..]]
        {
            let (packed, segs) = pack(&store, lens, d, 111);
            let oracle = run_oracle(&store, &segs, |t, _, xs| {
                Exec::lstm_sequence(t, &store, w_ih, w_hh, b, h, xs)
            });
            let got = run_packed(&store, lens, |bx| {
                let xs = bx.constant(packed.clone());
                Exec::lstm_sequence(bx, &store, w_ih, w_hh, b, h, xs)
            });
            compare_grads(&store, &oracle, &got);
        }
    }

    #[test]
    fn packed_tape_lookup_grads_match_oracle() {
        let (vocab, d, dout) = (13, 5, 3);
        let mut store = ParamStore::default();
        let emb = store.register("emb", filled(vocab, d, 61));
        let w = store.register("w", filled(d, dout, 62));
        let b = store.register("b", filled(1, dout, 63));
        let total: usize = LENS.iter().sum();
        // Deliberately repeat ids across segments so scatter rows collide.
        let ids: Vec<usize> = (0..total).map(|i| (i * 7 + 3) % vocab).collect();

        let mut oracle = store.clone();
        let mut off = 0;
        for &l in LENS {
            let mut t = Tape::default();
            let x = Exec::lookup(&mut t, &store, emb, &ids[off..off + l]);
            let wv = Exec::param(&mut t, &store, w);
            let bv = Exec::param(&mut t, &store, b);
            let a = Exec::affine_act(&mut t, x, wv, bv, Activation::Tanh);
            let loss = t.sum(a);
            let mut buf = GradBuffer::new(store.len());
            t.backward_into(loss, &mut buf);
            buf.apply_to(&mut oracle);
            off += l;
        }

        let got = run_packed(&store, LENS, |bx| {
            let x = Exec::lookup(bx, &store, emb, &ids);
            let wv = Exec::param(bx, &store, w);
            let bv = Exec::param(bx, &store, b);
            Exec::affine_act(bx, x, wv, bv, Activation::Tanh)
        });
        compare_grads(&store, &oracle, &got);
    }

    #[test]
    fn packed_tape_dropout_reproduces_per_sentence_masks() {
        let (d, dout, p) = (4, 3, 0.4);
        let mut store = ParamStore::default();
        let w = store.register("w", filled(d, dout, 65));
        let b = store.register("b", filled(1, dout, 66));
        let (packed, segs) = pack(&store, LENS, d, 113);
        let oracle = run_oracle(&store, &segs, |t, s, xs| {
            let mut rng = StdRng::seed_from_u64(900 + s as u64);
            let dx = t.dropout(xs, p, &mut rng);
            let wv = Exec::param(t, &store, w);
            let bv = Exec::param(t, &store, b);
            Exec::affine_act(t, dx, wv, bv, Activation::Tanh)
        });
        let got = run_packed(&store, LENS, |bx| {
            let xs = bx.constant(packed.clone());
            let mut rngs: Vec<StdRng> =
                (0..LENS.len()).map(|s| StdRng::seed_from_u64(900 + s as u64)).collect();
            let dx = bx.dropout_packed(xs, p, &mut rngs);
            let wv = Exec::param(bx, &store, w);
            let bv = Exec::param(bx, &store, b);
            Exec::affine_act(bx, dx, wv, bv, Activation::Tanh)
        });
        compare_grads(&store, &oracle, &got);
    }

    #[test]
    fn scoped_per_segment_params_route_to_owning_buffer() {
        // Per-segment subgraphs (the decoder-loss shape): parameters leased
        // *inside* `scoped` must sink to the owning segment's buffer.
        let (d, dout) = (4, 3);
        let mut store = ParamStore::default();
        let w = store.register("w", filled(d, dout, 71));
        let b = store.register("b", filled(1, dout, 72));
        let (packed, segs) = pack(&store, LENS, d, 115);
        let oracle = run_oracle(&store, &segs, |t, _, xs| {
            let wv = Exec::param(t, &store, w);
            let bv = Exec::param(t, &store, b);
            Exec::affine_act(t, xs, wv, bv, Activation::Sigmoid)
        });
        let got = run_packed(&store, LENS, |bx| {
            let xs = bx.constant(packed.clone());
            let mut parts = Vec::new();
            for s in 0..LENS.len() {
                let hs = bx.slice_segment(xs, s);
                let os = bx.scoped(s, |ex| {
                    let wv = Exec::param(ex, &store, w);
                    let bv = Exec::param(ex, &store, b);
                    Exec::affine_act(ex, hs, wv, bv, Activation::Sigmoid)
                });
                parts.push(os);
            }
            Exec::concat_rows(bx, &parts)
        });
        compare_grads(&store, &oracle, &got);
    }

    #[test]
    fn gemm_rows_are_height_independent() {
        // The packed backward relies on `matmul` / `matmul_nt` computing
        // each output row identically whatever the GEMM height: slicing
        // rows off the left operand must reproduce the full product's rows
        // bit for bit, at both small and kernel-threshold-crossing sizes.
        for (rows, inner, cols) in [(15usize, 24usize, 40usize), (130, 48, 64)] {
            let a = filled(rows, inner, 7);
            let b = filled(inner, cols, 8);
            let bt = filled(cols, inner, 9);
            let full = a.matmul(&b);
            let full_nt = a.matmul_nt(&bt);
            for (off, len) in [(0usize, 1usize), (3, 5), (rows - 1, 1), (2, rows / 2)] {
                let sl = rows_of(&a, off, len);
                let got = sl.matmul(&b);
                let got_nt = sl.matmul_nt(&bt);
                for r in 0..len {
                    assert_bits_eq(got.row(r), full.row(off + r));
                    assert_bits_eq(got_nt.row(r), full_nt.row(off + r));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "unscoped parameter leaf")]
    fn unscoped_param_leaf_panics_in_segmented_backward() {
        let mut store = ParamStore::default();
        let w = store.register("w", filled(3, 3, 81));
        let mut tape = Tape::default();
        let x = tape.constant(filled(2, 3, 82));
        let wv = tape.param(&store, w); // unscoped on purpose
        let y = Tape::matmul(&mut tape, x, wv);
        let loss = tape.sum(y);
        let mut buffers = vec![GradBuffer::new(store.len())];
        tape.backward_into_segmented(loss, &mut buffers);
    }
}
