//! The execution backend behind every layer forward.
//!
//! Each neural building block in [`crate::nn`] (and every module built on
//! top of it in `ner-core`) has exactly **one** forward implementation,
//! written against the [`Exec`] trait. The trait has two implementations:
//!
//! * [`Tape`] (aliased [`TapeExec`]) — records an autograd node per
//!   operation so the trainer can backpropagate. The trait methods expand
//!   coarse operations (`affine_act`, `lstm_gates`, …) into exactly the
//!   node chains the historical per-layer forwards pushed, so training
//!   trajectories are preserved.
//! * [`FusedExec`] — tape-free inference. Operations write into pooled
//!   buffers via the fused kernels in [`crate::fused`]; nothing is
//!   recorded, parameters are borrowed rather than copied, and every
//!   intermediate buffer is recycled into the thread-local [`crate::pool`]
//!   when the backend is dropped.
//!
//! **Determinism contract.** For every operation the two backends perform
//! the same floating-point arithmetic in the same order, so a forward pass
//! is bit-identical whichever backend runs it (`tests/prop_fused.rs`,
//! `ner-core/tests/plan_parity.rs`). Coarse operations exist precisely
//! where a fused kernel can skip tape bookkeeping without touching the
//! accumulation order.

use crate::fused::{self, Activation};
use crate::{pool, ParamId, ParamStore, Tape, Tensor, Var};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// An execution backend for layer forwards: either records autograd nodes
/// ([`Tape`]) or evaluates eagerly into pooled buffers ([`FusedExec`]).
///
/// Values are lightweight `Copy` handles; [`value`](Exec::value) reads the
/// tensor behind a handle.
pub trait Exec {
    /// Handle to a computed tensor.
    type V: Copy;

    /// Introduces a literal tensor.
    fn constant(&mut self, value: Tensor) -> Self::V;
    /// Leases a parameter.
    fn param(&mut self, store: &ParamStore, id: ParamId) -> Self::V;
    /// Gathers rows of an embedding table: `[ids.len(), dim]`.
    fn lookup(&mut self, store: &ParamStore, id: ParamId, ids: &[usize]) -> Self::V;
    /// Reads the tensor behind a handle.
    fn value(&self, v: Self::V) -> &Tensor;

    /// Matrix product `a·b`.
    fn matmul(&mut self, a: Self::V, b: Self::V) -> Self::V;
    /// Matrix transpose.
    fn transpose(&mut self, a: Self::V) -> Self::V;
    /// Elementwise sum.
    fn add(&mut self, a: Self::V, b: Self::V) -> Self::V;
    /// Elementwise difference.
    fn sub(&mut self, a: Self::V, b: Self::V) -> Self::V;
    /// Elementwise product.
    fn mul(&mut self, a: Self::V, b: Self::V) -> Self::V;
    /// Multiplication by a scalar.
    fn scale(&mut self, a: Self::V, s: f32) -> Self::V;
    /// Broadcast-adds the row vector `bias [1, d]` to every row of `m`.
    fn add_bias(&mut self, m: Self::V, bias: Self::V) -> Self::V;
    /// Applies a nonlinearity ([`Activation::None`] is the identity and
    /// returns `a` unchanged on both backends).
    fn activation(&mut self, a: Self::V, act: Activation) -> Self::V;

    /// Fused affine layer `act(x·w + b)` — on the tape this is the
    /// `affine` node followed by the activation node.
    fn affine_act(&mut self, x: Self::V, w: Self::V, b: Self::V, act: Activation) -> Self::V;
    /// Fused same-padded 1-D convolution + activation (layouts of
    /// `Tape::conv1d`).
    fn conv1d_act(
        &mut self,
        x: Self::V,
        w: Self::V,
        b: Self::V,
        k: usize,
        dilation: usize,
        act: Activation,
    ) -> Self::V;
    /// Row-wise layer normalization with learned gain/bias.
    fn layer_norm(&mut self, x: Self::V, gain: Self::V, bias: Self::V) -> Self::V;
    /// Row-wise softmax.
    fn softmax_rows(&mut self, a: Self::V) -> Self::V;
    /// Column-wise max over rows `[n, d] → [1, d]`.
    fn max_over_rows(&mut self, a: Self::V) -> Self::V;

    /// Copies columns `[start, start+len)`.
    fn slice_cols(&mut self, a: Self::V, start: usize, len: usize) -> Self::V;
    /// Copies rows `[start, start+len)`.
    fn slice_rows(&mut self, a: Self::V, start: usize, len: usize) -> Self::V;
    /// Copies row `i` as a `[1, d]` tensor.
    fn row(&mut self, a: Self::V, i: usize) -> Self::V;
    /// Stacks parts vertically.
    fn concat_rows(&mut self, parts: &[Self::V]) -> Self::V;
    /// Concatenates parts side by side.
    fn concat_cols(&mut self, parts: &[Self::V]) -> Self::V;
    /// Reverses the row order.
    fn reverse_rows(&mut self, a: Self::V) -> Self::V;

    /// One LSTM gate application on the pre-activation `pre [1, 4·hidden]`
    /// (gate order i, f, g, o) and previous cell state `c [1, hidden]`;
    /// returns `(h', c')`.
    fn lstm_gates(&mut self, pre: Self::V, c: Self::V, hidden: usize) -> (Self::V, Self::V);
    /// One GRU gate application on the bias-added projections
    /// `xp`/`hp [1, 3·hidden]` (gate order z, r, n) and previous hidden
    /// state; returns `h'`.
    fn gru_gates(&mut self, xp: Self::V, hp: Self::V, h_prev: Self::V, hidden: usize) -> Self::V;

    /// Sinusoidal positional encodings `[n, d]` — [`FusedExec`] serves
    /// them from a shared [`PeCache`] when one is attached.
    fn positional_encoding(&mut self, n: usize, d: usize) -> Self::V;

    /// Runs a whole LSTM pass left to right, `xs [n, d_in] → [n, hidden]`
    /// (gate order i, f, g, o). The provided implementation expands to the
    /// historical per-step chain — lease weights and zero states, then per
    /// step `row`, two `matmul`s, `add`, `add_bias`, [`Exec::lstm_gates`] —
    /// which is what the tape records. [`FusedExec`] overrides it with a
    /// sequence-batched input projection and an in-place gate sweep that
    /// compute the same floats in the same per-element order.
    fn lstm_sequence(
        &mut self,
        store: &ParamStore,
        w_ih: ParamId,
        w_hh: ParamId,
        b: ParamId,
        hidden: usize,
        xs: Self::V,
    ) -> Self::V {
        let n = self.value(xs).rows();
        let w_ih = self.param(store, w_ih);
        let w_hh = self.param(store, w_hh);
        let b = self.param(store, b);
        let mut h = self.constant(Tensor::zeros(1, hidden));
        let mut c = self.constant(Tensor::zeros(1, hidden));
        let mut outputs = Vec::with_capacity(n);
        for t in 0..n {
            let x_t = self.row(xs, t);
            let xp = self.matmul(x_t, w_ih);
            let hp = self.matmul(h, w_hh);
            let s = self.add(xp, hp);
            let pre = self.add_bias(s, b);
            let (h_new, c_new) = self.lstm_gates(pre, c, hidden);
            h = h_new;
            c = c_new;
            outputs.push(h);
        }
        self.concat_rows(&outputs)
    }

    /// Runs a whole GRU pass left to right, `xs [n, d_in] → [n, hidden]`
    /// (gate order z, r, n). Same contract as [`Exec::lstm_sequence`]: the
    /// provided implementation is the historical per-step tape chain,
    /// [`FusedExec`] overrides it with a batched equivalent.
    #[allow(clippy::too_many_arguments)]
    fn gru_sequence(
        &mut self,
        store: &ParamStore,
        w_ih: ParamId,
        w_hh: ParamId,
        b_ih: ParamId,
        b_hh: ParamId,
        hidden: usize,
        xs: Self::V,
    ) -> Self::V {
        let n = self.value(xs).rows();
        let w_ih = self.param(store, w_ih);
        let w_hh = self.param(store, w_hh);
        let b_ih = self.param(store, b_ih);
        let b_hh = self.param(store, b_hh);
        let mut h = self.constant(Tensor::zeros(1, hidden));
        let mut outputs = Vec::with_capacity(n);
        for t in 0..n {
            let x_t = self.row(xs, t);
            let xp0 = self.matmul(x_t, w_ih);
            let xp = self.add_bias(xp0, b_ih);
            let hp0 = self.matmul(h, w_hh);
            let hp = self.add_bias(hp0, b_hh);
            h = self.gru_gates(xp, hp, h, hidden);
            outputs.push(h);
        }
        self.concat_rows(&outputs)
    }
}

/// The recording backend: [`Tape`] itself. Named for symmetry with
/// [`FusedExec`].
pub type TapeExec = Tape;

impl Exec for Tape {
    type V = Var;

    fn constant(&mut self, value: Tensor) -> Var {
        Tape::constant(self, value)
    }

    fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        Tape::param(self, store, id)
    }

    fn lookup(&mut self, store: &ParamStore, id: ParamId, ids: &[usize]) -> Var {
        self.param_rows(store, id, ids)
    }

    fn value(&self, v: Var) -> &Tensor {
        Tape::value(self, v)
    }

    fn matmul(&mut self, a: Var, b: Var) -> Var {
        Tape::matmul(self, a, b)
    }

    fn transpose(&mut self, a: Var) -> Var {
        Tape::transpose(self, a)
    }

    fn add(&mut self, a: Var, b: Var) -> Var {
        Tape::add(self, a, b)
    }

    fn sub(&mut self, a: Var, b: Var) -> Var {
        Tape::sub(self, a, b)
    }

    fn mul(&mut self, a: Var, b: Var) -> Var {
        Tape::mul(self, a, b)
    }

    fn scale(&mut self, a: Var, s: f32) -> Var {
        Tape::scale(self, a, s)
    }

    fn add_bias(&mut self, m: Var, bias: Var) -> Var {
        Tape::add_bias(self, m, bias)
    }

    fn activation(&mut self, a: Var, act: Activation) -> Var {
        match act {
            Activation::None => a,
            Activation::Relu => self.relu(a),
            Activation::Tanh => self.tanh(a),
            Activation::Sigmoid => self.sigmoid(a),
        }
    }

    fn affine_act(&mut self, x: Var, w: Var, b: Var, act: Activation) -> Var {
        let lin = self.affine(x, w, b);
        Exec::activation(self, lin, act)
    }

    fn conv1d_act(
        &mut self,
        x: Var,
        w: Var,
        b: Var,
        k: usize,
        dilation: usize,
        act: Activation,
    ) -> Var {
        let conv = self.conv1d(x, w, b, k, dilation);
        Exec::activation(self, conv, act)
    }

    fn layer_norm(&mut self, x: Var, gain: Var, bias: Var) -> Var {
        Tape::layer_norm(self, x, gain, bias)
    }

    fn softmax_rows(&mut self, a: Var) -> Var {
        Tape::softmax_rows(self, a)
    }

    fn max_over_rows(&mut self, a: Var) -> Var {
        Tape::max_over_rows(self, a)
    }

    fn slice_cols(&mut self, a: Var, start: usize, len: usize) -> Var {
        Tape::slice_cols(self, a, start, len)
    }

    fn slice_rows(&mut self, a: Var, start: usize, len: usize) -> Var {
        Tape::slice_rows(self, a, start, len)
    }

    fn row(&mut self, a: Var, i: usize) -> Var {
        Tape::row(self, a, i)
    }

    fn concat_rows(&mut self, parts: &[Var]) -> Var {
        Tape::concat_rows(self, parts)
    }

    fn concat_cols(&mut self, parts: &[Var]) -> Var {
        Tape::concat_cols(self, parts)
    }

    fn reverse_rows(&mut self, a: Var) -> Var {
        Tape::reverse_rows(self, a)
    }

    // Expands to exactly the node chain `LstmCell::step` historically
    // pushed, so training tapes are unchanged node for node.
    fn lstm_gates(&mut self, pre: Var, c: Var, hidden: usize) -> (Var, Var) {
        let h = hidden;
        let i_pre = self.slice_cols(pre, 0, h);
        let f_pre = self.slice_cols(pre, h, h);
        let g_pre = self.slice_cols(pre, 2 * h, h);
        let o_pre = self.slice_cols(pre, 3 * h, h);
        let i = self.sigmoid(i_pre);
        let f = self.sigmoid(f_pre);
        let g = self.tanh(g_pre);
        let o = self.sigmoid(o_pre);
        let fc = Tape::mul(self, f, c);
        let ig = Tape::mul(self, i, g);
        let c_new = Tape::add(self, fc, ig);
        let ct = self.tanh(c_new);
        let h_new = Tape::mul(self, o, ct);
        (h_new, c_new)
    }

    // The historical `GruCell::step` chain, node for node.
    fn gru_gates(&mut self, xp: Var, hp: Var, h_prev: Var, hidden: usize) -> Var {
        let h = hidden;
        let xz = self.slice_cols(xp, 0, h);
        let xr = self.slice_cols(xp, h, h);
        let xn = self.slice_cols(xp, 2 * h, h);
        let hz = self.slice_cols(hp, 0, h);
        let hr = self.slice_cols(hp, h, h);
        let hn = self.slice_cols(hp, 2 * h, h);
        let z_pre = Tape::add(self, xz, hz);
        let z = self.sigmoid(z_pre);
        let r_pre = Tape::add(self, xr, hr);
        let r = self.sigmoid(r_pre);
        let rhn = Tape::mul(self, r, hn);
        let n_pre = Tape::add(self, xn, rhn);
        let n = self.tanh(n_pre);
        // h' = (1−z)⊙n + z⊙h  =  n − z⊙n + z⊙h
        let zn = Tape::mul(self, z, n);
        let zh = Tape::mul(self, z, h_prev);
        let n_minus = Tape::sub(self, n, zn);
        Tape::add(self, n_minus, zh)
    }

    fn positional_encoding(&mut self, n: usize, d: usize) -> Var {
        let pe = crate::nn::positional_encoding(n, d);
        Tape::constant(self, pe)
    }
}

/// A shared, thread-safe cache of sinusoidal positional encodings keyed by
/// `(length, dim)` — encodings are deterministic, so one computation per
/// shape serves every sentence.
#[derive(Default)]
pub struct PeCache {
    cache: Mutex<HashMap<(usize, usize), Arc<Tensor>>>,
}

impl PeCache {
    /// An empty cache.
    pub fn new() -> Self {
        PeCache::default()
    }

    /// Returns the `[n, d]` encoding, computing and caching it on a miss.
    pub fn get(&self, n: usize, d: usize) -> Arc<Tensor> {
        let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            cache.entry((n, d)).or_insert_with(|| Arc::new(crate::nn::positional_encoding(n, d))),
        )
    }

    /// Number of cached shapes.
    pub fn len(&self) -> usize {
        self.cache.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// What a [`FusedExec`] slot holds.
enum Slot {
    /// A computed intermediate, recycled into the buffer pool on drop.
    Owned(Tensor),
    /// A cache-shared tensor (positional encodings).
    Shared(Arc<Tensor>),
    /// A borrowed parameter — never copied.
    Param(ParamId),
}

/// Handle to a [`FusedExec`] value.
#[derive(Clone, Copy, Debug)]
pub struct FusedVal(usize);

/// The tape-free inference backend: evaluates each operation eagerly with
/// the fused kernels in [`crate::fused`], writing into pooled buffers.
///
/// Parameters are leased by id (no copy); every owned intermediate is
/// returned to the thread-local buffer [`crate::pool`] when the backend is
/// dropped, so a warm evaluation loop allocates nothing per sentence.
pub struct FusedExec<'a> {
    store: &'a ParamStore,
    pe: Option<&'a PeCache>,
    slots: Vec<Slot>,
}

impl<'a> FusedExec<'a> {
    /// A fresh backend reading parameters from `store`.
    pub fn new(store: &'a ParamStore) -> Self {
        FusedExec { store, pe: None, slots: Vec::with_capacity(64) }
    }

    /// Serves positional encodings from `cache` instead of recomputing.
    pub fn with_pe_cache(mut self, cache: &'a PeCache) -> Self {
        self.pe = Some(cache);
        self
    }

    fn push(&mut self, t: Tensor) -> FusedVal {
        self.slots.push(Slot::Owned(t));
        FusedVal(self.slots.len() - 1)
    }

    fn tensor(&self, v: FusedVal) -> &Tensor {
        match &self.slots[v.0] {
            Slot::Owned(t) => t,
            Slot::Shared(t) => t,
            Slot::Param(id) => self.store.value(*id),
        }
    }
}

impl Drop for FusedExec<'_> {
    fn drop(&mut self) {
        // One recycling sweep instead of per-op frees — mirrors how a
        // dropped Tape returns all node buffers to the pool.
        for slot in self.slots.drain(..) {
            if let Slot::Owned(t) = slot {
                pool::recycle(t.into_data());
            }
        }
    }
}

impl Exec for FusedExec<'_> {
    type V = FusedVal;

    fn constant(&mut self, value: Tensor) -> FusedVal {
        self.push(value)
    }

    fn param(&mut self, store: &ParamStore, id: ParamId) -> FusedVal {
        debug_assert!(std::ptr::eq(store, self.store), "FusedExec reads from its own store");
        let _ = store;
        self.slots.push(Slot::Param(id));
        FusedVal(self.slots.len() - 1)
    }

    fn lookup(&mut self, store: &ParamStore, id: ParamId, ids: &[usize]) -> FusedVal {
        let out = {
            let table = store.value(id);
            let mut out = Tensor::zeros_pooled(ids.len(), table.cols());
            for (r, &i) in ids.iter().enumerate() {
                out.row_mut(r).copy_from_slice(table.row(i));
            }
            out
        };
        self.push(out)
    }

    fn value(&self, v: FusedVal) -> &Tensor {
        self.tensor(v)
    }

    fn matmul(&mut self, a: FusedVal, b: FusedVal) -> FusedVal {
        let out = self.tensor(a).matmul(self.tensor(b));
        self.push(out)
    }

    fn transpose(&mut self, a: FusedVal) -> FusedVal {
        let out = self.tensor(a).transposed();
        self.push(out)
    }

    fn add(&mut self, a: FusedVal, b: FusedVal) -> FusedVal {
        let out = {
            let (av, bv) = (self.tensor(a), self.tensor(b));
            let mut out = Tensor::zeros_pooled(av.rows(), av.cols());
            for ((o, &x), &y) in out.data_mut().iter_mut().zip(av.data()).zip(bv.data()) {
                *o = x + y;
            }
            out
        };
        self.push(out)
    }

    fn sub(&mut self, a: FusedVal, b: FusedVal) -> FusedVal {
        let out = {
            let (av, bv) = (self.tensor(a), self.tensor(b));
            let mut out = Tensor::zeros_pooled(av.rows(), av.cols());
            for ((o, &x), &y) in out.data_mut().iter_mut().zip(av.data()).zip(bv.data()) {
                *o = x - y;
            }
            out
        };
        self.push(out)
    }

    fn mul(&mut self, a: FusedVal, b: FusedVal) -> FusedVal {
        let out = {
            let (av, bv) = (self.tensor(a), self.tensor(b));
            let mut out = Tensor::zeros_pooled(av.rows(), av.cols());
            for ((o, &x), &y) in out.data_mut().iter_mut().zip(av.data()).zip(bv.data()) {
                *o = x * y;
            }
            out
        };
        self.push(out)
    }

    fn scale(&mut self, a: FusedVal, s: f32) -> FusedVal {
        let out = {
            let av = self.tensor(a);
            let mut out = Tensor::zeros_pooled(av.rows(), av.cols());
            for (o, &x) in out.data_mut().iter_mut().zip(av.data()) {
                *o = x * s;
            }
            out
        };
        self.push(out)
    }

    fn add_bias(&mut self, m: FusedVal, bias: FusedVal) -> FusedVal {
        let out = {
            let (mv, bv) = (self.tensor(m), self.tensor(bias));
            let mut out = fused::pooled_copy(mv);
            fused::add_bias_in_place(&mut out, bv);
            out
        };
        self.push(out)
    }

    fn activation(&mut self, a: FusedVal, act: Activation) -> FusedVal {
        if act == Activation::None {
            return a;
        }
        let out = {
            let av = self.tensor(a);
            let mut out = fused::pooled_copy(av);
            act.apply(&mut out);
            out
        };
        self.push(out)
    }

    fn affine_act(&mut self, x: FusedVal, w: FusedVal, b: FusedVal, act: Activation) -> FusedVal {
        let out = fused::affine_act(self.tensor(x), self.tensor(w), self.tensor(b), act);
        self.push(out)
    }

    fn conv1d_act(
        &mut self,
        x: FusedVal,
        w: FusedVal,
        b: FusedVal,
        k: usize,
        dilation: usize,
        act: Activation,
    ) -> FusedVal {
        let out =
            fused::conv1d_act(self.tensor(x), self.tensor(w), self.tensor(b), k, dilation, act);
        self.push(out)
    }

    fn layer_norm(&mut self, x: FusedVal, gain: FusedVal, bias: FusedVal) -> FusedVal {
        let out = fused::layer_norm(self.tensor(x), self.tensor(gain), self.tensor(bias));
        self.push(out)
    }

    fn softmax_rows(&mut self, a: FusedVal) -> FusedVal {
        let out = {
            let mut out = fused::pooled_copy(self.tensor(a));
            fused::softmax_rows_in_place(&mut out);
            out
        };
        self.push(out)
    }

    fn max_over_rows(&mut self, a: FusedVal) -> FusedVal {
        let out = fused::max_over_rows(self.tensor(a));
        self.push(out)
    }

    fn slice_cols(&mut self, a: FusedVal, start: usize, len: usize) -> FusedVal {
        let out = fused::slice_cols(self.tensor(a), start, len);
        self.push(out)
    }

    fn slice_rows(&mut self, a: FusedVal, start: usize, len: usize) -> FusedVal {
        let out = {
            let av = self.tensor(a);
            assert!(start + len <= av.rows(), "slice_rows out of bounds");
            let mut out = Tensor::zeros_pooled(len, av.cols());
            for r in 0..len {
                out.row_mut(r).copy_from_slice(av.row(start + r));
            }
            out
        };
        self.push(out)
    }

    fn row(&mut self, a: FusedVal, i: usize) -> FusedVal {
        let out = {
            let av = self.tensor(a);
            let mut out = Tensor::zeros_pooled(1, av.cols());
            out.row_mut(0).copy_from_slice(av.row(i));
            out
        };
        self.push(out)
    }

    fn concat_rows(&mut self, parts: &[FusedVal]) -> FusedVal {
        assert!(!parts.is_empty(), "concat_rows of nothing");
        let out = {
            let total: usize = parts.iter().map(|&p| self.tensor(p).rows()).sum();
            let cols = self.tensor(parts[0]).cols();
            let mut out = Tensor::zeros_pooled(total, cols);
            let mut r = 0;
            for &p in parts {
                let pv = self.tensor(p);
                assert_eq!(pv.cols(), cols, "concat_rows width mismatch");
                for pr in 0..pv.rows() {
                    out.row_mut(r).copy_from_slice(pv.row(pr));
                    r += 1;
                }
            }
            out
        };
        self.push(out)
    }

    fn concat_cols(&mut self, parts: &[FusedVal]) -> FusedVal {
        assert!(!parts.is_empty(), "concat_cols of nothing");
        let out = {
            let rows = self.tensor(parts[0]).rows();
            let total: usize = parts.iter().map(|&p| self.tensor(p).cols()).sum();
            let mut out = Tensor::zeros_pooled(rows, total);
            let mut c = 0;
            for &p in parts {
                let pv = self.tensor(p);
                assert_eq!(pv.rows(), rows, "concat_cols height mismatch");
                let w = pv.cols();
                for r in 0..rows {
                    out.row_mut(r)[c..c + w].copy_from_slice(pv.row(r));
                }
                c += w;
            }
            out
        };
        self.push(out)
    }

    fn reverse_rows(&mut self, a: FusedVal) -> FusedVal {
        let out = {
            let av = self.tensor(a);
            let (n, d) = av.shape();
            let mut out = Tensor::zeros_pooled(n, d);
            for r in 0..n {
                out.row_mut(r).copy_from_slice(av.row(n - 1 - r));
            }
            out
        };
        self.push(out)
    }

    // The same scalar expressions the tape's expanded gate chain computes,
    // associated identically: cₙ = f·c + i·g, h = o·tanh(cₙ).
    fn lstm_gates(&mut self, pre: FusedVal, c: FusedVal, hidden: usize) -> (FusedVal, FusedVal) {
        let (h_new, c_new) = {
            let (pv, cv) = (self.tensor(pre), self.tensor(c));
            assert_eq!(pv.shape(), (1, 4 * hidden), "lstm_gates pre-activation shape");
            let mut h_new = Tensor::zeros_pooled(1, hidden);
            let mut c_new = Tensor::zeros_pooled(1, hidden);
            let p = pv.row(0);
            let c_prev = cv.row(0);
            for j in 0..hidden {
                let i = Activation::Sigmoid.eval(p[j]);
                let f = Activation::Sigmoid.eval(p[hidden + j]);
                let g = Activation::Tanh.eval(p[2 * hidden + j]);
                let o = Activation::Sigmoid.eval(p[3 * hidden + j]);
                let cn = f * c_prev[j] + i * g;
                c_new.row_mut(0)[j] = cn;
                h_new.row_mut(0)[j] = o * cn.tanh();
            }
            (h_new, c_new)
        };
        let h = self.push(h_new);
        let c = self.push(c_new);
        (h, c)
    }

    // h' = (n − z⊙n) + z⊙h, associated exactly as the tape's
    // sub-then-add chain.
    fn gru_gates(
        &mut self,
        xp: FusedVal,
        hp: FusedVal,
        h_prev: FusedVal,
        hidden: usize,
    ) -> FusedVal {
        let out = {
            let (xv, hv, prev) = (self.tensor(xp), self.tensor(hp), self.tensor(h_prev));
            assert_eq!(xv.shape(), (1, 3 * hidden), "gru_gates projection shape");
            let mut out = Tensor::zeros_pooled(1, hidden);
            let (x, h, hp_row) = (xv.row(0), hv.row(0), prev.row(0));
            for j in 0..hidden {
                let z = Activation::Sigmoid.eval(x[j] + h[j]);
                let r = Activation::Sigmoid.eval(x[hidden + j] + h[hidden + j]);
                let nj = (x[2 * hidden + j] + r * h[2 * hidden + j]).tanh();
                out.row_mut(0)[j] = (nj - z * nj) + z * hp_row[j];
            }
            out
        };
        self.push(out)
    }

    fn positional_encoding(&mut self, n: usize, d: usize) -> FusedVal {
        match self.pe {
            Some(cache) => {
                self.slots.push(Slot::Shared(cache.get(n, d)));
                FusedVal(self.slots.len() - 1)
            }
            None => {
                let pe = crate::nn::positional_encoding(n, d);
                self.push(pe)
            }
        }
    }

    // Batched override: one `[n, 4h]` input projection for the whole
    // sequence instead of n `[1, 4h]` matmuls, and the gate sweep runs in
    // place with no per-step slot bookkeeping. Per output element the
    // accumulation order equals the per-step chain's (row-wise matmul is
    // the same sweep; `(x + h) + b` is the tape's add-then-add_bias
    // association), so the floats are bit-identical to the default.
    fn lstm_sequence(
        &mut self,
        store: &ParamStore,
        w_ih: ParamId,
        w_hh: ParamId,
        b: ParamId,
        hidden: usize,
        xs: FusedVal,
    ) -> FusedVal {
        let out = {
            let xsv = self.tensor(xs);
            let n = xsv.rows();
            let h = hidden;
            let w_hh = store.value(w_hh);
            let b = store.value(b);
            let xp = xsv.matmul(store.value(w_ih)); // [n, 4h]
            let mut out = Tensor::zeros_pooled(n, h);
            let mut hstate = Tensor::zeros(1, h);
            let mut c = vec![0.0f32; h];
            let mut pre = vec![0.0f32; 4 * h];
            for t in 0..n {
                let hp = hstate.matmul(w_hh); // [1, 4h]
                for ((p, (&xv, &hv)), &bv) in
                    pre.iter_mut().zip(xp.row(t).iter().zip(hp.data())).zip(b.data())
                {
                    *p = (xv + hv) + bv;
                }
                fused::recycle(hp);
                let out_row = out.row_mut(t);
                for j in 0..h {
                    let i = Activation::Sigmoid.eval(pre[j]);
                    let f = Activation::Sigmoid.eval(pre[h + j]);
                    let g = Activation::Tanh.eval(pre[2 * h + j]);
                    let o = Activation::Sigmoid.eval(pre[3 * h + j]);
                    let cn = f * c[j] + i * g;
                    c[j] = cn;
                    out_row[j] = o * cn.tanh();
                }
                hstate.row_mut(0).copy_from_slice(out.row(t));
            }
            fused::recycle(xp);
            out
        };
        self.push(out)
    }

    // Batched override, same contract as `lstm_sequence`: per-element
    // float order matches the per-step chain exactly.
    fn gru_sequence(
        &mut self,
        store: &ParamStore,
        w_ih: ParamId,
        w_hh: ParamId,
        b_ih: ParamId,
        b_hh: ParamId,
        hidden: usize,
        xs: FusedVal,
    ) -> FusedVal {
        let out = {
            let xsv = self.tensor(xs);
            let n = xsv.rows();
            let h = hidden;
            let w_hh = store.value(w_hh);
            let b_hh = store.value(b_hh);
            let mut xp = xsv.matmul(store.value(w_ih)); // [n, 3h]
            fused::add_bias_in_place(&mut xp, store.value(b_ih));
            let mut out = Tensor::zeros_pooled(n, h);
            let mut hstate = Tensor::zeros(1, h);
            for t in 0..n {
                let mut hp = hstate.matmul(w_hh); // [1, 3h]
                fused::add_bias_in_place(&mut hp, b_hh);
                let x_row = xp.row(t);
                let h_row = hp.data();
                let h_prev = hstate.data();
                let out_row = out.row_mut(t);
                for j in 0..h {
                    let z = Activation::Sigmoid.eval(x_row[j] + h_row[j]);
                    let r = Activation::Sigmoid.eval(x_row[h + j] + h_row[h + j]);
                    let nj = (x_row[2 * h + j] + r * h_row[2 * h + j]).tanh();
                    // h' = (n − z⊙n) + z⊙h, associated exactly as the
                    // tape's sub-then-add chain.
                    out_row[j] = (nj - z * nj) + z * h_prev[j];
                }
                hstate.row_mut(0).copy_from_slice(out.row(t));
                fused::recycle(hp);
            }
            fused::recycle(xp);
            out
        };
        self.push(out)
    }
}
