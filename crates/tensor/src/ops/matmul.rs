//! Matrix product and transpose.

use crate::{OpClass, Tape, Var};

impl Tape {
    /// Matrix product `a [m,k] × b [k,n] → [m,n]`.
    ///
    /// Backward: `∂L/∂a = g · bᵀ`, `∂L/∂b = aᵀ · g`, both computed with the
    /// transpose-fused kernels so no transposed copies are materialized.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        let out = va.matmul(vb);
        let (ca, cb) = (va.clone(), vb.clone());
        self.custom_in_class(OpClass::MatMul, out, &[a, b], move |g| {
            vec![Some(g.matmul_nt(&cb)), Some(ca.matmul_tn(g))]
        })
    }

    /// Transpose `a [m,n] → [n,m]`.
    pub fn transpose(&mut self, a: Var) -> Var {
        let out = self.value(a).transposed();
        self.custom_in_class(OpClass::MatMul, out, &[a], |g| vec![Some(g.transposed())])
    }
}

#[cfg(test)]
mod tests {
    use crate::ops::gradcheck::assert_grads;
    use crate::{Tape, Tensor};

    #[test]
    fn matmul_grads_left_and_right() {
        // Gradient with respect to the left operand.
        assert_grads(Tensor::from_rows(&[&[0.5, -1.0], &[2.0, 0.3]]), 1e-2, |t, x| {
            let b = t.constant(Tensor::from_rows(&[&[1.0, 2.0, -1.0], &[0.5, -0.5, 1.5]]));
            let y = t.matmul(x, b);
            let sq = t.mul(y, y);
            t.sum(sq)
        });
        // Gradient with respect to the right operand.
        assert_grads(Tensor::from_rows(&[&[1.0, 2.0], &[-0.5, 0.7]]), 1e-2, |t, x| {
            let a = t.constant(Tensor::from_rows(&[&[0.3, -0.2], &[1.1, 0.8], &[-0.4, 0.6]]));
            let y = t.matmul(a, x);
            let sq = t.mul(y, y);
            t.sum(sq)
        });
    }

    #[test]
    fn transpose_round_trip_grads() {
        assert_grads(Tensor::from_rows(&[&[1.0, -2.0, 3.0]]), 1e-2, |t, x| {
            let xt = t.transpose(x);
            let y = t.matmul(x, xt); // x·xᵀ = squared norm as 1x1
            t.sum(y)
        });
    }

    #[test]
    fn matmul_forward_shape() {
        let mut t = Tape::new();
        let a = t.constant(Tensor::zeros(3, 4));
        let b = t.constant(Tensor::zeros(4, 5));
        let c = t.matmul(a, b);
        assert_eq!(t.value(c).shape(), (3, 5));
    }
}
