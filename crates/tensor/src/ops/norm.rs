//! Layer normalization (per row), as used inside the Transformer encoder.

use crate::{OpClass, Tape, Tensor, Var};

impl Tape {
    /// Row-wise layer normalization with learned gain and bias:
    /// `y = gain ⊙ (x − μ)/σ + bias`, where μ, σ are per-row statistics.
    ///
    /// * `x` — `[n, d]`
    /// * `gain`, `bias` — `[1, d]`
    pub fn layer_norm(&mut self, x: Var, gain: Var, bias: Var) -> Var {
        const EPS: f32 = 1e-5;
        let (vx, vg, vb) = (self.value(x), self.value(gain), self.value(bias));
        let (n, d) = vx.shape();
        assert_eq!(vg.shape(), (1, d), "gain must be [1, d]");
        assert_eq!(vb.shape(), (1, d), "bias must be [1, d]");

        let mut xhat = Tensor::zeros(n, d);
        let mut inv_std = vec![0.0f32; n];
        let mut out = Tensor::zeros(n, d);
        for r in 0..n {
            let row = vx.row(r);
            let mu: f32 = row.iter().sum::<f32>() / d as f32;
            let var: f32 = row.iter().map(|&v| (v - mu) * (v - mu)).sum::<f32>() / d as f32;
            let istd = 1.0 / (var + EPS).sqrt();
            inv_std[r] = istd;
            for c in 0..d {
                let xh = (row[c] - mu) * istd;
                xhat.set2(r, c, xh);
                out.set2(r, c, vg.at2(0, c) * xh + vb.at2(0, c));
            }
        }

        let gain_c = vg.clone();
        self.custom_in_class(OpClass::Norm, out, &[x, gain, bias], move |g| {
            let mut gx = Tensor::zeros(n, d);
            let mut ggain = Tensor::zeros(1, d);
            let mut gbias = Tensor::zeros(1, d);
            for r in 0..n {
                let grow = g.row(r);
                let xhrow = xhat.row(r);
                // dxhat = g ⊙ gain
                let dxhat: Vec<f32> =
                    grow.iter().zip(gain_c.row(0)).map(|(&gv, &gn)| gv * gn).collect();
                let mean_dxhat: f32 = dxhat.iter().sum::<f32>() / d as f32;
                let mean_dxhat_xhat: f32 =
                    dxhat.iter().zip(xhrow).map(|(&a, &b)| a * b).sum::<f32>() / d as f32;
                let istd = inv_std[r];
                for c in 0..d {
                    gx.set2(r, c, istd * (dxhat[c] - mean_dxhat - xhrow[c] * mean_dxhat_xhat));
                    ggain.row_mut(0)[c] += grow[c] * xhrow[c];
                    gbias.row_mut(0)[c] += grow[c];
                }
            }
            vec![Some(gx), Some(ggain), Some(gbias)]
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::ops::gradcheck::assert_grads;
    use crate::{Tape, Tensor};

    #[test]
    fn normalizes_rows_to_zero_mean_unit_var() {
        let mut t = Tape::new();
        let x = t.constant(Tensor::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]));
        let g = t.constant(Tensor::row_vector(&[1.0, 1.0, 1.0, 1.0]));
        let b = t.constant(Tensor::zeros(1, 4));
        let y = t.layer_norm(x, g, b);
        let row = t.value(y).row(0);
        let mean: f32 = row.iter().sum::<f32>() / 4.0;
        let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layer_norm_grads_wrt_input() {
        assert_grads(Tensor::from_rows(&[&[0.5, -1.0, 2.0], &[1.0, 0.3, -0.8]]), 2e-2, |t, x| {
            let g = t.constant(Tensor::row_vector(&[1.2, 0.8, -0.5]));
            let b = t.constant(Tensor::row_vector(&[0.1, -0.2, 0.3]));
            let y = t.layer_norm(x, g, b);
            let w = t.constant(Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[-1.0, 0.5, 1.5]]));
            let p = t.mul(y, w);
            t.sum(p)
        });
    }

    #[test]
    fn layer_norm_grads_wrt_gain_and_bias() {
        assert_grads(Tensor::row_vector(&[1.2, 0.8, -0.5]), 1e-2, |t, g| {
            let x = t.constant(Tensor::from_rows(&[&[0.5, -1.0, 2.0], &[1.0, 0.3, -0.8]]));
            let b = t.constant(Tensor::row_vector(&[0.1, -0.2, 0.3]));
            let y = t.layer_norm(x, g, b);
            let sq = t.mul(y, y);
            t.sum(sq)
        });
        assert_grads(Tensor::row_vector(&[0.1, -0.2, 0.3]), 1e-2, |t, b| {
            let x = t.constant(Tensor::from_rows(&[&[0.5, -1.0, 2.0]]));
            let g = t.constant(Tensor::row_vector(&[1.2, 0.8, -0.5]));
            let y = t.layer_norm(x, g, b);
            let sq = t.mul(y, y);
            t.sum(sq)
        });
    }
}
