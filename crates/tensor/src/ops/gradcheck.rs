//! Finite-difference gradient checking.
//!
//! Used pervasively by this crate's (and downstream crates') tests to verify
//! hand-written backward rules, and exported publicly so users adding custom
//! ops via [`crate::Tape::custom`] can verify theirs the same way.

use crate::{ParamStore, Tape, Tensor};

/// Compares the analytic gradient of `f` with a central finite difference.
///
/// `f` receives a fresh tape and a leaf holding the current parameter value
/// and must return a scalar loss node. Returns the maximum absolute
/// difference between analytic and numeric gradients, normalized by
/// `1 + |numeric|` so the tolerance is meaningful for both tiny and large
/// gradients.
pub fn max_grad_error(param_value: Tensor, f: impl Fn(&mut Tape, crate::Var) -> crate::Var) -> f32 {
    let mut store = ParamStore::new();
    let pid = store.register("gradcheck", param_value);

    // Analytic gradient.
    let mut tape = Tape::new();
    let leaf = tape.param(&store, pid);
    let loss = f(&mut tape, leaf);
    tape.backward(loss, &mut store);
    let analytic = store.grad(pid).clone();

    // Central differences.
    let h = 1e-3_f32;
    let mut worst = 0.0_f32;
    for i in 0..store.value(pid).len() {
        let orig = store.value(pid).data()[i];

        store.value_mut(pid).data_mut()[i] = orig + h;
        let mut tp = Tape::new();
        let leaf = tp.param(&store, pid);
        let loss_p = f(&mut tp, leaf);
        let plus = tp.value(loss_p).item() as f64;

        store.value_mut(pid).data_mut()[i] = orig - h;
        let mut tm = Tape::new();
        let leaf = tm.param(&store, pid);
        let loss_m = f(&mut tm, leaf);
        let minus = tm.value(loss_m).item() as f64;

        store.value_mut(pid).data_mut()[i] = orig;

        let numeric = ((plus - minus) / (2.0 * h as f64)) as f32;
        let err = (analytic.data()[i] - numeric).abs() / (1.0 + numeric.abs());
        worst = worst.max(err);
    }
    worst
}

/// Asserts the analytic gradient of `f` matches finite differences to `tol`.
pub fn assert_grads(
    param_value: Tensor,
    tol: f32,
    f: impl Fn(&mut Tape, crate::Var) -> crate::Var,
) {
    let err = max_grad_error(param_value, f);
    assert!(err < tol, "gradcheck failed: max normalized error {err} >= tolerance {tol}");
}
