//! Shape manipulation: concatenation, slicing and row selection.

use crate::{OpClass, Tape, Tensor, Var};

impl Tape {
    /// Horizontal concatenation: `[n,d1] ⧺ [n,d2] ⧺ … → [n, Σdᵢ]`.
    ///
    /// This is how hybrid input representations are assembled (paper §3.2.3):
    /// word ⧺ char ⧺ features ⧺ contextual-LM columns.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols needs at least one part");
        let n = self.value(parts[0]).rows();
        let widths: Vec<usize> = parts
            .iter()
            .map(|&p| {
                let v = self.value(p);
                assert_eq!(v.rows(), n, "concat_cols row-count mismatch");
                v.cols()
            })
            .collect();
        let total: usize = widths.iter().sum();
        let mut out = Tensor::zeros(n, total);
        for r in 0..n {
            let mut off = 0;
            for (&p, &w) in parts.iter().zip(&widths) {
                out.row_mut(r)[off..off + w].copy_from_slice(self.value(p).row(r));
                off += w;
            }
        }
        let widths_c = widths.clone();
        self.custom_in_class(OpClass::Shape, out, parts, move |g| {
            let mut grads: Vec<Tensor> = widths_c.iter().map(|&w| Tensor::zeros(n, w)).collect();
            for r in 0..n {
                let mut off = 0;
                for (gi, &w) in grads.iter_mut().zip(&widths_c) {
                    gi.row_mut(r).copy_from_slice(&g.row(r)[off..off + w]);
                    off += w;
                }
            }
            grads.into_iter().map(Some).collect()
        })
    }

    /// Vertical concatenation: `[n1,d] ⧺ [n2,d] ⧺ … → [Σnᵢ, d]`.
    ///
    /// Used to stack per-timestep hidden states into a sequence matrix.
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_rows needs at least one part");
        let d = self.value(parts[0]).cols();
        let heights: Vec<usize> = parts
            .iter()
            .map(|&p| {
                let v = self.value(p);
                assert_eq!(v.cols(), d, "concat_rows column-count mismatch");
                v.rows()
            })
            .collect();
        let total: usize = heights.iter().sum();
        let mut out = Tensor::zeros(total, d);
        let mut off = 0;
        for &p in parts {
            let v = self.value(p);
            for r in 0..v.rows() {
                out.row_mut(off + r).copy_from_slice(v.row(r));
            }
            off += v.rows();
        }
        let heights_c = heights.clone();
        self.custom_in_class(OpClass::Shape, out, parts, move |g| {
            let mut grads = Vec::with_capacity(heights_c.len());
            let mut off = 0;
            for &h in &heights_c {
                let mut gi = Tensor::zeros(h, d);
                for r in 0..h {
                    gi.row_mut(r).copy_from_slice(g.row(off + r));
                }
                off += h;
                grads.push(Some(gi));
            }
            grads
        })
    }

    /// Rows `[start, start+len)` of `a` as a new `[len, d]` tensor.
    pub fn slice_rows(&mut self, a: Var, start: usize, len: usize) -> Var {
        let v = self.value(a);
        let (n, d) = v.shape();
        assert!(start + len <= n, "slice_rows out of bounds");
        let mut out = Tensor::zeros(len, d);
        for r in 0..len {
            out.row_mut(r).copy_from_slice(v.row(start + r));
        }
        self.custom_in_class(OpClass::Shape, out, &[a], move |g| {
            let mut ga = Tensor::zeros(n, d);
            for r in 0..len {
                ga.row_mut(start + r).copy_from_slice(g.row(r));
            }
            vec![Some(ga)]
        })
    }

    /// Row `i` of `a` as a `[1, d]` tensor.
    pub fn row(&mut self, a: Var, i: usize) -> Var {
        self.slice_rows(a, i, 1)
    }

    /// Columns `[start, start+len)` of `a` as a new `[n, len]` tensor —
    /// used to split fused gate pre-activations (LSTM/GRU) and attention
    /// heads.
    pub fn slice_cols(&mut self, a: Var, start: usize, len: usize) -> Var {
        let v = self.value(a);
        let (n, d) = v.shape();
        assert!(start + len <= d, "slice_cols out of bounds");
        let mut out = Tensor::zeros(n, len);
        for r in 0..n {
            out.row_mut(r).copy_from_slice(&v.row(r)[start..start + len]);
        }
        self.custom_in_class(OpClass::Shape, out, &[a], move |g| {
            let mut ga = Tensor::zeros(n, d);
            for r in 0..n {
                ga.row_mut(r)[start..start + len].copy_from_slice(g.row(r));
            }
            vec![Some(ga)]
        })
    }

    /// Reverses the row order of `a` — used to run "backward" RNN passes
    /// with the same cell code as forward passes.
    pub fn reverse_rows(&mut self, a: Var) -> Var {
        let v = self.value(a);
        let (n, d) = v.shape();
        let mut out = Tensor::zeros(n, d);
        for r in 0..n {
            out.row_mut(r).copy_from_slice(v.row(n - 1 - r));
        }
        self.custom_in_class(OpClass::Shape, out, &[a], move |g| {
            let mut ga = Tensor::zeros(n, d);
            for r in 0..n {
                ga.row_mut(r).copy_from_slice(g.row(n - 1 - r));
            }
            vec![Some(ga)]
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::ops::gradcheck::assert_grads;
    use crate::{Tape, Tensor};

    fn probe() -> Tensor {
        Tensor::from_rows(&[&[0.3, -0.7], &[1.5, 0.1], &[-0.2, 2.0]])
    }

    #[test]
    fn concat_cols_forward_and_grads() {
        let mut t = Tape::new();
        let a = t.constant(Tensor::from_rows(&[&[1.0], &[2.0]]));
        let b = t.constant(Tensor::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]));
        let c = t.concat_cols(&[a, b]);
        assert_eq!(t.value(c).row(0), &[1.0, 3.0, 4.0]);
        assert_eq!(t.value(c).row(1), &[2.0, 5.0, 6.0]);

        assert_grads(probe(), 1e-2, |t, x| {
            let c = t.concat_cols(&[x, x]);
            let sq = t.mul(c, c);
            t.sum(sq)
        });
    }

    #[test]
    fn concat_rows_forward_and_grads() {
        let mut t = Tape::new();
        let a = t.constant(Tensor::from_rows(&[&[1.0, 2.0]]));
        let b = t.constant(Tensor::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]));
        let c = t.concat_rows(&[a, b]);
        assert_eq!(t.value(c).shape(), (3, 2));
        assert_eq!(t.value(c).row(2), &[5.0, 6.0]);

        assert_grads(probe(), 1e-2, |t, x| {
            let c = t.concat_rows(&[x, x]);
            let sq = t.mul(c, c);
            t.sum(sq)
        });
    }

    #[test]
    fn slice_and_row_grads() {
        assert_grads(probe(), 1e-2, |t, x| {
            let s = t.slice_rows(x, 1, 2);
            let sq = t.mul(s, s);
            t.sum(sq)
        });
        let mut t = Tape::new();
        let x = t.constant(probe());
        let r = t.row(x, 2);
        assert_eq!(t.value(r).data(), &[-0.2, 2.0]);
    }

    #[test]
    fn reverse_rows_is_involutive_and_differentiable() {
        let mut t = Tape::new();
        let x = t.constant(probe());
        let r = t.reverse_rows(x);
        let rr = t.reverse_rows(r);
        assert_eq!(t.value(rr).data(), probe().data());

        assert_grads(probe(), 1e-2, |t, x| {
            let r = t.reverse_rows(x);
            let w = t.constant(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]));
            let p = t.mul(r, w);
            t.sum(p)
        });
    }

    #[test]
    fn slice_cols_forward_and_grads() {
        let mut t = Tape::new();
        let x = t.constant(probe());
        let c = t.slice_cols(x, 1, 1);
        assert_eq!(t.value(c).shape(), (3, 1));
        assert_eq!(t.value(c).data(), &[-0.7, 0.1, 2.0]);

        assert_grads(probe(), 1e-2, |t, x| {
            let c = t.slice_cols(x, 0, 2);
            let sq = t.mul(c, c);
            t.sum(sq)
        });
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_rows_bounds_checked() {
        let mut t = Tape::new();
        let x = t.constant(probe());
        let _ = t.slice_rows(x, 2, 2);
    }
}
