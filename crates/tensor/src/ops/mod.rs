//! The differentiable operation set, implemented as methods on [`crate::Tape`].
//!
//! Each module contributes one family of operations:
//! elementwise arithmetic & nonlinearities, matrix products, reductions and
//! poolings, softmax-family ops, classification losses, shape manipulation
//! (concat/slice), 1-D dilated convolution, layer normalization and dropout.

mod conv;
mod dropout;
mod elementwise;
mod loss;
mod matmul;
mod norm;
mod reduce;
mod shape_ops;
mod softmax;

pub mod gradcheck;
