//! Reductions and over-time poolings.

use crate::{OpClass, Tape, Tensor, Var};

impl Tape {
    /// Sum of all elements → scalar `[1,1]`.
    pub fn sum(&mut self, a: Var) -> Var {
        let v = self.value(a);
        let (r, c) = v.shape();
        let out = Tensor::scalar(v.sum());
        self.custom_in_class(OpClass::Reduce, out, &[a], move |g| {
            vec![Some(Tensor::full(r, c, g.item()))]
        })
    }

    /// Mean of all elements → scalar `[1,1]`.
    pub fn mean(&mut self, a: Var) -> Var {
        let v = self.value(a);
        let (r, c) = v.shape();
        let n = (r * c) as f32;
        let out = Tensor::scalar(v.sum() / n);
        self.custom_in_class(OpClass::Reduce, out, &[a], move |g| {
            vec![Some(Tensor::full(r, c, g.item() / n))]
        })
    }

    /// Column-wise maximum over rows: `[n,d] → [1,d]`.
    ///
    /// This is "max over time" pooling — the global-feature extraction of
    /// Collobert's sentence-approach network (paper Fig. 5) and of the
    /// char-CNN word representation (paper Fig. 3a). Gradients route to the
    /// arg-max row of each column (first row on ties).
    pub fn max_over_rows(&mut self, a: Var) -> Var {
        let v = self.value(a);
        let (n, d) = v.shape();
        assert!(n > 0, "max_over_rows on empty tensor");
        let mut out = Tensor::zeros(1, d);
        let mut argmax = vec![0usize; d];
        for c in 0..d {
            let mut best = v.at2(0, c);
            for r in 1..n {
                let x = v.at2(r, c);
                if x > best {
                    best = x;
                    argmax[c] = r;
                }
            }
            out.set2(0, c, best);
        }
        self.custom_in_class(OpClass::Reduce, out, &[a], move |g| {
            let mut ga = Tensor::zeros(n, d);
            for (c, &r) in argmax.iter().enumerate() {
                ga.set2(r, c, g.at2(0, c));
            }
            vec![Some(ga)]
        })
    }

    /// Column-wise mean over rows: `[n,d] → [1,d]` (average pooling).
    pub fn mean_over_rows(&mut self, a: Var) -> Var {
        let v = self.value(a);
        let (n, d) = v.shape();
        assert!(n > 0, "mean_over_rows on empty tensor");
        let mut out = Tensor::zeros(1, d);
        for r in 0..n {
            let src = v.row(r);
            for (o, &x) in out.data_mut().iter_mut().zip(src) {
                *o += x;
            }
        }
        out.scale_in_place(1.0 / n as f32);
        self.custom_in_class(OpClass::Reduce, out, &[a], move |g| {
            let mut ga = Tensor::zeros(n, d);
            let inv = 1.0 / n as f32;
            for r in 0..n {
                let dst = ga.row_mut(r);
                for (o, &x) in dst.iter_mut().zip(g.data()) {
                    *o = x * inv;
                }
            }
            vec![Some(ga)]
        })
    }

    /// Row-wise sum: `[n,d] → [n,1]`.
    pub fn sum_cols(&mut self, a: Var) -> Var {
        let v = self.value(a);
        let (n, d) = v.shape();
        let mut out = Tensor::zeros(n, 1);
        for r in 0..n {
            out.set2(r, 0, v.row(r).iter().sum());
        }
        self.custom_in_class(OpClass::Reduce, out, &[a], move |g| {
            let mut ga = Tensor::zeros(n, d);
            for r in 0..n {
                let gv = g.at2(r, 0);
                ga.row_mut(r).iter_mut().for_each(|x| *x = gv);
            }
            vec![Some(ga)]
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::ops::gradcheck::assert_grads;
    use crate::{Tape, Tensor};

    fn probe() -> Tensor {
        Tensor::from_rows(&[&[0.3, -0.7, 1.2], &[1.5, 0.1, 0.4], &[-0.2, 2.0, 0.9]])
    }

    #[test]
    fn sum_and_mean_grads() {
        assert_grads(probe(), 1e-2, |t, x| {
            let sq = t.mul(x, x);
            t.mean(sq)
        });
        assert_grads(probe(), 1e-2, |t, x| {
            let sq = t.mul(x, x);
            t.sum(sq)
        });
    }

    #[test]
    fn max_over_rows_forward_and_grads() {
        let mut t = Tape::new();
        let x = t.constant(probe());
        let m = t.max_over_rows(x);
        assert_eq!(t.value(m).data(), &[1.5, 2.0, 1.2]);

        assert_grads(probe(), 1e-2, |t, x| {
            let m = t.max_over_rows(x);
            let sq = t.mul(m, m);
            t.sum(sq)
        });
    }

    #[test]
    fn mean_over_rows_grads() {
        assert_grads(probe(), 1e-2, |t, x| {
            let m = t.mean_over_rows(x);
            let sq = t.mul(m, m);
            t.sum(sq)
        });
    }

    #[test]
    fn sum_cols_grads_and_shape() {
        let mut t = Tape::new();
        let x = t.constant(probe());
        let s = t.sum_cols(x);
        assert_eq!(t.value(s).shape(), (3, 1));
        assert!((t.value(s).at2(0, 0) - 0.8).abs() < 1e-6);

        assert_grads(probe(), 1e-2, |t, x| {
            let s = t.sum_cols(x);
            let sq = t.mul(s, s);
            t.sum(sq)
        });
    }
}
