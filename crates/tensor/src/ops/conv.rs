//! 1-D convolution over a sequence, with dilation.
//!
//! This single kernel powers three of the survey's architectures: the
//! char-CNN word representation (Fig. 3a), Collobert's sentence-approach CNN
//! encoder (Fig. 5) and the Iterated Dilated CNN (Fig. 6) — the latter simply
//! passes `dilation > 1`.

use crate::{OpClass, Tape, Tensor, Var};

impl Tape {
    /// Same-padded 1-D convolution along the row (time) axis.
    ///
    /// * `x` — input sequence `[n, d_in]` (one row per position).
    /// * `w` — filter bank `[k · d_in, d_out]`: tap `j`'s weights occupy rows
    ///   `j·d_in .. (j+1)·d_in`.
    /// * `bias` — `[1, d_out]`.
    /// * `k` — filter width (must be odd so "same" padding is symmetric).
    /// * `dilation` — spacing between taps (1 = ordinary convolution).
    ///
    /// Positions reaching outside the sequence contribute zeros (zero
    /// padding), so the output is `[n, d_out]`.
    pub fn conv1d(&mut self, x: Var, w: Var, bias: Var, k: usize, dilation: usize) -> Var {
        assert!(k % 2 == 1, "conv1d requires an odd filter width");
        assert!(dilation >= 1, "dilation must be >= 1");
        let (vx, vw, vb) = (self.value(x), self.value(w), self.value(bias));
        let (n, d_in) = vx.shape();
        let d_out = vw.cols();
        assert_eq!(vw.rows(), k * d_in, "filter bank shape must be [k*d_in, d_out]");
        assert_eq!(vb.shape(), (1, d_out), "bias shape must be [1, d_out]");

        let half = (k / 2) as isize;
        let mut out = Tensor::zeros(n, d_out);
        for t in 0..n as isize {
            let out_row = out.row_mut(t as usize);
            out_row.copy_from_slice(vb.row(0));
            for j in 0..k as isize {
                let src = t + (j - half) * dilation as isize;
                if src < 0 || src >= n as isize {
                    continue;
                }
                let x_row = vx.row(src as usize);
                for (i, &xv) in x_row.iter().enumerate() {
                    if xv == 0.0 {
                        continue;
                    }
                    let w_row = vw.row(j as usize * d_in + i);
                    for (o, &wv) in out_row.iter_mut().zip(w_row) {
                        *o += xv * wv;
                    }
                }
            }
        }

        let (cx, cw) = (vx.clone(), vw.clone());
        self.custom_in_class(OpClass::Conv, out, &[x, w, bias], move |g| {
            let mut gx = Tensor::zeros(n, d_in);
            let mut gw = Tensor::zeros(k * d_in, d_out);
            let mut gb = Tensor::zeros(1, d_out);
            for t in 0..n as isize {
                let g_row = g.row(t as usize);
                for (o, &gv) in gb.row_mut(0).iter_mut().zip(g_row) {
                    *o += gv;
                }
                for j in 0..k as isize {
                    let src = t + (j - half) * dilation as isize;
                    if src < 0 || src >= n as isize {
                        continue;
                    }
                    let x_row = cx.row(src as usize);
                    let gx_row_base = src as usize;
                    for i in 0..d_in {
                        let w_row = cw.row(j as usize * d_in + i);
                        let gw_row = gw.row_mut(j as usize * d_in + i);
                        let xv = x_row[i];
                        let mut gx_acc = 0.0;
                        for ((&gv, &wv), gw_v) in g_row.iter().zip(w_row).zip(gw_row.iter_mut()) {
                            gx_acc += gv * wv;
                            *gw_v += gv * xv;
                        }
                        gx.row_mut(gx_row_base)[i] += gx_acc;
                    }
                }
            }
            vec![Some(gx), Some(gw), Some(gb)]
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::ops::gradcheck::assert_grads;
    use crate::{Tape, Tensor};

    #[test]
    fn identity_filter_reproduces_input() {
        // k=1, d_in=d_out=2, identity weights, zero bias.
        let mut t = Tape::new();
        let x = t.constant(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let w = t.constant(Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]));
        let b = t.constant(Tensor::zeros(1, 2));
        let y = t.conv1d(x, w, b, 1, 1);
        assert_eq!(t.value(y).data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn width3_moving_sum() {
        // d_in=d_out=1, all-ones width-3 filter → padded moving sum.
        let mut t = Tape::new();
        let x = t.constant(Tensor::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]));
        let w = t.constant(Tensor::from_rows(&[&[1.0], &[1.0], &[1.0]]));
        let b = t.constant(Tensor::zeros(1, 1));
        let y = t.conv1d(x, w, b, 3, 1);
        let vals: Vec<f32> = t.value(y).data().to_vec();
        assert_eq!(vals, vec![3.0, 6.0, 9.0, 7.0]);
    }

    #[test]
    fn dilation_widens_receptive_field() {
        // dilation=2 with width 3 reaches positions t−2, t, t+2.
        let mut t = Tape::new();
        let x = t.constant(Tensor::from_rows(&[&[1.0], &[10.0], &[100.0], &[1000.0], &[10000.0]]));
        let w = t.constant(Tensor::from_rows(&[&[1.0], &[1.0], &[1.0]]));
        let b = t.constant(Tensor::zeros(1, 1));
        let y = t.conv1d(x, w, b, 3, 2);
        assert_eq!(t.value(y).at2(2, 0), 1.0 + 100.0 + 10000.0);
    }

    #[test]
    fn conv_grads_wrt_input_weights_and_bias() {
        let x0 = Tensor::from_rows(&[&[0.5, -1.0], &[1.0, 0.3], &[-0.7, 0.9], &[0.2, -0.4]]);
        assert_grads(x0.clone(), 1e-2, |t, x| {
            let w = t.constant(Tensor::from_rows(&[
                &[0.1, -0.2, 0.3],
                &[0.4, 0.5, -0.6],
                &[-0.7, 0.8, 0.9],
                &[0.2, -0.3, 0.1],
                &[0.6, 0.4, -0.5],
                &[-0.1, 0.2, 0.7],
            ]));
            let b = t.constant(Tensor::row_vector(&[0.1, -0.1, 0.2]));
            let y = t.conv1d(x, w, b, 3, 1);
            let sq = t.mul(y, y);
            t.sum(sq)
        });
        // with respect to the weights (and dilation 2)
        assert_grads(
            Tensor::from_rows(&[
                &[0.1, -0.2],
                &[0.4, 0.5],
                &[-0.7, 0.8],
                &[0.2, -0.3],
                &[0.6, 0.4],
                &[-0.1, 0.2],
            ]),
            1e-2,
            move |t, w| {
                let x = t.constant(Tensor::from_rows(&[
                    &[0.5, -1.0],
                    &[1.0, 0.3],
                    &[-0.7, 0.9],
                    &[0.2, -0.4],
                    &[0.8, 0.1],
                ]));
                let b = t.constant(Tensor::row_vector(&[0.1, -0.1]));
                let y = t.conv1d(x, w, b, 3, 2);
                let sq = t.mul(y, y);
                t.sum(sq)
            },
        );
        // with respect to the bias
        assert_grads(Tensor::row_vector(&[0.3, -0.2]), 1e-2, |t, b| {
            let x = t.constant(Tensor::from_rows(&[&[0.5], &[1.0], &[-0.7]]));
            let w = t.constant(Tensor::from_rows(&[&[0.1, -0.2], &[0.4, 0.5], &[-0.7, 0.8]]));
            let y = t.conv1d(x, w, b, 3, 1);
            let sq = t.mul(y, y);
            t.sum(sq)
        });
    }

    #[test]
    #[should_panic(expected = "odd filter width")]
    fn even_width_rejected() {
        let mut t = Tape::new();
        let x = t.constant(Tensor::zeros(3, 1));
        let w = t.constant(Tensor::zeros(2, 1));
        let b = t.constant(Tensor::zeros(1, 1));
        let _ = t.conv1d(x, w, b, 2, 1);
    }
}
