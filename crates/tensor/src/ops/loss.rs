//! Classification losses.

use crate::ops::softmax::softmax_rows_tensor;
use crate::{OpClass, Tape, Tensor, Var};

impl Tape {
    /// Summed cross-entropy of row-wise `logits [n,k]` against integer
    /// `targets` (one class index per row).
    ///
    /// Fuses log-softmax + NLL for numerical stability; the backward rule is
    /// the classic `softmax − one-hot`.
    pub fn cross_entropy_sum(&mut self, logits: Var, targets: &[usize]) -> Var {
        let v = self.value(logits);
        let (n, k) = v.shape();
        assert_eq!(targets.len(), n, "one target per logits row required");
        assert!(targets.iter().all(|&t| t < k), "target class out of range");

        let probs = softmax_rows_tensor(v);
        let mut loss = 0.0_f64;
        for (r, &t) in targets.iter().enumerate() {
            // log p = logit_t − logsumexp(row); recompute stably from probs.
            loss -= (probs.at2(r, t).max(1e-30) as f64).ln();
        }
        let targets = targets.to_vec();
        self.custom_in_class(OpClass::Loss, Tensor::scalar(loss as f32), &[logits], move |g| {
            let scale = g.item();
            let mut ga = probs.clone();
            for (r, &t) in targets.iter().enumerate() {
                let row = ga.row_mut(r);
                row[t] -= 1.0;
                row.iter_mut().for_each(|x| *x *= scale);
            }
            vec![Some(ga)]
        })
    }

    /// Mean cross-entropy (see [`Tape::cross_entropy_sum`]).
    pub fn cross_entropy_mean(&mut self, logits: Var, targets: &[usize]) -> Var {
        let n = targets.len().max(1) as f32;
        let s = self.cross_entropy_sum(logits, targets);
        self.scale(s, 1.0 / n)
    }

    /// Summed binary cross-entropy of `probs` (already in `(0,1)`, e.g. from
    /// a sigmoid) against `{0,1}` float labels of the same shape.
    pub fn binary_cross_entropy_sum(&mut self, probs: Var, labels: &Tensor) -> Var {
        let p = self.value(probs);
        assert_eq!(p.shape(), labels.shape(), "bce shape mismatch");
        let eps = 1e-7_f32;
        let mut loss = 0.0_f64;
        for (&pi, &yi) in p.data().iter().zip(labels.data()) {
            let pc = pi.clamp(eps, 1.0 - eps);
            loss -= (yi as f64) * (pc as f64).ln() + (1.0 - yi as f64) * (1.0 - pc as f64).ln();
        }
        let (pc, yc) = (p.clone(), labels.clone());
        self.custom_in_class(OpClass::Loss, Tensor::scalar(loss as f32), &[probs], move |g| {
            let scale = g.item();
            let mut ga = Tensor::zeros(pc.rows(), pc.cols());
            for ((o, &pi), &yi) in ga.data_mut().iter_mut().zip(pc.data()).zip(yc.data()) {
                let pcl = pi.clamp(eps, 1.0 - eps);
                *o = scale * (pcl - yi) / (pcl * (1.0 - pcl));
            }
            vec![Some(ga)]
        })
    }

    /// Summed squared error between `a` and a constant target.
    pub fn mse_sum(&mut self, a: Var, target: &Tensor) -> Var {
        let t = self.constant(target.clone());
        let d = self.sub(a, t);
        let sq = self.mul(d, d);
        self.sum(sq)
    }
}

#[cfg(test)]
mod tests {
    use crate::ops::gradcheck::assert_grads;
    use crate::{Tape, Tensor};

    #[test]
    fn cross_entropy_value_matches_manual() {
        let mut t = Tape::new();
        let logits = t.constant(Tensor::from_rows(&[&[2.0, 0.0], &[0.0, 0.0]]));
        let l = t.cross_entropy_sum(logits, &[0, 1]);
        let expect = -(2.0_f32.exp() / (2.0_f32.exp() + 1.0)).ln() - 0.5_f32.ln();
        assert!((t.value(l).item() - expect).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_grads() {
        assert_grads(Tensor::from_rows(&[&[0.5, -1.0, 0.2], &[1.5, 0.0, -0.3]]), 1e-2, |t, x| {
            t.cross_entropy_sum(x, &[2, 0])
        });
        assert_grads(Tensor::from_rows(&[&[0.5, -1.0, 0.2]]), 1e-2, |t, x| {
            t.cross_entropy_mean(x, &[1])
        });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cross_entropy_rejects_bad_target() {
        let mut t = Tape::new();
        let logits = t.constant(Tensor::zeros(1, 2));
        let _ = t.cross_entropy_sum(logits, &[2]);
    }

    #[test]
    fn bce_grads() {
        let labels = Tensor::from_rows(&[&[1.0, 0.0]]);
        assert_grads(Tensor::row_vector(&[0.3, -0.4]), 1e-2, move |t, x| {
            let p = t.sigmoid(x);
            t.binary_cross_entropy_sum(p, &labels)
        });
    }

    #[test]
    fn mse_reaches_zero_at_target() {
        let mut t = Tape::new();
        let x = t.constant(Tensor::row_vector(&[1.0, 2.0]));
        let l = t.mse_sum(x, &Tensor::row_vector(&[1.0, 2.0]));
        assert_eq!(t.value(l).item(), 0.0);
    }
}
