//! Inverted dropout.

use crate::{OpClass, Tape, Var};
use rand::Rng;

impl Tape {
    /// Inverted dropout: zeroes each element with probability `p` and scales
    /// survivors by `1/(1−p)` so the expected activation is unchanged.
    /// With `p == 0` this is the identity (use that for evaluation mode, or
    /// simply skip the call).
    pub fn dropout(&mut self, a: Var, p: f32, rng: &mut impl Rng) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0,1)");
        if p == 0.0 {
            return a;
        }
        let v = self.value(a);
        let keep = 1.0 - p;
        let scale = 1.0 / keep;
        let mask: Vec<f32> =
            (0..v.len()).map(|_| if rng.gen::<f32>() < keep { scale } else { 0.0 }).collect();
        let mut out = v.clone();
        for (o, &m) in out.data_mut().iter_mut().zip(&mask) {
            *o *= m;
        }
        let (r, c) = v.shape();
        self.custom_in_class(OpClass::Dropout, out, &[a], move |g| {
            let mut ga = g.clone();
            for (o, &m) in ga.data_mut().iter_mut().zip(&mask) {
                *o *= m;
            }
            debug_assert_eq!(ga.shape(), (r, c));
            vec![Some(ga)]
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::{Tape, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_probability_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut t = Tape::new();
        let x = t.constant(Tensor::row_vector(&[1.0, 2.0, 3.0]));
        let y = t.dropout(x, 0.0, &mut rng);
        assert_eq!(x, y);
    }

    #[test]
    fn preserves_expectation_approximately() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut t = Tape::new();
        let x = t.constant(Tensor::full(1, 10_000, 1.0));
        let y = t.dropout(x, 0.5, &mut rng);
        let mean = t.value(y).sum() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean after dropout was {mean}");
    }

    #[test]
    fn gradient_uses_same_mask() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = crate::ParamStore::new();
        let p = store.register("w", Tensor::full(1, 8, 2.0));
        let mut t = Tape::new();
        let w = t.param(&store, p);
        let y = t.dropout(w, 0.5, &mut rng);
        let s = t.sum(y);
        let forward: Vec<f32> = t.value(y).data().to_vec();
        t.backward(s, &mut store);
        // grad is scale where kept, 0 where dropped — i.e. forward/2.0
        for (g, f) in store.grad(p).data().iter().zip(&forward) {
            assert!((g - f / 2.0).abs() < 1e-6);
        }
    }
}
