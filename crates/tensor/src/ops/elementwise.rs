//! Elementwise arithmetic, broadcasting bias addition and nonlinearities.

use crate::{OpClass, Tape, Tensor, Var};

impl Tape {
    /// Elementwise `a + b` (same shape).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(va.shape(), vb.shape(), "add shape mismatch");
        let mut out = va.clone();
        out.add_scaled(vb, 1.0);
        self.custom_in_class(OpClass::Elementwise, out, &[a, b], |g| {
            vec![Some(g.clone()), Some(g.clone())]
        })
    }

    /// Elementwise `a - b` (same shape).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(va.shape(), vb.shape(), "sub shape mismatch");
        let mut out = va.clone();
        out.add_scaled(vb, -1.0);
        self.custom_in_class(OpClass::Elementwise, out, &[a, b], |g| {
            vec![Some(g.clone()), Some(g.map(|x| -x))]
        })
    }

    /// Elementwise `a * b` (Hadamard product, same shape).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(va.shape(), vb.shape(), "mul shape mismatch");
        let mut out = va.clone();
        for (o, &x) in out.data_mut().iter_mut().zip(vb.data()) {
            *o *= x;
        }
        let (ca, cb) = (va.clone(), vb.clone());
        self.custom_in_class(OpClass::Elementwise, out, &[a, b], move |g| {
            let mut ga = g.clone();
            for (o, &x) in ga.data_mut().iter_mut().zip(cb.data()) {
                *o *= x;
            }
            let mut gb = g.clone();
            for (o, &x) in gb.data_mut().iter_mut().zip(ca.data()) {
                *o *= x;
            }
            vec![Some(ga), Some(gb)]
        })
    }

    /// `a * s` for a compile-time-known scalar `s`.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let out = self.value(a).map(|x| x * s);
        self.custom_in_class(OpClass::Elementwise, out, &[a], move |g| vec![Some(g.map(|x| x * s))])
    }

    /// `a + s` elementwise for a scalar constant `s`.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let out = self.value(a).map(|x| x + s);
        self.custom_in_class(OpClass::Elementwise, out, &[a], |g| vec![Some(g.clone())])
    }

    /// Broadcast add: matrix `m` of shape `[n, d]` plus row vector `bias`
    /// of shape `[1, d]`, added to every row.
    pub fn add_bias(&mut self, m: Var, bias: Var) -> Var {
        let (vm, vb) = (self.value(m), self.value(bias));
        assert_eq!(vb.rows(), 1, "bias must be a row vector");
        assert_eq!(vm.cols(), vb.cols(), "bias width mismatch");
        let mut out = vm.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (o, &b) in row.iter_mut().zip(vb.data()) {
                *o += b;
            }
        }
        self.custom_in_class(OpClass::Elementwise, out, &[m, bias], |g| {
            let mut gb = Tensor::zeros(1, g.cols());
            for r in 0..g.rows() {
                let src = g.row(r);
                for (o, &x) in gb.data_mut().iter_mut().zip(src) {
                    *o += x;
                }
            }
            vec![Some(g.clone()), Some(gb)]
        })
    }

    /// Hyperbolic tangent, elementwise.
    pub fn tanh(&mut self, a: Var) -> Var {
        let out = self.value(a).map(f32::tanh);
        let y = out.clone();
        self.custom_in_class(OpClass::Elementwise, out, &[a], move |g| {
            let mut ga = g.clone();
            for (o, &v) in ga.data_mut().iter_mut().zip(y.data()) {
                *o *= 1.0 - v * v;
            }
            vec![Some(ga)]
        })
    }

    /// Logistic sigmoid, elementwise.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let out = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        let y = out.clone();
        self.custom_in_class(OpClass::Elementwise, out, &[a], move |g| {
            let mut ga = g.clone();
            for (o, &v) in ga.data_mut().iter_mut().zip(y.data()) {
                *o *= v * (1.0 - v);
            }
            vec![Some(ga)]
        })
    }

    /// Rectified linear unit, elementwise.
    pub fn relu(&mut self, a: Var) -> Var {
        let x = self.value(a).clone();
        let out = x.map(|v| v.max(0.0));
        self.custom_in_class(OpClass::Elementwise, out, &[a], move |g| {
            let mut ga = g.clone();
            for (o, &v) in ga.data_mut().iter_mut().zip(x.data()) {
                if v <= 0.0 {
                    *o = 0.0;
                }
            }
            vec![Some(ga)]
        })
    }

    /// Natural exponential, elementwise.
    pub fn exp(&mut self, a: Var) -> Var {
        let out = self.value(a).map(f32::exp);
        let y = out.clone();
        self.custom_in_class(OpClass::Elementwise, out, &[a], move |g| {
            let mut ga = g.clone();
            for (o, &v) in ga.data_mut().iter_mut().zip(y.data()) {
                *o *= v;
            }
            vec![Some(ga)]
        })
    }

    /// Affine layer convenience: `x·w + bias` with `x [n,k]`, `w [k,d]`,
    /// `bias [1,d]`.
    pub fn affine(&mut self, x: Var, w: Var, bias: Var) -> Var {
        let xw = self.matmul(x, w);
        self.add_bias(xw, bias)
    }
}

#[cfg(test)]
mod tests {
    use crate::ops::gradcheck::assert_grads;
    use crate::{Tape, Tensor};

    fn probe() -> Tensor {
        Tensor::from_rows(&[&[0.3, -0.7, 1.2], &[-1.5, 0.0, 0.4]])
    }

    #[test]
    fn add_sub_grads() {
        assert_grads(probe(), 1e-2, |t, x| {
            let c = t.constant(Tensor::full(2, 3, 0.5));
            let a = t.add(x, c);
            let b = t.sub(a, x); // == c, but exercises both paths
            let s = t.add(a, b);
            t.sum(s)
        });
    }

    #[test]
    fn mul_grads() {
        assert_grads(probe(), 1e-2, |t, x| {
            let y = t.mul(x, x);
            t.sum(y)
        });
    }

    #[test]
    fn scale_and_add_scalar_grads() {
        assert_grads(probe(), 1e-2, |t, x| {
            let y = t.scale(x, -2.5);
            let z = t.add_scalar(y, 3.0);
            let q = t.mul(z, z);
            t.sum(q)
        });
    }

    #[test]
    fn bias_broadcast_grads() {
        assert_grads(Tensor::row_vector(&[0.1, -0.2, 0.3]), 1e-2, |t, b| {
            let m = t.constant(Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]));
            let y = t.add_bias(m, b);
            let sq = t.mul(y, y);
            t.sum(sq)
        });
    }

    #[test]
    fn nonlinearity_grads() {
        assert_grads(probe(), 1e-2, |t, x| {
            let a = t.tanh(x);
            let b = t.sigmoid(a);
            let c = t.relu(b);
            let d = t.exp(c);
            t.sum(d)
        });
    }

    #[test]
    fn forward_values() {
        let mut t = Tape::new();
        let x = t.constant(Tensor::row_vector(&[0.0, 1.0]));
        let s = t.sigmoid(x);
        assert!((t.value(s).data()[0] - 0.5).abs() < 1e-6);
        let neg = t.constant(Tensor::row_vector(&[-1.0, 2.0]));
        let r = t.relu(neg);
        assert_eq!(t.value(r).data(), &[0.0, 2.0]);
    }
}
