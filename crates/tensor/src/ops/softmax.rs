//! Softmax family: softmax, log-softmax and log-sum-exp, all row-wise and
//! numerically stabilized by max subtraction.

use crate::{OpClass, Tape, Tensor, Var};

pub(crate) fn softmax_rows_tensor(x: &Tensor) -> Tensor {
    // One implementation shared with the tape-free inference path: the
    // fused in-place kernel IS the tape kernel, so the two cannot diverge.
    let mut out = x.clone();
    crate::fused::softmax_rows_in_place(&mut out);
    out
}

impl Tape {
    /// Row-wise softmax: each row of `[n,d]` becomes a probability vector.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let out = softmax_rows_tensor(self.value(a));
        let y = out.clone();
        self.custom_in_class(OpClass::Softmax, out, &[a], move |g| {
            // dL/dx = y ⊙ (g − ⟨g, y⟩ per row)
            let mut ga = g.clone();
            for r in 0..ga.rows() {
                let yr = y.row(r);
                let dot: f32 = ga.row(r).iter().zip(yr).map(|(a, b)| a * b).sum();
                for (o, &yv) in ga.row_mut(r).iter_mut().zip(yr) {
                    *o = yv * (*o - dot);
                }
            }
            vec![Some(ga)]
        })
    }

    /// Row-wise log-softmax (the numerically preferred input to NLL losses).
    pub fn log_softmax_rows(&mut self, a: Var) -> Var {
        let v = self.value(a);
        let mut out = v.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let lse = max + row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln();
            row.iter_mut().for_each(|x| *x -= lse);
        }
        let probs = out.map(f32::exp);
        self.custom_in_class(OpClass::Softmax, out, &[a], move |g| {
            // dL/dx = g − softmax(x) · rowsum(g)
            let mut ga = g.clone();
            for r in 0..ga.rows() {
                let gs: f32 = g.row(r).iter().sum();
                for (o, &p) in ga.row_mut(r).iter_mut().zip(probs.row(r)) {
                    *o -= p * gs;
                }
            }
            vec![Some(ga)]
        })
    }

    /// Row-wise log-sum-exp: `[n,d] → [n,1]`.
    pub fn logsumexp_rows(&mut self, a: Var) -> Var {
        let v = self.value(a);
        let (n, d) = v.shape();
        let mut out = Tensor::zeros(n, 1);
        for r in 0..n {
            let row = v.row(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            out.set2(r, 0, max + row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln());
        }
        let probs = softmax_rows_tensor(v);
        self.custom_in_class(OpClass::Softmax, out, &[a], move |g| {
            let mut ga = Tensor::zeros(n, d);
            for r in 0..n {
                let gv = g.at2(r, 0);
                for (o, &p) in ga.row_mut(r).iter_mut().zip(probs.row(r)) {
                    *o = gv * p;
                }
            }
            vec![Some(ga)]
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::ops::gradcheck::assert_grads;
    use crate::{Tape, Tensor};

    fn probe() -> Tensor {
        Tensor::from_rows(&[&[0.3, -0.7, 1.2], &[5.0, 0.1, 0.4]])
    }

    #[test]
    fn softmax_rows_normalize() {
        let mut t = Tape::new();
        let x = t.constant(probe());
        let s = t.softmax_rows(x);
        for r in 0..2 {
            let sum: f32 = t.value(s).row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_grads() {
        assert_grads(probe(), 1e-2, |t, x| {
            let s = t.softmax_rows(x);
            let w = t.constant(Tensor::from_rows(&[&[1.0, 2.0, -1.0], &[0.5, 1.5, 0.2]]));
            let p = t.mul(s, w);
            t.sum(p)
        });
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let mut t = Tape::new();
        let x = t.constant(probe());
        let ls = t.log_softmax_rows(x);
        let s = t.softmax_rows(x);
        for (a, b) in t.value(ls).data().iter().zip(t.value(s).data()) {
            assert!((a - b.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn log_softmax_grads() {
        assert_grads(probe(), 1e-2, |t, x| {
            let ls = t.log_softmax_rows(x);
            let w = t.constant(Tensor::from_rows(&[&[1.0, 0.0, -2.0], &[0.3, 1.1, 0.7]]));
            let p = t.mul(ls, w);
            t.sum(p)
        });
    }

    #[test]
    fn logsumexp_is_stable_for_large_inputs() {
        let mut t = Tape::new();
        let x = t.constant(Tensor::row_vector(&[1000.0, 1000.0]));
        let l = t.logsumexp_rows(x);
        assert!((t.value(l).item() - (1000.0 + 2.0_f32.ln())).abs() < 1e-3);
    }

    #[test]
    fn logsumexp_grads() {
        assert_grads(probe(), 1e-2, |t, x| {
            let l = t.logsumexp_rows(x);
            let sq = t.mul(l, l);
            t.sum(sq)
        });
    }
}
