use crate::{ParamId, ParamStore, Tensor};

/// Handle to a node in a [`Tape`]. Cheap to copy; only valid for the tape
/// that produced it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

/// Where a leaf node's gradient should be delivered after backpropagation.
enum Sink {
    /// Whole-tensor gradient for a parameter.
    Param(ParamId),
    /// Row-scattered gradient for an embedding lookup: row `i` of the node's
    /// gradient is added into row `indices[i]` of the parameter's gradient.
    ParamRows(ParamId, Vec<usize>),
}

/// Backward rule: given the gradient flowing into a node's output, produce
/// the gradient contribution for each parent (aligned with the node's parent
/// list; `None` means "no gradient to this parent").
type BackFn = Box<dyn Fn(&Tensor) -> Vec<Option<Tensor>>>;

/// Backward rule for a *packed* multi-segment node: like [`BackFn`] but the
/// rule additionally receives a [`SegEmitter`] through which it must emit
/// per-segment parameter-gradient contributions (computed with the same
/// per-sentence formulas and fold orders the oracle tape uses), instead of
/// returning a gradient for the parameter parents.
type SegBackFn = Box<dyn Fn(&Tensor, &mut SegEmitter) -> Vec<Option<Tensor>>>;

/// Segment tag meaning "owned by no packing segment".
const SEG_NONE: u32 = u32::MAX;

struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    parents: Vec<usize>,
    backward: Option<BackFn>,
    sink: Option<Sink>,
    /// Packing segment that owns this node's parameter sink (`SEG_NONE` for
    /// shared/packed nodes). Assigned from [`Tape::cur_seg`] on push.
    seg: u32,
    /// Segment-aware backward rule for packed nodes; mutually exclusive
    /// with `backward`.
    seg_backward: Option<SegBackFn>,
}

/// One parameter-gradient contribution recorded during a segmented sweep.
enum Emit {
    Dense(ParamId, Tensor),
    Rows(ParamId, Vec<usize>, Tensor),
}

/// Collects per-segment parameter-gradient contributions during
/// [`Tape::backward_into_segmented`]. Packed nodes emit each segment's
/// contribution explicitly; scoped per-segment leaves emit automatically
/// when the sweep reaches them. Phase two drains segment `s`'s list — in
/// emission order — into the `s`-th [`GradBuffer`], so every accumulation
/// folds in exactly the order the per-sentence oracle produced.
pub struct SegEmitter {
    lists: Vec<Vec<Emit>>,
}

impl SegEmitter {
    fn new(segments: usize) -> SegEmitter {
        SegEmitter { lists: (0..segments).map(|_| Vec::new()).collect() }
    }

    /// Records a whole-tensor gradient contribution for `id` on segment
    /// `seg`.
    pub fn dense(&mut self, seg: usize, id: ParamId, delta: Tensor) {
        self.lists[seg].push(Emit::Dense(id, delta));
    }

    /// Records a row-scattered embedding gradient for `id` on segment
    /// `seg`: row `i` of `delta` lands in table row `indices[i]`.
    pub fn rows(&mut self, seg: usize, id: ParamId, indices: Vec<usize>, delta: Tensor) {
        self.lists[seg].push(Emit::Rows(id, indices, delta));
    }
}

/// Coarse classes of tape operations, counted per tape so observability
/// layers can report where graph nodes come from without any per-op
/// bookkeeping beyond one array increment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpClass {
    /// Constant leaves.
    Constant,
    /// Whole-parameter leaves.
    Param,
    /// Embedding-lookup (row-gather) leaves.
    Embedding,
    /// Matrix products and transposes.
    MatMul,
    /// Pointwise arithmetic and activations.
    Elementwise,
    /// Reductions (sums, means, norms).
    Reduce,
    /// Softmax-family ops.
    Softmax,
    /// Convolutions.
    Conv,
    /// Normalization layers.
    Norm,
    /// Dropout.
    Dropout,
    /// Reshapes, concatenations, slicing.
    Shape,
    /// Loss heads.
    Loss,
    /// External custom ops (e.g. the CRF forward–backward in `ner-core`).
    Custom,
}

impl OpClass {
    /// Every class, in counter order.
    pub const ALL: [OpClass; 13] = [
        OpClass::Constant,
        OpClass::Param,
        OpClass::Embedding,
        OpClass::MatMul,
        OpClass::Elementwise,
        OpClass::Reduce,
        OpClass::Softmax,
        OpClass::Conv,
        OpClass::Norm,
        OpClass::Dropout,
        OpClass::Shape,
        OpClass::Loss,
        OpClass::Custom,
    ];

    /// Stable lowercase metric-name suffix.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Constant => "constant",
            OpClass::Param => "param",
            OpClass::Embedding => "embedding",
            OpClass::MatMul => "matmul",
            OpClass::Elementwise => "elementwise",
            OpClass::Reduce => "reduce",
            OpClass::Softmax => "softmax",
            OpClass::Conv => "conv",
            OpClass::Norm => "norm",
            OpClass::Dropout => "dropout",
            OpClass::Shape => "shape",
            OpClass::Loss => "loss",
            OpClass::Custom => "custom",
        }
    }
}

/// A destination for parameter gradients produced by
/// [`Tape::backward_into`].
///
/// [`ParamStore`] is the direct sink (gradients land on the parameters);
/// [`GradBuffer`] is the deferred sink used by data-parallel training,
/// where worker threads each backpropagate into a private buffer and the
/// coordinator merges buffers into the store in a deterministic order.
pub trait GradSink {
    /// Adds `delta` into the gradient of parameter `id`.
    fn accumulate(&mut self, id: ParamId, delta: &Tensor);

    /// Scatter-adds row `i` of `delta` into gradient row `indices[i]` of
    /// parameter `id` (embedding lookups).
    fn accumulate_rows(&mut self, id: ParamId, indices: &[usize], delta: &Tensor);
}

impl GradSink for ParamStore {
    fn accumulate(&mut self, id: ParamId, delta: &Tensor) {
        self.accumulate_grad(id, delta);
    }

    fn accumulate_rows(&mut self, id: ParamId, indices: &[usize], delta: &Tensor) {
        self.accumulate_grad_rows(id, indices, delta);
    }
}

/// A store-detached gradient accumulator.
///
/// Holds dense whole-parameter gradients plus *sparse* embedding-row
/// updates (so a worker never materializes a vocabulary-sized gradient
/// table for the handful of rows one sentence touches). Merging into a
/// [`ParamStore`] via [`GradBuffer::apply_to`] visits dense slots in
/// ascending parameter order and sparse updates in insertion order, so a
/// fixed merge sequence of buffers reproduces the same floats every run —
/// the determinism contract of data-parallel training (DESIGN.md).
#[derive(Default)]
pub struct GradBuffer {
    dense: Vec<Option<Tensor>>,
    sparse: Vec<(ParamId, Vec<usize>, Tensor)>,
}

impl GradBuffer {
    /// An empty buffer able to hold gradients for `num_params` parameters.
    pub fn new(num_params: usize) -> GradBuffer {
        let mut dense = Vec::with_capacity(num_params);
        dense.resize_with(num_params, || None);
        GradBuffer { dense, sparse: Vec::new() }
    }

    /// True when no gradient has been accumulated.
    pub fn is_empty(&self) -> bool {
        self.dense.iter().all(Option::is_none) && self.sparse.is_empty()
    }

    /// Scales every accumulated gradient in place (minibatch averaging).
    pub fn scale(&mut self, alpha: f32) {
        for g in self.dense.iter_mut().flatten() {
            g.scale_in_place(alpha);
        }
        for (_, _, g) in &mut self.sparse {
            g.scale_in_place(alpha);
        }
    }

    /// Merges the buffer into `store` gradients: dense slots in ascending
    /// parameter order, then sparse row updates in insertion order.
    pub fn apply_to(self, store: &mut ParamStore) {
        for (i, g) in self.dense.into_iter().enumerate() {
            if let Some(g) = g {
                store.accumulate_grad(ParamId(i), &g);
            }
        }
        for (id, indices, g) in self.sparse {
            store.accumulate_grad_rows(id, &indices, &g);
        }
    }
}

impl GradSink for GradBuffer {
    fn accumulate(&mut self, id: ParamId, delta: &Tensor) {
        match &mut self.dense[id.0] {
            Some(g) => g.add_scaled(delta, 1.0),
            slot => *slot = Some(delta.clone()),
        }
    }

    fn accumulate_rows(&mut self, id: ParamId, indices: &[usize], delta: &Tensor) {
        self.sparse.push((id, indices.to_vec(), delta.clone()));
    }
}

/// A reverse-mode automatic-differentiation graph.
///
/// Operations append nodes; since every node's parents precede it, reverse
/// insertion order is a valid reverse topological order and
/// [`Tape::backward`] is a single reverse sweep. A tape is intended to live
/// for exactly one forward/backward pass (one sentence — or, through
/// `BatchedTapeExec`, one packed bucket of sentences — in the NER setting).
pub struct Tape {
    nodes: Vec<Node>,
    op_counts: [u32; OpClass::ALL.len()],
    /// Segment tag stamped on every pushed node; `SEG_NONE` outside
    /// [`Tape::with_segment`].
    cur_seg: u32,
}

impl Default for Tape {
    fn default() -> Tape {
        Tape { nodes: Vec::new(), op_counts: [0; OpClass::ALL.len()], cur_seg: SEG_NONE }
    }
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes currently on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tape holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Nodes appended per operation class, non-zero entries only.
    pub fn op_counts(&self) -> impl Iterator<Item = (OpClass, u32)> + '_ {
        OpClass::ALL.iter().map(|&c| (c, self.op_counts[c as usize])).filter(|&(_, n)| n > 0)
    }

    fn push(&mut self, class: OpClass, mut node: Node) -> Var {
        node.seg = self.cur_seg;
        self.op_counts[class as usize] += 1;
        self.nodes.push(node);
        Var(self.nodes.len() - 1)
    }

    /// Tags every node appended inside `f` as owned by packing segment
    /// `seg`: [`Tape::backward_into_segmented`] routes their parameter
    /// sinks to the `seg`-th gradient buffer. Used by `BatchedTapeExec` to
    /// record per-segment (per-sentence) subgraphs — decoder losses, char
    /// compositions, attention cores — on a shared packed tape.
    pub fn with_segment<R>(&mut self, seg: usize, f: impl FnOnce(&mut Tape) -> R) -> R {
        let prev = self.cur_seg;
        self.cur_seg = seg as u32;
        let out = f(self);
        self.cur_seg = prev;
        out
    }

    /// Sets (or clears, with `None`) the segment tag applied to subsequently
    /// pushed nodes. Plain-setter form of [`Tape::with_segment`] for callers
    /// that cannot hand the tape to a closure (e.g. `BatchedTapeExec`, which
    /// holds the tape behind `&mut self` while scoping).
    pub fn set_segment(&mut self, seg: Option<usize>) {
        self.cur_seg = match seg {
            Some(s) => s as u32,
            None => SEG_NONE,
        };
    }

    /// The parameter behind a whole-parameter leaf, if `v` is one.
    pub fn param_id_of(&self, v: Var) -> Option<ParamId> {
        match self.nodes[v.0].sink {
            Some(Sink::Param(id)) => Some(id),
            _ => None,
        }
    }

    /// A leaf holding a constant (no gradient is tracked through it).
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.push(
            OpClass::Constant,
            Node {
                value,
                grad: None,
                parents: vec![],
                backward: None,
                sink: None,
                seg: SEG_NONE,
                seg_backward: None,
            },
        )
    }

    /// A differentiable leaf for parameter `id`: its value is the parameter's
    /// current value and its gradient is delivered to the store on
    /// [`Tape::backward`].
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        self.push(
            OpClass::Param,
            Node {
                value: store.value(id).clone(),
                grad: None,
                parents: vec![],
                backward: None,
                sink: Some(Sink::Param(id)),
                seg: SEG_NONE,
                seg_backward: None,
            },
        )
    }

    /// An embedding-lookup leaf: gathers `indices` rows of parameter `id`
    /// without cloning the whole table; gradients scatter-add back into the
    /// selected rows. This is the input-representation workhorse.
    pub fn param_rows(&mut self, store: &ParamStore, id: ParamId, indices: &[usize]) -> Var {
        let table = store.value(id);
        self.push(
            OpClass::Embedding,
            Node {
                value: table.gather_rows(indices),
                grad: None,
                parents: vec![],
                backward: None,
                sink: Some(Sink::ParamRows(id, indices.to_vec())),
                seg: SEG_NONE,
                seg_backward: None,
            },
        )
    }

    /// Appends a custom differentiable operation. `backward` receives the
    /// output gradient and must return one gradient (or `None`) per parent,
    /// in order. This is the extension point used by e.g. the CRF layer in
    /// `ner-core`, whose gradients are hand-derived via forward–backward.
    pub fn custom(
        &mut self,
        value: Tensor,
        parents: &[Var],
        backward: impl Fn(&Tensor) -> Vec<Option<Tensor>> + 'static,
    ) -> Var {
        self.custom_in_class(OpClass::Custom, value, parents, backward)
    }

    /// [`Tape::custom`] with an explicit [`OpClass`] — used by the in-crate
    /// op modules so the per-class counters stay exact.
    pub fn custom_in_class(
        &mut self,
        class: OpClass,
        value: Tensor,
        parents: &[Var],
        backward: impl Fn(&Tensor) -> Vec<Option<Tensor>> + 'static,
    ) -> Var {
        debug_assert!(parents.iter().all(|p| p.0 < self.nodes.len()), "parent from another tape");
        self.push(
            class,
            Node {
                value,
                grad: None,
                parents: parents.iter().map(|p| p.0).collect(),
                backward: Some(Box::new(backward)),
                sink: None,
                seg: SEG_NONE,
                seg_backward: None,
            },
        )
    }

    /// A packed multi-segment differentiable operation. `seg_backward` is
    /// [`Tape::custom`]'s backward rule plus a [`SegEmitter`]: parameter
    /// gradients must be computed *per segment* — with the same formulas
    /// and fold orders the per-sentence oracle uses — and emitted rather
    /// than returned, so [`Tape::backward_into_segmented`] can keep one
    /// gradient buffer per segment bit-identical to the oracle's. Nodes
    /// appended here are only valid on tapes driven through the segmented
    /// backward.
    pub fn custom_segmented(
        &mut self,
        class: OpClass,
        value: Tensor,
        parents: &[Var],
        seg_backward: impl Fn(&Tensor, &mut SegEmitter) -> Vec<Option<Tensor>> + 'static,
    ) -> Var {
        debug_assert!(parents.iter().all(|p| p.0 < self.nodes.len()), "parent from another tape");
        self.push(
            class,
            Node {
                value,
                grad: None,
                parents: parents.iter().map(|p| p.0).collect(),
                backward: None,
                sink: None,
                seg: SEG_NONE,
                seg_backward: Some(Box::new(seg_backward)),
            },
        )
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The gradient of the loss with respect to a node, if `backward` has
    /// been run and the node was reached. Needed e.g. by adversarial (FGM)
    /// training, which perturbs inputs along their gradient.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.0].grad.as_ref()
    }

    /// Backpropagates from scalar node `loss`, accumulating parameter
    /// gradients into `store`.
    ///
    /// # Panics
    /// Panics if `loss` is not a `1 × 1` tensor.
    pub fn backward(&mut self, loss: Var, store: &mut ParamStore) {
        self.backward_into(loss, store);
    }

    /// [`Tape::backward`] with an arbitrary [`GradSink`] — data-parallel
    /// workers pass a [`GradBuffer`] here so backpropagation needs no
    /// mutable access to the shared parameters.
    ///
    /// # Panics
    /// Panics if `loss` is not a `1 × 1` tensor.
    pub fn backward_into(&mut self, loss: Var, sink: &mut impl GradSink) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward requires a scalar loss node"
        );
        self.nodes[loss.0].grad = Some(Tensor::scalar(1.0));

        for i in (0..self.nodes.len()).rev() {
            // Split so we can read node `i` while mutating earlier parents.
            let (before, rest) = self.nodes.split_at_mut(i);
            let node = &mut rest[0];
            let Some(grad_out) = node.grad.as_ref() else { continue };

            if let Some(back) = node.backward.as_ref() {
                let deltas = back(grad_out);
                debug_assert_eq!(deltas.len(), node.parents.len());
                for (slot, delta) in node.parents.iter().zip(deltas) {
                    let Some(delta) = delta else { continue };
                    let parent = &mut before[*slot];
                    debug_assert_eq!(
                        parent.value.shape(),
                        delta.shape(),
                        "gradient shape mismatch for parent"
                    );
                    match parent.grad.as_mut() {
                        Some(g) => g.add_scaled(&delta, 1.0),
                        None => parent.grad = Some(delta),
                    }
                }
            }

            match node.sink.as_ref() {
                Some(Sink::Param(id)) => sink.accumulate(*id, node.grad.as_ref().unwrap()),
                Some(Sink::ParamRows(id, ix)) => {
                    sink.accumulate_rows(*id, ix, node.grad.as_ref().unwrap())
                }
                None => {}
            }
        }
    }

    /// Segmented variant of [`Tape::backward_into`] for packed batched
    /// training: one [`GradBuffer`] per packing segment (sentence). The
    /// sweep itself is unchanged — reverse node order, identical
    /// parent-delta folds — but parameter gradients are *collected* per
    /// segment instead of sunk directly: packed nodes emit per-segment
    /// contributions through their [`SegEmitter`] rule, scoped leaves
    /// emit to the segment that owns them, and a second phase drains each
    /// segment's list in emission order into its buffer. Applying the
    /// buffers in segment order then reproduces the per-sentence oracle's
    /// gradient floats bit for bit (DESIGN.md "Batched training").
    ///
    /// # Panics
    /// Panics if `loss` is not `1 × 1`, if a segment index is out of range
    /// for `buffers`, or if a parameter gradient reaches a leaf no segment
    /// owns (a packed node should have emitted it instead).
    pub fn backward_into_segmented(&mut self, loss: Var, buffers: &mut [GradBuffer]) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward requires a scalar loss node"
        );
        self.nodes[loss.0].grad = Some(Tensor::scalar(1.0));
        let mut emitter = SegEmitter::new(buffers.len());

        for i in (0..self.nodes.len()).rev() {
            // Split so we can read node `i` while mutating earlier parents.
            let (before, rest) = self.nodes.split_at_mut(i);
            let node = &mut rest[0];
            let Some(grad_out) = node.grad.as_ref() else { continue };

            let deltas = match (node.seg_backward.as_ref(), node.backward.as_ref()) {
                (Some(back), _) => Some(back(grad_out, &mut emitter)),
                (None, Some(back)) => Some(back(grad_out)),
                (None, None) => None,
            };
            if let Some(deltas) = deltas {
                debug_assert_eq!(deltas.len(), node.parents.len());
                for (slot, delta) in node.parents.iter().zip(deltas) {
                    let Some(delta) = delta else { continue };
                    let parent = &mut before[*slot];
                    debug_assert_eq!(
                        parent.value.shape(),
                        delta.shape(),
                        "gradient shape mismatch for parent"
                    );
                    match parent.grad.as_mut() {
                        Some(g) => g.add_scaled(&delta, 1.0),
                        None => parent.grad = Some(delta),
                    }
                }
            }

            match node.sink.as_ref() {
                Some(Sink::Param(id)) => {
                    assert_ne!(
                        node.seg, SEG_NONE,
                        "segmented backward reached an unscoped parameter leaf"
                    );
                    emitter.dense(node.seg as usize, *id, node.grad.as_ref().unwrap().clone());
                }
                Some(Sink::ParamRows(id, ix)) => {
                    assert_ne!(
                        node.seg, SEG_NONE,
                        "segmented backward reached an unscoped embedding leaf"
                    );
                    emitter.rows(
                        node.seg as usize,
                        *id,
                        ix.clone(),
                        node.grad.as_ref().unwrap().clone(),
                    );
                }
                None => {}
            }
        }

        for (list, buf) in emitter.lists.iter_mut().zip(buffers.iter_mut()) {
            for e in list.drain(..) {
                match e {
                    Emit::Dense(id, g) => buf.accumulate(id, &g),
                    Emit::Rows(id, ix, g) => buf.accumulate_rows(id, &ix, &g),
                }
            }
        }
    }
}

impl Drop for Tape {
    fn drop(&mut self) {
        // Return every node buffer to the thread-local pool: the next tape
        // for a same-shaped sentence reuses them instead of reallocating.
        for node in self.nodes.drain(..) {
            crate::pool::recycle(node.value.into_data());
            if let Some(grad) = node.grad {
                crate::pool::recycle(grad.into_data());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn grad_buffer_backward_matches_direct_backward() {
        let build = |tape: &mut Tape, store: &ParamStore, w: ParamId, emb: ParamId| {
            let rows = tape.param_rows(store, emb, &[1, 0, 1]);
            let wv = tape.param(store, w);
            let x = tape.matmul(rows, wv);
            let sq = tape.mul(x, x);
            tape.sum(sq)
        };
        let mut store = ParamStore::new();
        let emb = store.register("emb", Tensor::from_rows(&[&[0.5, -1.0], &[2.0, 0.25]]));
        let w = store.register("w", Tensor::from_rows(&[&[1.5], &[-0.5]]));

        let mut direct = store.clone();
        let mut tape = Tape::new();
        let loss = build(&mut tape, &direct, w, emb);
        tape.backward(loss, &mut direct);

        let mut buffered = store.clone();
        let mut tape = Tape::new();
        let loss = build(&mut tape, &buffered, w, emb);
        let mut buf = GradBuffer::new(buffered.len());
        tape.backward_into(loss, &mut buf);
        assert!(!buf.is_empty());
        buf.apply_to(&mut buffered);

        for id in direct.ids() {
            assert_eq!(direct.grad(id).data(), buffered.grad(id).data(), "param {id:?}");
        }
    }

    #[test]
    fn grad_buffer_scale_averages_gradients() {
        let mut store = ParamStore::new();
        let p = store.register("w", Tensor::scalar(3.0));
        let mut tape = Tape::new();
        let w = tape.param(&store, p);
        let y = tape.mul(w, w); // dy/dw = 2w = 6
        let mut buf = GradBuffer::new(store.len());
        tape.backward_into(y, &mut buf);
        buf.scale(0.5);
        buf.apply_to(&mut store);
        assert_eq!(store.grad(p).item(), 3.0);
    }

    #[test]
    fn constant_has_no_grad_after_backward() {
        let mut store = ParamStore::new();
        let mut tape = Tape::new();
        let c = tape.constant(Tensor::scalar(2.0));
        let p = store.register("w", Tensor::scalar(3.0));
        let w = tape.param(&store, p);
        let y = tape.mul(c, w);
        tape.backward(y, &mut store);
        // d(c*w)/dw = c = 2
        assert_eq!(store.grad(p).item(), 2.0);
        assert!(tape.grad(c).is_some()); // gradient flows through, but is not sunk
    }

    #[test]
    fn param_rows_scatter_grads() {
        let mut store = ParamStore::new();
        let table =
            store.register("emb", Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[2.0, 2.0]]));
        let mut tape = Tape::new();
        let rows = tape.param_rows(&store, table, &[2, 0, 2]);
        assert_eq!(tape.value(rows).rows(), 3);
        let s = tape.sum(rows);
        tape.backward(s, &mut store);
        // rows 2 picked twice, row 0 once, row 1 never
        assert_eq!(store.grad(table).row(2), &[2.0, 2.0]);
        assert_eq!(store.grad(table).row(0), &[1.0, 1.0]);
        assert_eq!(store.grad(table).row(1), &[0.0, 0.0]);
    }

    #[test]
    fn gradient_accumulates_over_fanout() {
        let mut store = ParamStore::new();
        let p = store.register("w", Tensor::scalar(4.0));
        let mut tape = Tape::new();
        let w = tape.param(&store, p);
        let y = tape.mul(w, w); // y = w², dy/dw = 2w = 8
        tape.backward(y, &mut store);
        assert_eq!(store.grad(p).item(), 8.0);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_rejects_non_scalar_loss() {
        let mut store = ParamStore::new();
        let mut tape = Tape::new();
        let c = tape.constant(Tensor::zeros(2, 2));
        tape.backward(c, &mut store);
    }

    #[test]
    fn op_counts_classify_nodes() {
        let mut store = ParamStore::new();
        let table = store.register("emb", Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]));
        let p = store.register("w", Tensor::scalar(3.0));
        let mut tape = Tape::new();
        let _rows = tape.param_rows(&store, table, &[0, 1]);
        let w = tape.param(&store, p);
        let c = tape.constant(Tensor::scalar(2.0));
        let m = tape.mul(c, w);
        let _s = tape.sum(m);
        let counts: std::collections::HashMap<&str, u32> =
            tape.op_counts().map(|(c, n)| (c.name(), n)).collect();
        assert_eq!(counts.get("embedding"), Some(&1));
        assert_eq!(counts.get("param"), Some(&1));
        assert_eq!(counts.get("constant"), Some(&1));
        assert_eq!(counts.get("elementwise"), Some(&1));
        assert_eq!(counts.get("reduce"), Some(&1));
        assert_eq!(counts.values().sum::<u32>() as usize, tape.len());
    }

    #[test]
    fn custom_op_backward_is_invoked() {
        let mut store = ParamStore::new();
        let p = store.register("w", Tensor::scalar(5.0));
        let mut tape = Tape::new();
        let w = tape.param(&store, p);
        // y = 3w via a custom node.
        let val = Tensor::scalar(tape.value(w).item() * 3.0);
        let y = tape.custom(val, &[w], |g| vec![Some(Tensor::scalar(g.item() * 3.0))]);
        tape.backward(y, &mut store);
        assert_eq!(store.grad(p).item(), 3.0);
    }
}
