use crate::Tensor;
use serde::{Deserialize, Serialize};

/// Handle to a trainable parameter registered in a [`ParamStore`].
///
/// Cheap to copy; only meaningful for the store that issued it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The raw index of this parameter inside its store.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Clone, Serialize, Deserialize)]
struct Slot {
    name: String,
    value: Tensor,
    grad: Tensor,
    /// Frozen parameters receive gradients but are skipped by optimizers —
    /// the mechanism behind the transfer-learning "freeze encoder" schemes.
    frozen: bool,
}

/// Trainable parameters that persist across autograd tapes.
///
/// A model registers its weights once; every forward pass leases them into a
/// fresh [`crate::Tape`]; `Tape::backward` accumulates gradients back here;
/// an [`crate::optim::Optimizer`] then consumes the gradients. Gradients
/// accumulate across multiple backward passes until [`ParamStore::zero_grad`]
/// (optimizers call it for you after stepping).
#[derive(Clone, Default, Serialize, Deserialize)]
pub struct ParamStore {
    slots: Vec<Slot>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a named parameter initialized to `value`, returning its id.
    pub fn register(&mut self, name: &str, value: Tensor) -> ParamId {
        let grad = Tensor::zeros(value.rows(), value.cols());
        self.slots.push(Slot { name: name.to_string(), value, grad, frozen: false });
        ParamId(self.slots.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.slots.iter().map(|s| s.value.len()).sum()
    }

    /// The current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.slots[id.0].value
    }

    /// Mutable access to a parameter value (e.g. to load pretrained weights).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.slots[id.0].value
    }

    /// The accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.slots[id.0].grad
    }

    /// The registered name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.slots[id.0].name
    }

    /// Looks a parameter up by its registered name.
    pub fn find(&self, name: &str) -> Option<ParamId> {
        self.slots.iter().position(|s| s.name == name).map(ParamId)
    }

    /// Ids of all registered parameters, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.slots.len()).map(ParamId)
    }

    /// Adds `delta` into the gradient of `id` (used by `Tape::backward`).
    pub(crate) fn accumulate_grad(&mut self, id: ParamId, delta: &Tensor) {
        self.slots[id.0].grad.add_scaled(delta, 1.0);
    }

    /// Adds `delta` rows into the gradient rows selected by `indices`
    /// (scatter-add; used by embedding lookups).
    pub(crate) fn accumulate_grad_rows(&mut self, id: ParamId, indices: &[usize], delta: &Tensor) {
        let grad = &mut self.slots[id.0].grad;
        debug_assert_eq!(delta.rows(), indices.len());
        debug_assert_eq!(delta.cols(), grad.cols());
        for (i, &ix) in indices.iter().enumerate() {
            let src = delta.row(i);
            let dst = grad.row_mut(ix);
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d += s;
            }
        }
    }

    /// Clears all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for s in &mut self.slots {
            s.grad.fill_zero();
        }
    }

    /// Marks a parameter as frozen (optimizers will skip it) or unfrozen.
    pub fn set_frozen(&mut self, id: ParamId, frozen: bool) {
        self.slots[id.0].frozen = frozen;
    }

    /// Freezes every parameter whose name starts with `prefix`; returns how
    /// many were affected. Naming parameters hierarchically
    /// (`"encoder.lstm.w_ih"`) makes layer-wise freezing a one-liner.
    pub fn freeze_prefix(&mut self, prefix: &str, frozen: bool) -> usize {
        let mut n = 0;
        for s in &mut self.slots {
            if s.name.starts_with(prefix) {
                s.frozen = frozen;
                n += 1;
            }
        }
        n
    }

    /// Whether the parameter is currently frozen.
    pub fn is_frozen(&self, id: ParamId) -> bool {
        self.slots[id.0].frozen
    }

    /// Global L2 norm of all (unfrozen) gradients.
    pub fn grad_global_norm(&self) -> f32 {
        let sq: f32 = self.slots.iter().filter(|s| !s.frozen).map(|s| s.grad.sq_norm()).sum();
        sq.sqrt()
    }

    /// Scales all gradients so their global norm does not exceed `max_norm`.
    /// Returns the pre-clipping norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_global_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for s in &mut self.slots {
                if !s.frozen {
                    s.grad.scale_in_place(scale);
                }
            }
        }
        norm
    }

    /// Applies `f(value, grad)` to every unfrozen parameter — the primitive
    /// optimizers are built on.
    pub fn for_each_unfrozen(&mut self, mut f: impl FnMut(usize, &mut Tensor, &Tensor)) {
        for (i, s) in self.slots.iter_mut().enumerate() {
            if !s.frozen {
                f(i, &mut s.value, &s.grad);
            }
        }
    }

    /// Copies all parameter values from `other` by matching names. Returns
    /// the number of parameters copied; shape mismatches are skipped.
    /// This is the transfer-learning "warm start" primitive.
    pub fn load_matching(&mut self, other: &ParamStore) -> usize {
        let mut copied = 0;
        for s in &mut self.slots {
            if let Some(o) = other.slots.iter().find(|o| o.name == s.name) {
                if o.value.shape() == s.value.shape() {
                    s.value = o.value.clone();
                    copied += 1;
                }
            }
        }
        copied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut store = ParamStore::new();
        let a = store.register("layer.w", Tensor::zeros(2, 3));
        assert_eq!(store.find("layer.w"), Some(a));
        assert_eq!(store.find("missing"), None);
        assert_eq!(store.num_scalars(), 6);
        assert_eq!(store.name(a), "layer.w");
    }

    #[test]
    fn grad_accumulation_and_zeroing() {
        let mut store = ParamStore::new();
        let a = store.register("w", Tensor::zeros(1, 2));
        store.accumulate_grad(a, &Tensor::row_vector(&[1.0, 2.0]));
        store.accumulate_grad(a, &Tensor::row_vector(&[1.0, 2.0]));
        assert_eq!(store.grad(a).data(), &[2.0, 4.0]);
        store.zero_grad();
        assert_eq!(store.grad(a).data(), &[0.0, 0.0]);
    }

    #[test]
    fn scatter_add_rows() {
        let mut store = ParamStore::new();
        let a = store.register("emb", Tensor::zeros(4, 2));
        let delta = Tensor::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        store.accumulate_grad_rows(a, &[1, 3, 1], &delta);
        assert_eq!(store.grad(a).row(1), &[4.0, 4.0]);
        assert_eq!(store.grad(a).row(3), &[2.0, 2.0]);
        assert_eq!(store.grad(a).row(0), &[0.0, 0.0]);
    }

    #[test]
    fn clip_scales_to_max_norm() {
        let mut store = ParamStore::new();
        let a = store.register("w", Tensor::zeros(1, 2));
        store.accumulate_grad(a, &Tensor::row_vector(&[3.0, 4.0]));
        let pre = store.clip_grad_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((store.grad_global_norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn freeze_prefix_marks_matching() {
        let mut store = ParamStore::new();
        let a = store.register("encoder.w", Tensor::zeros(1, 1));
        let b = store.register("decoder.w", Tensor::zeros(1, 1));
        assert_eq!(store.freeze_prefix("encoder.", true), 1);
        assert!(store.is_frozen(a));
        assert!(!store.is_frozen(b));
    }

    #[test]
    fn load_matching_copies_by_name_and_shape() {
        let mut src = ParamStore::new();
        src.register("w", Tensor::full(1, 2, 7.0));
        src.register("v", Tensor::full(2, 2, 3.0));
        let mut dst = ParamStore::new();
        let w = dst.register("w", Tensor::zeros(1, 2));
        let v = dst.register("v", Tensor::zeros(3, 3)); // shape mismatch: skipped
        assert_eq!(dst.load_matching(&src), 1);
        assert_eq!(dst.value(w).data(), &[7.0, 7.0]);
        assert_eq!(dst.value(v).data(), &[0.0; 9]);
    }
}
