//! Fused inference kernels: `matmul + bias + activation` and
//! `softmax-in-place`, plus a fused 1-D convolution.
//!
//! The training path builds these operations as separate tape nodes
//! (`matmul` → `add_bias` → `tanh`, …), each of which clones its input into
//! a fresh node buffer so the backward pass can replay it. Inference needs
//! none of that: these kernels write the bias and the nonlinearity straight
//! into the matmul's (pooled) output buffer.
//!
//! **Determinism contract.** Every fused kernel applies its extra stages
//! only *after* the underlying accumulation has fully finished, touching
//! each element exactly once with the same scalar function the tape ops
//! use. The per-element accumulation order of the matmul/convolution is
//! untouched, so fused and unfused results are bit-identical (see
//! DESIGN.md) — the property `tests/prop_fused.rs` checks at 1/2/4
//! threads.

use crate::{pool, simd, Tensor};

/// A nonlinearity fused into [`affine_act`] / [`conv1d_act`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Identity — the fused op is just `x·w + b`.
    None,
    /// `v.max(0.0)`, exactly as `Tape::relu`.
    Relu,
    /// `f32::tanh`, exactly as `Tape::tanh`.
    Tanh,
    /// `1 / (1 + e^{-v})`, exactly as `Tape::sigmoid`.
    Sigmoid,
}

impl Activation {
    /// Applies the activation to a scalar (the same expressions the tape's
    /// elementwise ops map over their inputs).
    #[inline]
    pub fn eval(self, v: f32) -> f32 {
        match self {
            Activation::None => v,
            Activation::Relu => v.max(0.0),
            Activation::Tanh => v.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-v).exp()),
        }
    }

    /// Applies the activation elementwise in place.
    ///
    /// `Relu` runs across [`simd`] lanes (`MAXPS` with the value as first
    /// operand reproduces scalar `v.max(0.0)` bit-for-bit, including the
    /// NaN and `-0.0` cases — pinned by a unit test in `simd.rs`); `Tanh`
    /// and `Sigmoid` are transcendental and stay scalar so the bits match
    /// the tape ops exactly.
    pub fn apply(self, t: &mut Tensor) {
        match self {
            Activation::None => {}
            Activation::Relu => simd::relu_in_place(simd::active(), t.data_mut()),
            Activation::Tanh | Activation::Sigmoid => {
                for v in t.data_mut() {
                    *v = self.eval(*v);
                }
            }
        }
    }
}

/// Broadcast-adds the row vector `b [1, d]` to every row of `out [n, d]`,
/// in place — the same per-row, left-to-right sweep as `Tape::add_bias`,
/// minus the clone.
pub fn add_bias_in_place(out: &mut Tensor, b: &Tensor) {
    assert_eq!(b.rows(), 1, "bias must be a row vector");
    assert_eq!(out.cols(), b.cols(), "bias width mismatch");
    let lvl = simd::active();
    for r in 0..out.rows() {
        simd::add_in_place(lvl, out.row_mut(r), b.data());
    }
}

/// Fused affine layer: `act(x·w + b)` for `x [n, k]`, `w [k, d]`,
/// `b [1, d]` in a single pooled output buffer.
///
/// Bit-identical to the tape sequence `matmul` → `add_bias` → activation:
/// the matmul accumulates each output element in the same ascending-`p`
/// order, and the bias/activation stages run only after that accumulation
/// is complete.
pub fn affine_act(x: &Tensor, w: &Tensor, b: &Tensor, act: Activation) -> Tensor {
    let mut out = x.matmul(w);
    add_bias_in_place(&mut out, b);
    act.apply(&mut out);
    out
}

/// Row-wise softmax in place — the exact loop behind `Tape::softmax_rows`
/// (max-subtraction, exponentiation with a running sum, then one multiply
/// by the reciprocal), without the output clone.
pub fn softmax_rows_in_place(t: &mut Tensor) {
    let lvl = simd::active();
    for r in 0..t.rows() {
        let row = t.row_mut(r);
        // The max fold and the exp with its running sum are sequential
        // reductions — they stay scalar to keep the bits; only the final
        // reciprocal scale is an independent-lane sweep.
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut z = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            z += *v;
        }
        let inv = 1.0 / z;
        simd::scale_in_place(lvl, row, inv);
    }
}

/// Fused same-padded 1-D convolution + activation over `x [n, d_in]` with
/// the filter bank `w [k·d_in, d_out]` and `b [1, d_out]` (the layouts of
/// `Tape::conv1d`). The accumulation (bias first, then taps `j` ascending,
/// input features ascending, zero inputs skipped) matches the tape kernel
/// exactly; the activation runs after each row is complete.
pub fn conv1d_act(
    x: &Tensor,
    w: &Tensor,
    b: &Tensor,
    k: usize,
    dilation: usize,
    act: Activation,
) -> Tensor {
    assert!(k % 2 == 1, "conv1d requires an odd filter width");
    assert!(dilation >= 1, "dilation must be >= 1");
    let (n, d_in) = x.shape();
    let d_out = w.cols();
    assert_eq!(w.rows(), k * d_in, "filter bank shape must be [k*d_in, d_out]");
    assert_eq!(b.shape(), (1, d_out), "bias shape must be [1, d_out]");

    let half = (k / 2) as isize;
    let lvl = simd::active();
    let mut out = Tensor::zeros_pooled(n, d_out);
    for t in 0..n as isize {
        let out_row = out.row_mut(t as usize);
        out_row.copy_from_slice(b.row(0));
        for j in 0..k as isize {
            let src = t + (j - half) * dilation as isize;
            if src < 0 || src >= n as isize {
                continue;
            }
            let x_row = x.row(src as usize);
            for (i, &xv) in x_row.iter().enumerate() {
                if xv == 0.0 {
                    continue;
                }
                let w_row = w.row(j as usize * d_in + i);
                simd::axpy_in_place(lvl, out_row, w_row, xv);
            }
        }
    }
    act.apply(&mut out);
    out
}

/// Tape-free row-wise layer normalization — the forward half of
/// `Tape::layer_norm`, same per-row statistics in the same order.
pub fn layer_norm(x: &Tensor, gain: &Tensor, bias: &Tensor) -> Tensor {
    const EPS: f32 = 1e-5;
    let (n, d) = x.shape();
    assert_eq!(gain.shape(), (1, d), "gain must be [1, d]");
    assert_eq!(bias.shape(), (1, d), "bias must be [1, d]");
    let lvl = simd::active();
    let mut out = Tensor::zeros_pooled(n, d);
    for r in 0..n {
        let row = x.row(r);
        // Mean/variance are sequential reductions: scalar for bit-identity.
        let mu: f32 = row.iter().sum::<f32>() / d as f32;
        let var: f32 = row.iter().map(|&v| (v - mu) * (v - mu)).sum::<f32>() / d as f32;
        let istd = 1.0 / (var + EPS).sqrt();
        simd::norm_scale_shift(lvl, out.row_mut(r), row, gain.data(), bias.data(), mu, istd);
    }
    out
}

/// Tape-free column-wise max over rows (`[n, d] → [1, d]`, first-row tie
/// wins) — the forward half of `Tape::max_over_rows`.
pub fn max_over_rows(x: &Tensor) -> Tensor {
    let (n, d) = x.shape();
    assert!(n > 0, "max_over_rows on empty tensor");
    let lvl = simd::active();
    let mut out = Tensor::zeros_pooled(1, d);
    // Row-major fold with columns as lanes: each column sees the same
    // ascending-`r` sequence of `v > best` comparisons as the scalar
    // column-at-a-time loop, so ties (first row wins) and NaN handling
    // are unchanged — and the walk is now cache-friendly.
    out.row_mut(0).copy_from_slice(x.row(0));
    for r in 1..n {
        simd::colmax_in_place(lvl, out.row_mut(0), x.row(r));
    }
    out
}

/// Copies columns `[start, start+len)` into a fresh pooled tensor (the
/// data movement of `Tape::slice_cols`).
pub fn slice_cols(x: &Tensor, start: usize, len: usize) -> Tensor {
    assert!(start + len <= x.cols(), "slice_cols out of bounds");
    let mut out = Tensor::zeros_pooled(x.rows(), len);
    for r in 0..x.rows() {
        out.row_mut(r).copy_from_slice(&x.row(r)[start..start + len]);
    }
    out
}

/// Clones `x` into a pool-backed buffer (an allocation-free stand-in for
/// the clones the tape's elementwise ops perform).
pub fn pooled_copy(x: &Tensor) -> Tensor {
    let mut out = Tensor::zeros_pooled(x.rows(), x.cols());
    out.data_mut().copy_from_slice(x.data());
    out
}

/// Returns a dead intermediate's buffer to the thread-local [`pool`] so the
/// next same-shaped tensor in the inference loop reuses it.
#[inline]
pub fn recycle(t: Tensor) {
    pool::recycle(t.into_data());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(rows: usize, cols: usize, scale: f32) -> Tensor {
        Tensor::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|i| ((i % 11) as f32 - 5.0) * scale).collect(),
        )
    }

    #[test]
    fn affine_act_matches_unfused_sequence() {
        let x = ramp(5, 7, 0.3);
        let w = ramp(7, 4, 0.2);
        let b = ramp(1, 4, 0.1);
        for act in [Activation::None, Activation::Relu, Activation::Tanh, Activation::Sigmoid] {
            let fused = affine_act(&x, &w, &b, act);
            let mut unfused = x.matmul(&w);
            for r in 0..unfused.rows() {
                for (o, &bv) in unfused.row_mut(r).iter_mut().zip(b.data()) {
                    *o += bv;
                }
            }
            let expect = unfused.map(|v| act.eval(v));
            assert_eq!(fused.data(), expect.data(), "{act:?}");
        }
    }

    #[test]
    fn softmax_rows_are_normalized_and_stable() {
        let mut t = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[1000.0, 1000.0, 999.0]]);
        softmax_rows_in_place(&mut t);
        for r in 0..2 {
            let s: f32 = t.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "row {r} sums to {s}");
            assert!(t.row(r).iter().all(|v| v.is_finite()));
        }
        assert!(t.at2(0, 2) > t.at2(0, 1));
    }

    #[test]
    fn conv1d_act_moving_sum_with_relu() {
        // d_in = d_out = 1, all-ones width-3 filter → padded moving sum.
        let x = Tensor::from_rows(&[&[1.0], &[-10.0], &[3.0], &[4.0]]);
        let w = Tensor::from_rows(&[&[1.0], &[1.0], &[1.0]]);
        let b = Tensor::zeros(1, 1);
        let y = conv1d_act(&x, &w, &b, 3, 1, Activation::Relu);
        // sums: -9, -6, -3, 7 → relu
        assert_eq!(y.data(), &[0.0, 0.0, 0.0, 7.0]);
    }
}
