//! Reusable neural building blocks composed from tape primitives:
//! linear layers, embeddings, LSTM/GRU cells with sequence runners,
//! multi-head self-attention and (pre-LN) Transformer blocks.
//!
//! These are substrate components shared by the embedding pretrainers
//! (`ner-embed`) and the NER models (`ner-core`); everything here is
//! architecture-agnostic.

use crate::fused::{self, Activation};
use crate::{init, ParamId, ParamStore, Tape, Tensor, Var};
use rand::Rng;

/// A fully connected layer `y = x·W + b`.
#[derive(Clone, Copy, Debug)]
pub struct Linear {
    /// Weight matrix `[d_in, d_out]`.
    pub w: ParamId,
    /// Bias row `[1, d_out]`.
    pub b: ParamId,
}

impl Linear {
    /// Registers a Xavier-initialized linear layer under `name`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        d_in: usize,
        d_out: usize,
    ) -> Self {
        Linear {
            w: store.register(&format!("{name}.w"), init::xavier(rng, d_in, d_out)),
            b: store.register(&format!("{name}.b"), init::zeros(1, d_out)),
        }
    }

    /// Registers a He-initialized layer (use before ReLU).
    pub fn new_he(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        d_in: usize,
        d_out: usize,
    ) -> Self {
        Linear {
            w: store.register(&format!("{name}.w"), init::he(rng, d_in, d_out)),
            b: store.register(&format!("{name}.b"), init::zeros(1, d_out)),
        }
    }

    /// Applies the layer to `x [n, d_in] → [n, d_out]`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let w = tape.param(store, self.w);
        let b = tape.param(store, self.b);
        tape.affine(x, w, b)
    }

    /// Tape-free [`forward`](Self::forward) with a fused activation —
    /// bit-identical to `affine` followed by that activation's tape op.
    pub fn forward_eval(&self, store: &ParamStore, x: &Tensor, act: Activation) -> Tensor {
        fused::affine_act(x, store.value(self.w), store.value(self.b), act)
    }
}

/// An embedding table with gather-based lookup.
#[derive(Clone, Copy, Debug)]
pub struct Embedding {
    /// The table parameter `[vocab, dim]`.
    pub table: ParamId,
}

impl Embedding {
    /// Registers a small-uniform-initialized table.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        vocab: usize,
        dim: usize,
    ) -> Self {
        Embedding { table: store.register(name, init::embedding(rng, vocab, dim)) }
    }

    /// Looks up `ids`, producing `[ids.len(), dim]`. Gradients scatter-add
    /// into the selected rows only.
    pub fn lookup(&self, tape: &mut Tape, store: &ParamStore, ids: &[usize]) -> Var {
        tape.param_rows(store, self.table, ids)
    }

    /// Tape-free [`lookup`](Self::lookup): copies the selected rows
    /// straight out of the parameter store.
    pub fn lookup_eval(&self, store: &ParamStore, ids: &[usize]) -> Tensor {
        store.value(self.table).gather_rows(ids)
    }
}

/// A long short-term memory cell (gate order i, f, g, o; forget bias 1).
#[derive(Clone, Copy, Debug)]
pub struct LstmCell {
    w_ih: ParamId,
    w_hh: ParamId,
    b: ParamId,
    hidden: usize,
}

/// Per-tape running state of an LSTM: leased weights plus `(h, c)`.
pub struct LstmRun {
    w_ih: Var,
    w_hh: Var,
    b: Var,
    /// Current hidden state `[1, h]`.
    pub h: Var,
    /// Current cell state `[1, h]`.
    pub c: Var,
}

impl LstmCell {
    /// Registers an LSTM cell mapping `d_in → hidden`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        d_in: usize,
        hidden: usize,
    ) -> Self {
        let w_ih = store.register(&format!("{name}.w_ih"), init::xavier(rng, d_in, 4 * hidden));
        let w_hh = store.register(&format!("{name}.w_hh"), init::xavier(rng, hidden, 4 * hidden));
        let mut bias = init::zeros(1, 4 * hidden);
        // Forget-gate bias of 1: the standard trick to ease long-range
        // gradient flow early in training.
        for i in hidden..2 * hidden {
            bias.set2(0, i, 1.0);
        }
        let b = store.register(&format!("{name}.b"), bias);
        LstmCell { w_ih, w_hh, b, hidden }
    }

    /// Hidden dimensionality.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Leases weights into `tape` and returns zeroed `(h, c)` state.
    pub fn begin(&self, tape: &mut Tape, store: &ParamStore) -> LstmRun {
        LstmRun {
            w_ih: tape.param(store, self.w_ih),
            w_hh: tape.param(store, self.w_hh),
            b: tape.param(store, self.b),
            h: tape.constant(Tensor::zeros(1, self.hidden)),
            c: tape.constant(Tensor::zeros(1, self.hidden)),
        }
    }

    /// One timestep on input `x [1, d_in]`; updates `run.h` / `run.c`.
    pub fn step(&self, tape: &mut Tape, run: &mut LstmRun, x: Var) {
        let xp = tape.matmul(x, run.w_ih);
        let hp = tape.matmul(run.h, run.w_hh);
        let s = tape.add(xp, hp);
        let pre = tape.add_bias(s, run.b);
        let h = self.hidden;
        let i_pre = tape.slice_cols(pre, 0, h);
        let f_pre = tape.slice_cols(pre, h, h);
        let g_pre = tape.slice_cols(pre, 2 * h, h);
        let o_pre = tape.slice_cols(pre, 3 * h, h);
        let i = tape.sigmoid(i_pre);
        let f = tape.sigmoid(f_pre);
        let g = tape.tanh(g_pre);
        let o = tape.sigmoid(o_pre);
        let fc = tape.mul(f, run.c);
        let ig = tape.mul(i, g);
        run.c = tape.add(fc, ig);
        let ct = tape.tanh(run.c);
        run.h = tape.mul(o, ct);
    }

    /// Runs the whole sequence `xs [n, d_in] → [n, hidden]` left to right.
    pub fn sequence(&self, tape: &mut Tape, store: &ParamStore, xs: Var) -> Var {
        let n = tape.value(xs).rows();
        let mut run = self.begin(tape, store);
        let mut outputs = Vec::with_capacity(n);
        for t in 0..n {
            let x_t = tape.row(xs, t);
            self.step(tape, &mut run, x_t);
            outputs.push(run.h);
        }
        tape.concat_rows(&outputs)
    }

    /// Runs right to left, returning outputs aligned with the input order
    /// (row `t` is the backward state at position `t`).
    pub fn sequence_rev(&self, tape: &mut Tape, store: &ParamStore, xs: Var) -> Var {
        let rev = tape.reverse_rows(xs);
        let out = self.sequence(tape, store, rev);
        tape.reverse_rows(out)
    }

    /// Tape-free [`sequence`](Self::sequence): the same float operations in
    /// the same order, with pooled buffers instead of tape nodes.
    ///
    /// The per-step input projections are batched into one `xs · W_ih`
    /// product up front — matmul rows are independent, so row `t` of the
    /// batch is bit-identical to the tape's per-step `x_t · W_ih`.
    pub fn sequence_eval(&self, store: &ParamStore, xs: &Tensor) -> Tensor {
        let n = xs.rows();
        let h = self.hidden;
        let w_hh = store.value(self.w_hh);
        let b = store.value(self.b);
        let xp = xs.matmul(store.value(self.w_ih)); // [n, 4h]
        let mut out = Tensor::zeros_pooled(n, h);
        let mut hstate = Tensor::zeros(1, h);
        let mut c = vec![0.0f32; h];
        let mut pre = vec![0.0f32; 4 * h];
        for t in 0..n {
            let hp = hstate.matmul(w_hh); // [1, 4h]
                                          // pre = (xp_t + hp) + b: the tape's add-then-add_bias order.
            for ((p, (&xv, &hv)), &bv) in
                pre.iter_mut().zip(xp.row(t).iter().zip(hp.data())).zip(b.data())
            {
                *p = (xv + hv) + bv;
            }
            fused::recycle(hp);
            let out_row = out.row_mut(t);
            for j in 0..h {
                let i = Activation::Sigmoid.eval(pre[j]);
                let f = Activation::Sigmoid.eval(pre[h + j]);
                let g = Activation::Tanh.eval(pre[2 * h + j]);
                let o = Activation::Sigmoid.eval(pre[3 * h + j]);
                let cn = f * c[j] + i * g;
                c[j] = cn;
                out_row[j] = o * cn.tanh();
            }
            hstate.row_mut(0).copy_from_slice(out.row(t));
        }
        fused::recycle(xp);
        out
    }

    /// Tape-free [`sequence_rev`](Self::sequence_rev): reverse, run
    /// forward, reverse back — aligned with the input order.
    pub fn sequence_rev_eval(&self, store: &ParamStore, xs: &Tensor) -> Tensor {
        let rev = reverse_rows_eval(xs);
        let out_rev = self.sequence_eval(store, &rev);
        fused::recycle(rev);
        let out = reverse_rows_eval(&out_rev);
        fused::recycle(out_rev);
        out
    }

    /// Starts a tape-free stepping run (zeroed `h`/`c`) for decoders that
    /// must feed back their own output one step at a time.
    pub fn begin_eval(&self) -> LstmEvalState {
        LstmEvalState { h: Tensor::zeros(1, self.hidden), c: vec![0.0; self.hidden] }
    }

    /// One tape-free timestep on `x [1, d_in]` — bit-identical to
    /// [`step`](Self::step) on the same state.
    pub fn step_eval(&self, store: &ParamStore, state: &mut LstmEvalState, x: &Tensor) {
        let h = self.hidden;
        let xp = x.matmul(store.value(self.w_ih)); // [1, 4h]
        let hp = state.h.matmul(store.value(self.w_hh)); // [1, 4h]
        let b = store.value(self.b);
        let h_row = state.h.row_mut(0);
        for j in 0..h {
            // pre = (xp + hp) + b: the tape's add-then-add_bias order.
            let pre = |off: usize| (xp.at2(0, off + j) + hp.at2(0, off + j)) + b.at2(0, off + j);
            let i = Activation::Sigmoid.eval(pre(0));
            let f = Activation::Sigmoid.eval(pre(h));
            let g = Activation::Tanh.eval(pre(2 * h));
            let o = Activation::Sigmoid.eval(pre(3 * h));
            let cn = f * state.c[j] + i * g;
            state.c[j] = cn;
            h_row[j] = o * cn.tanh();
        }
        fused::recycle(xp);
        fused::recycle(hp);
    }
}

/// Tape-free stepping state of an LSTM (see [`LstmCell::begin_eval`]).
pub struct LstmEvalState {
    /// Current hidden state `[1, h]`.
    pub h: Tensor,
    c: Vec<f32>,
}

/// Row-reversed pooled copy of `xs` (the data movement of
/// `Tape::reverse_rows`).
fn reverse_rows_eval(xs: &Tensor) -> Tensor {
    let (n, d) = xs.shape();
    let mut out = Tensor::zeros_pooled(n, d);
    for r in 0..n {
        out.row_mut(r).copy_from_slice(xs.row(n - 1 - r));
    }
    out
}

/// A gated recurrent unit cell (PyTorch gate conventions).
#[derive(Clone, Copy, Debug)]
pub struct GruCell {
    w_ih: ParamId,
    w_hh: ParamId,
    b_ih: ParamId,
    b_hh: ParamId,
    hidden: usize,
}

/// Per-tape running state of a GRU.
pub struct GruRun {
    w_ih: Var,
    w_hh: Var,
    b_ih: Var,
    b_hh: Var,
    /// Current hidden state `[1, h]`.
    pub h: Var,
}

impl GruCell {
    /// Registers a GRU cell mapping `d_in → hidden`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        d_in: usize,
        hidden: usize,
    ) -> Self {
        GruCell {
            w_ih: store.register(&format!("{name}.w_ih"), init::xavier(rng, d_in, 3 * hidden)),
            w_hh: store.register(&format!("{name}.w_hh"), init::xavier(rng, hidden, 3 * hidden)),
            b_ih: store.register(&format!("{name}.b_ih"), init::zeros(1, 3 * hidden)),
            b_hh: store.register(&format!("{name}.b_hh"), init::zeros(1, 3 * hidden)),
            hidden,
        }
    }

    /// Hidden dimensionality.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Leases weights and returns a zeroed state.
    pub fn begin(&self, tape: &mut Tape, store: &ParamStore) -> GruRun {
        GruRun {
            w_ih: tape.param(store, self.w_ih),
            w_hh: tape.param(store, self.w_hh),
            b_ih: tape.param(store, self.b_ih),
            b_hh: tape.param(store, self.b_hh),
            h: tape.constant(Tensor::zeros(1, self.hidden)),
        }
    }

    /// One timestep on `x [1, d_in]`; updates `run.h`.
    pub fn step(&self, tape: &mut Tape, run: &mut GruRun, x: Var) {
        let h = self.hidden;
        let xp0 = tape.matmul(x, run.w_ih);
        let xp = tape.add_bias(xp0, run.b_ih);
        let hp0 = tape.matmul(run.h, run.w_hh);
        let hp = tape.add_bias(hp0, run.b_hh);
        let xz = tape.slice_cols(xp, 0, h);
        let xr = tape.slice_cols(xp, h, h);
        let xn = tape.slice_cols(xp, 2 * h, h);
        let hz = tape.slice_cols(hp, 0, h);
        let hr = tape.slice_cols(hp, h, h);
        let hn = tape.slice_cols(hp, 2 * h, h);
        let z_pre = tape.add(xz, hz);
        let z = tape.sigmoid(z_pre);
        let r_pre = tape.add(xr, hr);
        let r = tape.sigmoid(r_pre);
        let rhn = tape.mul(r, hn);
        let n_pre = tape.add(xn, rhn);
        let n = tape.tanh(n_pre);
        // h' = (1−z)⊙n + z⊙h  =  n − z⊙n + z⊙h
        let zn = tape.mul(z, n);
        let zh = tape.mul(z, run.h);
        let n_minus = tape.sub(n, zn);
        run.h = tape.add(n_minus, zh);
    }

    /// Runs the whole sequence left to right: `[n, d_in] → [n, hidden]`.
    pub fn sequence(&self, tape: &mut Tape, store: &ParamStore, xs: Var) -> Var {
        let n = tape.value(xs).rows();
        let mut run = self.begin(tape, store);
        let mut outputs = Vec::with_capacity(n);
        for t in 0..n {
            let x_t = tape.row(xs, t);
            self.step(tape, &mut run, x_t);
            outputs.push(run.h);
        }
        tape.concat_rows(&outputs)
    }

    /// Runs right to left with outputs aligned to input order.
    pub fn sequence_rev(&self, tape: &mut Tape, store: &ParamStore, xs: Var) -> Var {
        let rev = tape.reverse_rows(xs);
        let out = self.sequence(tape, store, rev);
        tape.reverse_rows(out)
    }

    /// Tape-free [`sequence`](Self::sequence) — same float operations in
    /// the same order as the tape steps (see
    /// [`LstmCell::sequence_eval`] for the batched-projection argument).
    pub fn sequence_eval(&self, store: &ParamStore, xs: &Tensor) -> Tensor {
        let n = xs.rows();
        let h = self.hidden;
        let w_hh = store.value(self.w_hh);
        let b_hh = store.value(self.b_hh);
        let mut xp = xs.matmul(store.value(self.w_ih)); // [n, 3h]
        fused::add_bias_in_place(&mut xp, store.value(self.b_ih));
        let mut out = Tensor::zeros_pooled(n, h);
        let mut hstate = Tensor::zeros(1, h);
        for t in 0..n {
            let mut hp = hstate.matmul(w_hh); // [1, 3h]
            fused::add_bias_in_place(&mut hp, b_hh);
            let x_row = xp.row(t);
            let h_row = hp.data();
            let h_prev = hstate.data();
            let out_row = out.row_mut(t);
            for j in 0..h {
                let z = Activation::Sigmoid.eval(x_row[j] + h_row[j]);
                let r = Activation::Sigmoid.eval(x_row[h + j] + h_row[h + j]);
                let nj = (x_row[2 * h + j] + r * h_row[2 * h + j]).tanh();
                // h' = (n − z⊙n) + z⊙h, associated exactly as the tape's
                // sub-then-add chain.
                out_row[j] = (nj - z * nj) + z * h_prev[j];
            }
            hstate.row_mut(0).copy_from_slice(out.row(t));
            fused::recycle(hp);
        }
        fused::recycle(xp);
        out
    }

    /// Tape-free [`sequence_rev`](Self::sequence_rev).
    pub fn sequence_rev_eval(&self, store: &ParamStore, xs: &Tensor) -> Tensor {
        let rev = reverse_rows_eval(xs);
        let out_rev = self.sequence_eval(store, &rev);
        fused::recycle(rev);
        let out = reverse_rows_eval(&out_rev);
        fused::recycle(out_rev);
        out
    }
}

/// Concatenates a forward and a backward recurrent pass: `[n, 2·hidden]`.
/// This is the "bidirectional RNN as de-facto standard" of paper §3.3.2.
pub fn bidirectional(
    tape: &mut Tape,
    store: &ParamStore,
    forward: &LstmCell,
    backward: &LstmCell,
    xs: Var,
) -> Var {
    let fw = forward.sequence(tape, store, xs);
    let bw = backward.sequence_rev(tape, store, xs);
    tape.concat_cols(&[fw, bw])
}

/// Tape-free [`bidirectional`]: forward ⧺ backward hidden states.
pub fn bidirectional_eval(
    store: &ParamStore,
    forward: &LstmCell,
    backward: &LstmCell,
    xs: &Tensor,
) -> Tensor {
    let fw = forward.sequence_eval(store, xs);
    let bw = backward.sequence_rev_eval(store, xs);
    let n = xs.rows();
    let (hf, hb) = (fw.cols(), bw.cols());
    let mut out = Tensor::zeros_pooled(n, hf + hb);
    for r in 0..n {
        let row = out.row_mut(r);
        row[..hf].copy_from_slice(fw.row(r));
        row[hf..].copy_from_slice(bw.row(r));
    }
    fused::recycle(fw);
    fused::recycle(bw);
    out
}

/// Sinusoidal positional encodings `[n, d]` (Vaswani et al. 2017).
pub fn positional_encoding(n: usize, d: usize) -> Tensor {
    let mut pe = Tensor::zeros(n, d);
    for pos in 0..n {
        for i in 0..d {
            let angle = pos as f64 / 10_000f64.powf((2 * (i / 2)) as f64 / d as f64);
            let v = if i % 2 == 0 { angle.sin() } else { angle.cos() };
            pe.set2(pos, i, v as f32);
        }
    }
    pe
}

/// Multi-head scaled-dot-product self-attention.
#[derive(Clone, Copy, Debug)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    d_model: usize,
}

impl MultiHeadAttention {
    /// Registers an attention layer with `heads` heads over `d_model`
    /// (must divide evenly).
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        d_model: usize,
        heads: usize,
    ) -> Self {
        assert_eq!(d_model % heads, 0, "d_model must be divisible by heads");
        MultiHeadAttention {
            wq: Linear::new(store, rng, &format!("{name}.wq"), d_model, d_model),
            wk: Linear::new(store, rng, &format!("{name}.wk"), d_model, d_model),
            wv: Linear::new(store, rng, &format!("{name}.wv"), d_model, d_model),
            wo: Linear::new(store, rng, &format!("{name}.wo"), d_model, d_model),
            heads,
            d_model,
        }
    }

    /// Self-attention over `x [n, d_model]`. With `causal = true`, position
    /// `t` may only attend to positions `≤ t` (the GPT-style mask); with
    /// `false`, attention is bidirectional (the BERT-style encoder).
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var, causal: bool) -> Var {
        let n = tape.value(x).rows();
        let dk = self.d_model / self.heads;
        let scale = 1.0 / (dk as f32).sqrt();
        let q = self.wq.forward(tape, store, x);
        let k = self.wk.forward(tape, store, x);
        let v = self.wv.forward(tape, store, x);

        let mask = causal.then(|| {
            let mut m = Tensor::zeros(n, n);
            for r in 0..n {
                for c in (r + 1)..n {
                    m.set2(r, c, -1e9);
                }
            }
            tape.constant(m)
        });

        let mut head_outputs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let qh = tape.slice_cols(q, h * dk, dk);
            let kh = tape.slice_cols(k, h * dk, dk);
            let vh = tape.slice_cols(v, h * dk, dk);
            let kt = tape.transpose(kh);
            let scores0 = tape.matmul(qh, kt);
            let mut scores = tape.scale(scores0, scale);
            if let Some(m) = mask {
                scores = tape.add(scores, m);
            }
            let attn = tape.softmax_rows(scores);
            head_outputs.push(tape.matmul(attn, vh));
        }
        let concat = tape.concat_cols(&head_outputs);
        self.wo.forward(tape, store, concat)
    }

    /// Tape-free bidirectional (non-causal) [`forward`](Self::forward), as
    /// the NER encoder uses it.
    ///
    /// The per-head scores are computed as `q_h · (k_h)ᵀ` via an explicit
    /// transpose + `matmul` — NOT `matmul_nt`, whose register-accumulator
    /// dot products round differently from the tape's transpose-then-matmul
    /// and would break bit-identity with the training-path forward.
    pub fn forward_eval(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        let n = x.rows();
        let dk = self.d_model / self.heads;
        let scale = 1.0 / (dk as f32).sqrt();
        let q = self.wq.forward_eval(store, x, Activation::None);
        let k = self.wk.forward_eval(store, x, Activation::None);
        let v = self.wv.forward_eval(store, x, Activation::None);
        let mut concat = Tensor::zeros_pooled(n, self.d_model);
        for hd in 0..self.heads {
            let qh = fused::slice_cols(&q, hd * dk, dk);
            let kh = fused::slice_cols(&k, hd * dk, dk);
            let vh = fused::slice_cols(&v, hd * dk, dk);
            let kt = kh.transposed();
            let mut scores = qh.matmul(&kt);
            for s in scores.data_mut() {
                *s *= scale;
            }
            fused::softmax_rows_in_place(&mut scores);
            let oh = scores.matmul(&vh);
            for r in 0..n {
                concat.row_mut(r)[hd * dk..(hd + 1) * dk].copy_from_slice(oh.row(r));
            }
            for t in [qh, kh, vh, kt, scores, oh] {
                fused::recycle(t);
            }
        }
        let out = self.wo.forward_eval(store, &concat, Activation::None);
        for t in [q, k, v, concat] {
            fused::recycle(t);
        }
        out
    }
}

/// A pre-LN Transformer block: `x + Attn(LN(x))` then `· + FF(LN(·))`.
#[derive(Clone, Copy, Debug)]
pub struct TransformerBlock {
    attn: MultiHeadAttention,
    ln1_g: ParamId,
    ln1_b: ParamId,
    ln2_g: ParamId,
    ln2_b: ParamId,
    ff1: Linear,
    ff2: Linear,
}

impl TransformerBlock {
    /// Registers a block over `d_model` with `heads` heads and a feed-forward
    /// hidden width of `d_ff`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        d_model: usize,
        heads: usize,
        d_ff: usize,
    ) -> Self {
        TransformerBlock {
            attn: MultiHeadAttention::new(store, rng, &format!("{name}.attn"), d_model, heads),
            ln1_g: store.register(&format!("{name}.ln1.g"), Tensor::full(1, d_model, 1.0)),
            ln1_b: store.register(&format!("{name}.ln1.b"), init::zeros(1, d_model)),
            ln2_g: store.register(&format!("{name}.ln2.g"), Tensor::full(1, d_model, 1.0)),
            ln2_b: store.register(&format!("{name}.ln2.b"), init::zeros(1, d_model)),
            ff1: Linear::new_he(store, rng, &format!("{name}.ff1"), d_model, d_ff),
            ff2: Linear::new(store, rng, &format!("{name}.ff2"), d_ff, d_model),
        }
    }

    /// Applies the block to `x [n, d_model]`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var, causal: bool) -> Var {
        let g1 = tape.param(store, self.ln1_g);
        let b1 = tape.param(store, self.ln1_b);
        let normed = tape.layer_norm(x, g1, b1);
        let attended = self.attn.forward(tape, store, normed, causal);
        let x = tape.add(x, attended);

        let g2 = tape.param(store, self.ln2_g);
        let b2 = tape.param(store, self.ln2_b);
        let normed = tape.layer_norm(x, g2, b2);
        let h = self.ff1.forward(tape, store, normed);
        let h = tape.relu(h);
        let h = self.ff2.forward(tape, store, h);
        tape.add(x, h)
    }

    /// Tape-free non-causal [`forward`](Self::forward).
    pub fn forward_eval(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        let normed = fused::layer_norm(x, store.value(self.ln1_g), store.value(self.ln1_b));
        let attended = self.attn.forward_eval(store, &normed);
        fused::recycle(normed);
        let mut x1 = fused::pooled_copy(x);
        x1.add_scaled(&attended, 1.0);
        fused::recycle(attended);

        let normed = fused::layer_norm(&x1, store.value(self.ln2_g), store.value(self.ln2_b));
        let h = self.ff1.forward_eval(store, &normed, Activation::Relu);
        fused::recycle(normed);
        let h2 = self.ff2.forward_eval(store, &h, Activation::None);
        fused::recycle(h);
        x1.add_scaled(&h2, 1.0);
        fused::recycle(h2);
        x1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn train_sequence_task(
        forward: impl Fn(&mut Tape, &ParamStore, Var) -> Var,
        store: &mut ParamStore,
    ) -> (f32, f32) {
        // Task: given a 4-step sequence of 2-d inputs, predict at each step
        // whether the *first* step's first feature was positive — requires
        // carrying information across time.
        let mut opt = Adam::new(0.02);
        let inputs = [
            (Tensor::from_rows(&[&[1.0, 0.2], &[0.0, 1.0], &[0.3, 0.3], &[0.1, 0.9]]), 1.0),
            (Tensor::from_rows(&[&[-1.0, 0.2], &[0.0, 1.0], &[0.3, 0.3], &[0.1, 0.9]]), 0.0),
            (Tensor::from_rows(&[&[0.8, -0.5], &[0.5, 0.5], &[-0.2, 0.1], &[0.9, 0.0]]), 1.0),
            (Tensor::from_rows(&[&[-0.7, -0.5], &[0.5, 0.5], &[-0.2, 0.1], &[0.9, 0.0]]), 0.0),
        ];
        let mut first_loss = 0.0;
        let mut last_loss = 0.0;
        for epoch in 0..150 {
            let mut total = 0.0;
            for (x, y) in &inputs {
                let mut tape = Tape::new();
                let xs = tape.constant(x.clone());
                let probs = forward(&mut tape, store, xs);
                let labels = Tensor::full(tape.value(probs).rows(), tape.value(probs).cols(), *y);
                let loss = tape.binary_cross_entropy_sum(probs, &labels);
                total += tape.value(loss).item();
                tape.backward(loss, store);
                opt.step(store);
            }
            if epoch == 0 {
                first_loss = total;
            }
            last_loss = total;
        }
        (first_loss, last_loss)
    }

    #[test]
    fn lstm_learns_to_carry_state() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, &mut rng, "lstm", 2, 8);
        let head = Linear::new(&mut store, &mut rng, "head", 8, 1);
        let (first, last) = train_sequence_task(
            |tape, store, xs| {
                let hs = cell.sequence(tape, store, xs);
                let logits = head.forward(tape, store, hs);
                tape.sigmoid(logits)
            },
            &mut store,
        );
        assert!(last < first * 0.3, "LSTM loss should fall sharply: {first} -> {last}");
    }

    #[test]
    fn gru_learns_to_carry_state() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let cell = GruCell::new(&mut store, &mut rng, "gru", 2, 8);
        let head = Linear::new(&mut store, &mut rng, "head", 8, 1);
        let (first, last) = train_sequence_task(
            |tape, store, xs| {
                let hs = cell.sequence(tape, store, xs);
                let logits = head.forward(tape, store, hs);
                tape.sigmoid(logits)
            },
            &mut store,
        );
        assert!(last < first * 0.3, "GRU loss should fall sharply: {first} -> {last}");
    }

    #[test]
    fn bidirectional_sees_both_directions() {
        // Predict at every position whether the LAST step's first feature is
        // positive — impossible for a forward-only pass at position 0, easy
        // for a bidirectional one.
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let fw = LstmCell::new(&mut store, &mut rng, "fw", 2, 6);
        let bw = LstmCell::new(&mut store, &mut rng, "bw", 2, 6);
        let head = Linear::new(&mut store, &mut rng, "head", 12, 1);
        let mut opt = Adam::new(0.02);
        let inputs = [
            (Tensor::from_rows(&[&[0.1, 0.2], &[0.0, 1.0], &[1.0, 0.3]]), 1.0),
            (Tensor::from_rows(&[&[0.1, 0.2], &[0.0, 1.0], &[-1.0, 0.3]]), 0.0),
        ];
        let mut last = 0.0;
        for _ in 0..150 {
            last = 0.0;
            for (x, y) in &inputs {
                let mut tape = Tape::new();
                let xs = tape.constant(x.clone());
                let hs = bidirectional(&mut tape, &store, &fw, &bw, xs);
                let logits = head.forward(&mut tape, &store, hs);
                let probs = tape.sigmoid(logits);
                let labels = Tensor::full(3, 1, *y);
                let loss = tape.binary_cross_entropy_sum(probs, &labels);
                last += tape.value(loss).item();
                tape.backward(loss, &mut store);
                opt.step(&mut store);
            }
        }
        assert!(last < 0.5, "bidirectional loss at position 0 should vanish, got {last}");
    }

    #[test]
    fn attention_output_shape_and_causality() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let attn = MultiHeadAttention::new(&mut store, &mut rng, "attn", 8, 2);
        let x1 = Tensor::from_rows(&[&[0.1; 8], &[0.5; 8], &[0.9; 8]]);
        let mut x2 = x1.clone();
        // Change only the LAST row; causal attention must leave row 0 unchanged.
        x2.row_mut(2).iter_mut().for_each(|v| *v = -1.0);

        let mut t1 = Tape::new();
        let v1 = t1.constant(x1);
        let o1 = attn.forward(&mut t1, &store, v1, true);
        let mut t2 = Tape::new();
        let v2 = t2.constant(x2);
        let o2 = attn.forward(&mut t2, &store, v2, true);
        assert_eq!(t1.value(o1).shape(), (3, 8));
        for (a, b) in t1.value(o1).row(0).iter().zip(t2.value(o2).row(0)) {
            assert!((a - b).abs() < 1e-6, "causal row 0 must not see future tokens");
        }
        // Bidirectional attention DOES propagate the change to row 0.
        let mut t3 = Tape::new();
        let v3 = t3.constant(t2.value(v2).clone());
        let o3 = attn.forward(&mut t3, &store, v3, false);
        let differs =
            t1.value(o1).row(0).iter().zip(t3.value(o3).row(0)).any(|(a, b)| (a - b).abs() > 1e-6);
        assert!(differs, "bidirectional row 0 should see the changed future token");
    }

    #[test]
    fn transformer_block_trains() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let block = TransformerBlock::new(&mut store, &mut rng, "blk", 8, 2, 16);
        let head = Linear::new(&mut store, &mut rng, "head", 8, 1);
        let proj = Linear::new(&mut store, &mut rng, "proj", 2, 8);
        let (first, last) = train_sequence_task(
            |tape, store, xs| {
                let x = proj.forward(tape, store, xs);
                let h = block.forward(tape, store, x, false);
                let logits = head.forward(tape, store, h);
                tape.sigmoid(logits)
            },
            &mut store,
        );
        assert!(last < first, "transformer loss should decrease: {first} -> {last}");
    }

    #[test]
    fn positional_encoding_shape_and_range() {
        let pe = positional_encoding(10, 8);
        assert_eq!(pe.shape(), (10, 8));
        assert!(pe.data().iter().all(|v| v.abs() <= 1.0 + 1e-6));
        // Row 0 alternates sin(0)=0, cos(0)=1.
        assert_eq!(pe.at2(0, 0), 0.0);
        assert!((pe.at2(0, 1) - 1.0).abs() < 1e-6);
    }
}
