//! Reusable neural building blocks: linear layers, embeddings, LSTM/GRU
//! cells with sequence runners, multi-head self-attention and (pre-LN)
//! Transformer blocks.
//!
//! Every block has exactly **one** forward implementation, written against
//! the [`Exec`] backend: run it with a [`crate::Tape`] to record autograd
//! nodes for training, or with a [`crate::FusedExec`] for tape-free pooled
//! inference. The two backends produce bit-identical forward values (see
//! [`crate::exec`]).
//!
//! These are substrate components shared by the embedding pretrainers
//! (`ner-embed`) and the NER models (`ner-core`); everything here is
//! architecture-agnostic.

use crate::exec::{Exec, PackedExec};
use crate::fused::Activation;
use crate::{init, ParamId, ParamStore, Tensor};
use rand::Rng;

/// A fully connected layer `y = x·W + b`.
#[derive(Clone, Copy, Debug)]
pub struct Linear {
    /// Weight matrix `[d_in, d_out]`.
    pub w: ParamId,
    /// Bias row `[1, d_out]`.
    pub b: ParamId,
}

impl Linear {
    /// Registers a Xavier-initialized linear layer under `name`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        d_in: usize,
        d_out: usize,
    ) -> Self {
        Linear {
            w: store.register(&format!("{name}.w"), init::xavier(rng, d_in, d_out)),
            b: store.register(&format!("{name}.b"), init::zeros(1, d_out)),
        }
    }

    /// Registers a He-initialized layer (use before ReLU).
    pub fn new_he(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        d_in: usize,
        d_out: usize,
    ) -> Self {
        Linear {
            w: store.register(&format!("{name}.w"), init::he(rng, d_in, d_out)),
            b: store.register(&format!("{name}.b"), init::zeros(1, d_out)),
        }
    }

    /// Applies the layer to `x [n, d_in] → [n, d_out]`.
    pub fn forward<E: Exec>(&self, ex: &mut E, store: &ParamStore, x: E::V) -> E::V {
        self.forward_act(ex, store, x, Activation::None)
    }

    /// [`forward`](Self::forward) with a fused activation — on a tape this
    /// is the `affine` node followed by the activation's node.
    pub fn forward_act<E: Exec>(
        &self,
        ex: &mut E,
        store: &ParamStore,
        x: E::V,
        act: Activation,
    ) -> E::V {
        let w = ex.param(store, self.w);
        let b = ex.param(store, self.b);
        ex.affine_act(x, w, b, act)
    }
}

/// An embedding table with gather-based lookup.
#[derive(Clone, Copy, Debug)]
pub struct Embedding {
    /// The table parameter `[vocab, dim]`.
    pub table: ParamId,
}

impl Embedding {
    /// Registers a small-uniform-initialized table.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        vocab: usize,
        dim: usize,
    ) -> Self {
        Embedding { table: store.register(name, init::embedding(rng, vocab, dim)) }
    }

    /// Looks up `ids`, producing `[ids.len(), dim]`. On a tape, gradients
    /// scatter-add into the selected rows only.
    pub fn lookup<E: Exec>(&self, ex: &mut E, store: &ParamStore, ids: &[usize]) -> E::V {
        ex.lookup(store, self.table, ids)
    }
}

/// A long short-term memory cell (gate order i, f, g, o; forget bias 1).
#[derive(Clone, Copy, Debug)]
pub struct LstmCell {
    w_ih: ParamId,
    w_hh: ParamId,
    b: ParamId,
    hidden: usize,
}

/// Running state of an LSTM on some backend: leased weights plus `(h, c)`.
pub struct LstmRun<V> {
    w_ih: V,
    w_hh: V,
    b: V,
    /// Current hidden state `[1, h]`.
    pub h: V,
    /// Current cell state `[1, h]`.
    pub c: V,
}

impl LstmCell {
    /// Registers an LSTM cell mapping `d_in → hidden`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        d_in: usize,
        hidden: usize,
    ) -> Self {
        let w_ih = store.register(&format!("{name}.w_ih"), init::xavier(rng, d_in, 4 * hidden));
        let w_hh = store.register(&format!("{name}.w_hh"), init::xavier(rng, hidden, 4 * hidden));
        let mut bias = init::zeros(1, 4 * hidden);
        // Forget-gate bias of 1: the standard trick to ease long-range
        // gradient flow early in training.
        for i in hidden..2 * hidden {
            bias.set2(0, i, 1.0);
        }
        let b = store.register(&format!("{name}.b"), bias);
        LstmCell { w_ih, w_hh, b, hidden }
    }

    /// Hidden dimensionality.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Leases weights into the backend and returns zeroed `(h, c)` state.
    pub fn begin<E: Exec>(&self, ex: &mut E, store: &ParamStore) -> LstmRun<E::V> {
        LstmRun {
            w_ih: ex.param(store, self.w_ih),
            w_hh: ex.param(store, self.w_hh),
            b: ex.param(store, self.b),
            h: ex.constant(Tensor::zeros(1, self.hidden)),
            c: ex.constant(Tensor::zeros(1, self.hidden)),
        }
    }

    /// One timestep on input `x [1, d_in]`; updates `run.h` / `run.c`.
    pub fn step<E: Exec>(&self, ex: &mut E, run: &mut LstmRun<E::V>, x: E::V) {
        let xp = ex.matmul(x, run.w_ih);
        let hp = ex.matmul(run.h, run.w_hh);
        let s = ex.add(xp, hp);
        let pre = ex.add_bias(s, run.b);
        let (h, c) = ex.lstm_gates(pre, run.c, self.hidden);
        run.h = h;
        run.c = c;
    }

    /// Runs the whole sequence `xs [n, d_in] → [n, hidden]` left to right
    /// via [`Exec::lstm_sequence`] (the tape expands it to the per-step
    /// chain of [`LstmCell::step`]; the fused backend batches it).
    pub fn sequence<E: Exec>(&self, ex: &mut E, store: &ParamStore, xs: E::V) -> E::V {
        ex.lstm_sequence(store, self.w_ih, self.w_hh, self.b, self.hidden, xs)
    }

    /// Runs right to left, returning outputs aligned with the input order
    /// (row `t` is the backward state at position `t`).
    pub fn sequence_rev<E: Exec>(&self, ex: &mut E, store: &ParamStore, xs: E::V) -> E::V {
        let rev = ex.reverse_rows(xs);
        let out = self.sequence(ex, store, rev);
        ex.reverse_rows(out)
    }
}

/// A gated recurrent unit cell (PyTorch gate conventions).
#[derive(Clone, Copy, Debug)]
pub struct GruCell {
    w_ih: ParamId,
    w_hh: ParamId,
    b_ih: ParamId,
    b_hh: ParamId,
    hidden: usize,
}

/// Running state of a GRU on some backend.
pub struct GruRun<V> {
    w_ih: V,
    w_hh: V,
    b_ih: V,
    b_hh: V,
    /// Current hidden state `[1, h]`.
    pub h: V,
}

impl GruCell {
    /// Registers a GRU cell mapping `d_in → hidden`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        d_in: usize,
        hidden: usize,
    ) -> Self {
        GruCell {
            w_ih: store.register(&format!("{name}.w_ih"), init::xavier(rng, d_in, 3 * hidden)),
            w_hh: store.register(&format!("{name}.w_hh"), init::xavier(rng, hidden, 3 * hidden)),
            b_ih: store.register(&format!("{name}.b_ih"), init::zeros(1, 3 * hidden)),
            b_hh: store.register(&format!("{name}.b_hh"), init::zeros(1, 3 * hidden)),
            hidden,
        }
    }

    /// Hidden dimensionality.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Leases weights and returns a zeroed state.
    pub fn begin<E: Exec>(&self, ex: &mut E, store: &ParamStore) -> GruRun<E::V> {
        GruRun {
            w_ih: ex.param(store, self.w_ih),
            w_hh: ex.param(store, self.w_hh),
            b_ih: ex.param(store, self.b_ih),
            b_hh: ex.param(store, self.b_hh),
            h: ex.constant(Tensor::zeros(1, self.hidden)),
        }
    }

    /// One timestep on `x [1, d_in]`; updates `run.h`.
    pub fn step<E: Exec>(&self, ex: &mut E, run: &mut GruRun<E::V>, x: E::V) {
        let xp0 = ex.matmul(x, run.w_ih);
        let xp = ex.add_bias(xp0, run.b_ih);
        let hp0 = ex.matmul(run.h, run.w_hh);
        let hp = ex.add_bias(hp0, run.b_hh);
        run.h = ex.gru_gates(xp, hp, run.h, self.hidden);
    }

    /// Runs the whole sequence left to right, `[n, d_in] → [n, hidden]`,
    /// via [`Exec::gru_sequence`] (the tape expands it to the per-step
    /// chain of [`GruCell::step`]; the fused backend batches it).
    pub fn sequence<E: Exec>(&self, ex: &mut E, store: &ParamStore, xs: E::V) -> E::V {
        ex.gru_sequence(store, self.w_ih, self.w_hh, self.b_ih, self.b_hh, self.hidden, xs)
    }

    /// Runs right to left with outputs aligned to input order.
    pub fn sequence_rev<E: Exec>(&self, ex: &mut E, store: &ParamStore, xs: E::V) -> E::V {
        let rev = ex.reverse_rows(xs);
        let out = self.sequence(ex, store, rev);
        ex.reverse_rows(out)
    }
}

/// Concatenates a forward and a backward recurrent pass: `[n, 2·hidden]`.
/// This is the "bidirectional RNN as de-facto standard" of paper §3.3.2.
pub fn bidirectional<E: Exec>(
    ex: &mut E,
    store: &ParamStore,
    forward: &LstmCell,
    backward: &LstmCell,
    xs: E::V,
) -> E::V {
    let fw = forward.sequence(ex, store, xs);
    let bw = backward.sequence_rev(ex, store, xs);
    ex.concat_cols(&[fw, bw])
}

/// Sinusoidal positional encodings `[n, d]` (Vaswani et al. 2017).
pub fn positional_encoding(n: usize, d: usize) -> Tensor {
    let mut pe = Tensor::zeros(n, d);
    for pos in 0..n {
        for i in 0..d {
            let angle = pos as f64 / 10_000f64.powf((2 * (i / 2)) as f64 / d as f64);
            let v = if i % 2 == 0 { angle.sin() } else { angle.cos() };
            pe.set2(pos, i, v as f32);
        }
    }
    pe
}

/// Multi-head scaled-dot-product self-attention.
#[derive(Clone, Copy, Debug)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    d_model: usize,
}

impl MultiHeadAttention {
    /// Registers an attention layer with `heads` heads over `d_model`
    /// (must divide evenly).
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        d_model: usize,
        heads: usize,
    ) -> Self {
        assert_eq!(d_model % heads, 0, "d_model must be divisible by heads");
        MultiHeadAttention {
            wq: Linear::new(store, rng, &format!("{name}.wq"), d_model, d_model),
            wk: Linear::new(store, rng, &format!("{name}.wk"), d_model, d_model),
            wv: Linear::new(store, rng, &format!("{name}.wv"), d_model, d_model),
            wo: Linear::new(store, rng, &format!("{name}.wo"), d_model, d_model),
            heads,
            d_model,
        }
    }

    /// Self-attention over `x [n, d_model]`. With `causal = true`, position
    /// `t` may only attend to positions `≤ t` (the GPT-style mask); with
    /// `false`, attention is bidirectional (the BERT-style encoder).
    ///
    /// The per-head scores are `q_h · (k_h)ᵀ` via an explicit transpose +
    /// `matmul` — NOT `matmul_nt`, whose register-accumulator dot products
    /// round differently and would break bit-identity between backends.
    pub fn forward<E: Exec>(&self, ex: &mut E, store: &ParamStore, x: E::V, causal: bool) -> E::V {
        let n = ex.value(x).rows();
        let dk = self.d_model / self.heads;
        let scale = 1.0 / (dk as f32).sqrt();
        let q = self.wq.forward(ex, store, x);
        let k = self.wk.forward(ex, store, x);
        let v = self.wv.forward(ex, store, x);

        let mask = causal.then(|| {
            let mut m = Tensor::zeros(n, n);
            for r in 0..n {
                for c in (r + 1)..n {
                    m.set2(r, c, -1e9);
                }
            }
            ex.constant(m)
        });

        let mut head_outputs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let qh = ex.slice_cols(q, h * dk, dk);
            let kh = ex.slice_cols(k, h * dk, dk);
            let vh = ex.slice_cols(v, h * dk, dk);
            let kt = ex.transpose(kh);
            let scores0 = ex.matmul(qh, kt);
            let mut scores = ex.scale(scores0, scale);
            if let Some(m) = mask {
                scores = ex.add(scores, m);
            }
            let attn = ex.softmax_rows(scores);
            head_outputs.push(ex.matmul(attn, vh));
        }
        let concat = ex.concat_cols(&head_outputs);
        self.wo.forward(ex, store, concat)
    }

    /// Self-attention over a packed batch of segments: the q/k/v and
    /// output projections run as single GEMMs over all `[N, d_model]`
    /// packed rows, while the per-head attention core (scores, softmax,
    /// weighted sum) runs per segment inside [`PackedExec::scoped`] —
    /// attention must not mix tokens from different sentences. Each
    /// segment's output rows are bit-identical to
    /// [`MultiHeadAttention::forward`] on that segment alone, on both the
    /// inference ([`crate::BatchedExec`]) and training
    /// ([`crate::BatchedTapeExec`]) backends.
    pub fn forward_batch<P: PackedExec>(
        &self,
        bx: &mut P,
        store: &ParamStore,
        x: P::V,
        causal: bool,
    ) -> P::V {
        let dk = self.d_model / self.heads;
        let scale = 1.0 / (dk as f32).sqrt();
        let q = self.wq.forward(bx, store, x);
        let k = self.wk.forward(bx, store, x);
        let v = self.wv.forward(bx, store, x);

        let mut seg_outputs = Vec::with_capacity(bx.segments());
        for s in 0..bx.segments() {
            let qs = bx.slice_segment(q, s);
            let ks = bx.slice_segment(k, s);
            let vs = bx.slice_segment(v, s);
            let n = bx.len_of(s);
            let out = bx.scoped(s, |ex| {
                let mask = causal.then(|| {
                    let mut m = Tensor::zeros(n, n);
                    for r in 0..n {
                        for c in (r + 1)..n {
                            m.set2(r, c, -1e9);
                        }
                    }
                    ex.constant(m)
                });
                let mut head_outputs = Vec::with_capacity(self.heads);
                for h in 0..self.heads {
                    let qh = ex.slice_cols(qs, h * dk, dk);
                    let kh = ex.slice_cols(ks, h * dk, dk);
                    let vh = ex.slice_cols(vs, h * dk, dk);
                    let kt = ex.transpose(kh);
                    let scores0 = ex.matmul(qh, kt);
                    let mut scores = ex.scale(scores0, scale);
                    if let Some(m) = mask {
                        scores = ex.add(scores, m);
                    }
                    let attn = ex.softmax_rows(scores);
                    head_outputs.push(ex.matmul(attn, vh));
                }
                ex.concat_cols(&head_outputs)
            });
            seg_outputs.push(out);
        }
        let concat = bx.concat_rows(&seg_outputs);
        self.wo.forward(bx, store, concat)
    }
}

/// A pre-LN Transformer block: `x + Attn(LN(x))` then `· + FF(LN(·))`.
#[derive(Clone, Copy, Debug)]
pub struct TransformerBlock {
    attn: MultiHeadAttention,
    ln1_g: ParamId,
    ln1_b: ParamId,
    ln2_g: ParamId,
    ln2_b: ParamId,
    ff1: Linear,
    ff2: Linear,
}

impl TransformerBlock {
    /// Registers a block over `d_model` with `heads` heads and a feed-forward
    /// hidden width of `d_ff`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        d_model: usize,
        heads: usize,
        d_ff: usize,
    ) -> Self {
        TransformerBlock {
            attn: MultiHeadAttention::new(store, rng, &format!("{name}.attn"), d_model, heads),
            ln1_g: store.register(&format!("{name}.ln1.g"), Tensor::full(1, d_model, 1.0)),
            ln1_b: store.register(&format!("{name}.ln1.b"), init::zeros(1, d_model)),
            ln2_g: store.register(&format!("{name}.ln2.g"), Tensor::full(1, d_model, 1.0)),
            ln2_b: store.register(&format!("{name}.ln2.b"), init::zeros(1, d_model)),
            ff1: Linear::new_he(store, rng, &format!("{name}.ff1"), d_model, d_ff),
            ff2: Linear::new(store, rng, &format!("{name}.ff2"), d_ff, d_model),
        }
    }

    /// Applies the block to `x [n, d_model]`.
    pub fn forward<E: Exec>(&self, ex: &mut E, store: &ParamStore, x: E::V, causal: bool) -> E::V {
        let g1 = ex.param(store, self.ln1_g);
        let b1 = ex.param(store, self.ln1_b);
        let normed = ex.layer_norm(x, g1, b1);
        let attended = self.attn.forward(ex, store, normed, causal);
        let x = ex.add(x, attended);

        let g2 = ex.param(store, self.ln2_g);
        let b2 = ex.param(store, self.ln2_b);
        let normed = ex.layer_norm(x, g2, b2);
        let h = self.ff1.forward_act(ex, store, normed, Activation::Relu);
        let h = self.ff2.forward(ex, store, h);
        ex.add(x, h)
    }

    /// Applies the block to a packed batch `x [N, d_model]`: layer norm,
    /// residual adds and the feed-forward are row-wise and run over the
    /// whole packed matrix; only the attention core is segment-aware (via
    /// [`MultiHeadAttention::forward_batch`]).
    pub fn forward_batch<P: PackedExec>(
        &self,
        bx: &mut P,
        store: &ParamStore,
        x: P::V,
        causal: bool,
    ) -> P::V {
        let g1 = bx.param(store, self.ln1_g);
        let b1 = bx.param(store, self.ln1_b);
        let normed = bx.layer_norm(x, g1, b1);
        let attended = self.attn.forward_batch(bx, store, normed, causal);
        let x = bx.add(x, attended);

        let g2 = bx.param(store, self.ln2_g);
        let b2 = bx.param(store, self.ln2_b);
        let normed = bx.layer_norm(x, g2, b2);
        let h = self.ff1.forward_act(bx, store, normed, Activation::Relu);
        let h = self.ff2.forward(bx, store, h);
        bx.add(x, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use crate::{FusedExec, Tape, Var};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn train_sequence_task(
        forward: impl Fn(&mut Tape, &ParamStore, Var) -> Var,
        store: &mut ParamStore,
    ) -> (f32, f32) {
        // Task: given a 4-step sequence of 2-d inputs, predict at each step
        // whether the *first* step's first feature was positive — requires
        // carrying information across time.
        let mut opt = Adam::new(0.02);
        let inputs = [
            (Tensor::from_rows(&[&[1.0, 0.2], &[0.0, 1.0], &[0.3, 0.3], &[0.1, 0.9]]), 1.0),
            (Tensor::from_rows(&[&[-1.0, 0.2], &[0.0, 1.0], &[0.3, 0.3], &[0.1, 0.9]]), 0.0),
            (Tensor::from_rows(&[&[0.8, -0.5], &[0.5, 0.5], &[-0.2, 0.1], &[0.9, 0.0]]), 1.0),
            (Tensor::from_rows(&[&[-0.7, -0.5], &[0.5, 0.5], &[-0.2, 0.1], &[0.9, 0.0]]), 0.0),
        ];
        let mut first_loss = 0.0;
        let mut last_loss = 0.0;
        for epoch in 0..150 {
            let mut total = 0.0;
            for (x, y) in &inputs {
                let mut tape = Tape::new();
                let xs = tape.constant(x.clone());
                let probs = forward(&mut tape, store, xs);
                let labels = Tensor::full(tape.value(probs).rows(), tape.value(probs).cols(), *y);
                let loss = tape.binary_cross_entropy_sum(probs, &labels);
                total += tape.value(loss).item();
                tape.backward(loss, store);
                opt.step(store);
            }
            if epoch == 0 {
                first_loss = total;
            }
            last_loss = total;
        }
        (first_loss, last_loss)
    }

    #[test]
    fn lstm_learns_to_carry_state() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, &mut rng, "lstm", 2, 8);
        let head = Linear::new(&mut store, &mut rng, "head", 8, 1);
        let (first, last) = train_sequence_task(
            |tape, store, xs| {
                let hs = cell.sequence(tape, store, xs);
                let logits = head.forward(tape, store, hs);
                tape.sigmoid(logits)
            },
            &mut store,
        );
        assert!(last < first * 0.3, "LSTM loss should fall sharply: {first} -> {last}");
    }

    #[test]
    fn gru_learns_to_carry_state() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let cell = GruCell::new(&mut store, &mut rng, "gru", 2, 8);
        let head = Linear::new(&mut store, &mut rng, "head", 8, 1);
        let (first, last) = train_sequence_task(
            |tape, store, xs| {
                let hs = cell.sequence(tape, store, xs);
                let logits = head.forward(tape, store, hs);
                tape.sigmoid(logits)
            },
            &mut store,
        );
        assert!(last < first * 0.3, "GRU loss should fall sharply: {first} -> {last}");
    }

    #[test]
    fn bidirectional_sees_both_directions() {
        // Predict at every position whether the LAST step's first feature is
        // positive — impossible for a forward-only pass at position 0, easy
        // for a bidirectional one.
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let fw = LstmCell::new(&mut store, &mut rng, "fw", 2, 6);
        let bw = LstmCell::new(&mut store, &mut rng, "bw", 2, 6);
        let head = Linear::new(&mut store, &mut rng, "head", 12, 1);
        let mut opt = Adam::new(0.02);
        let inputs = [
            (Tensor::from_rows(&[&[0.1, 0.2], &[0.0, 1.0], &[1.0, 0.3]]), 1.0),
            (Tensor::from_rows(&[&[0.1, 0.2], &[0.0, 1.0], &[-1.0, 0.3]]), 0.0),
        ];
        let mut last = 0.0;
        for _ in 0..150 {
            last = 0.0;
            for (x, y) in &inputs {
                let mut tape = Tape::new();
                let xs = tape.constant(x.clone());
                let hs = bidirectional(&mut tape, &store, &fw, &bw, xs);
                let logits = head.forward(&mut tape, &store, hs);
                let probs = tape.sigmoid(logits);
                let labels = Tensor::full(3, 1, *y);
                let loss = tape.binary_cross_entropy_sum(probs, &labels);
                last += tape.value(loss).item();
                tape.backward(loss, &mut store);
                opt.step(&mut store);
            }
        }
        assert!(last < 0.5, "bidirectional loss at position 0 should vanish, got {last}");
    }

    #[test]
    fn attention_output_shape_and_causality() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let attn = MultiHeadAttention::new(&mut store, &mut rng, "attn", 8, 2);
        let x1 = Tensor::from_rows(&[&[0.1; 8], &[0.5; 8], &[0.9; 8]]);
        let mut x2 = x1.clone();
        // Change only the LAST row; causal attention must leave row 0 unchanged.
        x2.row_mut(2).iter_mut().for_each(|v| *v = -1.0);

        let mut t1 = Tape::new();
        let v1 = t1.constant(x1);
        let o1 = attn.forward(&mut t1, &store, v1, true);
        let mut t2 = Tape::new();
        let v2 = t2.constant(x2);
        let o2 = attn.forward(&mut t2, &store, v2, true);
        assert_eq!(t1.value(o1).shape(), (3, 8));
        for (a, b) in t1.value(o1).row(0).iter().zip(t2.value(o2).row(0)) {
            assert!((a - b).abs() < 1e-6, "causal row 0 must not see future tokens");
        }
        // Bidirectional attention DOES propagate the change to row 0.
        let mut t3 = Tape::new();
        let v3 = t3.constant(t2.value(v2).clone());
        let o3 = attn.forward(&mut t3, &store, v3, false);
        let differs =
            t1.value(o1).row(0).iter().zip(t3.value(o3).row(0)).any(|(a, b)| (a - b).abs() > 1e-6);
        assert!(differs, "bidirectional row 0 should see the changed future token");
    }

    #[test]
    fn transformer_block_trains() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let block = TransformerBlock::new(&mut store, &mut rng, "blk", 8, 2, 16);
        let head = Linear::new(&mut store, &mut rng, "head", 8, 1);
        let proj = Linear::new(&mut store, &mut rng, "proj", 2, 8);
        let (first, last) = train_sequence_task(
            |tape, store, xs| {
                let x = proj.forward(tape, store, xs);
                let h = block.forward(tape, store, x, false);
                let logits = head.forward(tape, store, h);
                tape.sigmoid(logits)
            },
            &mut store,
        );
        assert!(last < first, "transformer loss should decrease: {first} -> {last}");
    }

    #[test]
    fn positional_encoding_shape_and_range() {
        let pe = positional_encoding(10, 8);
        assert_eq!(pe.shape(), (10, 8));
        assert!(pe.data().iter().all(|v| v.abs() <= 1.0 + 1e-6));
        // Row 0 alternates sin(0)=0, cos(0)=1.
        assert_eq!(pe.at2(0, 0), 0.0);
        assert!((pe.at2(0, 1) - 1.0).abs() < 1e-6);
    }

    /// One forward, two backends: the fused backend must reproduce the
    /// tape's forward values bit for bit on every layer family.
    #[test]
    fn fused_backend_matches_tape_on_every_layer() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, &mut rng, "lin", 6, 5);
        let emb = Embedding::new(&mut store, &mut rng, "emb", 9, 6);
        let lstm_fw = LstmCell::new(&mut store, &mut rng, "lstm.fw", 6, 4);
        let lstm_bw = LstmCell::new(&mut store, &mut rng, "lstm.bw", 6, 4);
        let gru = GruCell::new(&mut store, &mut rng, "gru", 6, 4);
        let block = TransformerBlock::new(&mut store, &mut rng, "blk", 6, 2, 12);
        let ids = [3usize, 1, 7, 7, 0];

        fn run<E: Exec>(
            ex: &mut E,
            store: &ParamStore,
            layers: &(Linear, Embedding, LstmCell, LstmCell, GruCell, TransformerBlock),
            ids: &[usize],
        ) -> Vec<Vec<f32>> {
            let (lin, emb, fw, bw, gru, block) = layers;
            let x = emb.lookup(ex, store, ids);
            let mut outs = Vec::new();
            for act in [Activation::None, Activation::Relu, Activation::Tanh, Activation::Sigmoid] {
                let y = lin.forward_act(ex, store, x, act);
                outs.push(ex.value(y).data().to_vec());
            }
            let bi = bidirectional(ex, store, fw, bw, x);
            outs.push(ex.value(bi).data().to_vec());
            let g = gru.sequence(ex, store, x);
            outs.push(ex.value(g).data().to_vec());
            let t = block.forward(ex, store, x, false);
            outs.push(ex.value(t).data().to_vec());
            let pe = ex.positional_encoding(5, 6);
            let xp = ex.add(x, pe);
            outs.push(ex.value(xp).data().to_vec());
            outs
        }

        let layers = (lin, emb, lstm_fw, lstm_bw, gru, block);
        let mut tape = Tape::new();
        let expect = run(&mut tape, &store, &layers, &ids);
        let mut fe = FusedExec::new(&store);
        let got = run(&mut fe, &store, &layers, &ids);
        assert_eq!(expect.len(), got.len());
        for (i, (e, g)) in expect.iter().zip(&got).enumerate() {
            assert_eq!(e, g, "layer output {i} diverged between backends");
        }
    }
}
