use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, contiguous, row-major `f32` tensor.
///
/// All tensors in this workspace are rank-2 matrices `[rows, cols]`; vectors
/// are `[1, d]` rows and scalars are `[1, 1]`. Keeping a single canonical
/// layout keeps every kernel a simple loop and removes stride bookkeeping
/// from the autograd engine.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// A `rows × cols` tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A `rows × cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor { rows, cols, data: vec![value; rows * cols] }
    }

    /// A `rows × cols` zeroed tensor whose buffer is drawn from the
    /// thread-local [`crate::pool`] when a matching allocation is free.
    /// Kernels and tape ops use this for intermediates; [`crate::Tape`]
    /// recycles node buffers on drop, closing the loop.
    pub fn zeros_pooled(rows: usize, cols: usize) -> Self {
        Tensor { rows, cols, data: crate::pool::take(rows * cols) }
    }

    /// Consumes the tensor, returning its flat buffer (so callers can
    /// recycle it through [`crate::pool::recycle`]).
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// A `1 × 1` tensor holding a single scalar.
    pub fn scalar(value: f32) -> Self {
        Tensor { rows: 1, cols: 1, data: vec![value] }
    }

    /// Builds a tensor from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must match shape");
        Tensor { rows, cols, data }
    }

    /// Builds a tensor from row slices (all rows must share a length).
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Tensor { rows: rows.len(), cols, data }
    }

    /// A `1 × d` row vector.
    pub fn row_vector(values: &[f32]) -> Self {
        Tensor { rows: 1, cols: values.len(), data: values.to_vec() }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of the flat row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    #[inline]
    pub fn set2(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// The single element of a `1 × 1` tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not a scalar.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() requires a 1x1 tensor");
        self.data[0]
    }

    /// Immutable slice of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable slice of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a new tensor with the given rows copied, in order.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        let mut out = Tensor::zeros(indices.len(), self.cols);
        for (i, &ix) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(ix));
        }
        out
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut data = Vec::with_capacity(self.data.len());
        data.extend(self.data.iter().map(|&x| f(x)));
        Tensor { rows: self.rows, cols: self.cols, data }
    }

    /// Elementwise `self[i] += alpha * other[i]`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, alpha: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Scales all elements in place.
    pub fn scale_in_place(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Resets all elements to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Matrix product `self [m,k] × rhs [k,n] → [m,n]`.
    ///
    /// Cache-blocked i-k-j kernel (see the `kernels` module); splits output
    /// rows across the global `ner-par` pool above the FLOP threshold.
    /// Parallel and serial results are bit-identical — blocking and row
    /// splitting never reorder the per-element accumulation.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.cols, rhs.rows, "matmul inner dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Tensor::zeros_pooled(m, n);
        crate::kernels::matmul(&self.data, &rhs.data, &mut out.data, m, k, n);
        out
    }

    /// `selfᵀ × rhs`, computed without materializing the transpose.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rows, rhs.rows, "matmul_tn dimension mismatch");
        let (k, m, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Tensor::zeros_pooled(m, n);
        crate::kernels::matmul_tn(&self.data, &rhs.data, &mut out.data, k, m, n);
        out
    }

    /// `self × rhsᵀ`, computed without materializing the transpose.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.cols, rhs.cols, "matmul_nt dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        let mut out = Tensor::zeros_pooled(m, n);
        crate::kernels::matmul_nt(&self.data, &rhs.data, &mut out.data, m, k, n);
        out
    }

    /// Returns the transposed tensor (tiled kernel, parallel when large).
    pub fn transposed(&self) -> Tensor {
        let mut out = Tensor::zeros_pooled(self.cols, self.rows);
        crate::kernels::transpose(&self.data, &mut out.data, self.rows, self.cols);
        out
    }

    /// Index of the maximum element in row `r` (ties go to the first).
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        best
    }

    /// True when all elements are finite (no NaN/inf). Useful in debug
    /// assertions around numerically delicate code.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(t.shape(), (2, 2));
        assert_eq!(t.at2(1, 0), 3.0);
        assert_eq!(t.row(0), &[1.0, 2.0]);
        assert_eq!(t.sum(), 10.0);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(5.5).item(), 5.5);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_checks_shape() {
        let _ = Tensor::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_tn_transposes_the_left_operand() {
        // a is [k=2, m=3]; a.matmul_tn(b) computes aᵀ × b, so b must have
        // k=2 rows and the result is [3, n].
        let a = Tensor::from_rows(&[&[1.0, -2.0, 0.5], &[3.0, 4.0, -1.0]]);
        let b = Tensor::from_rows(&[&[2.0, 1.0], &[0.0, -1.0]]);
        let tn = a.matmul_tn(&b);
        let explicit = a.transposed().matmul(&b);
        assert_eq!(tn.shape(), (3, 2));
        assert_eq!(tn.shape(), explicit.shape());
        for (x, y) in tn.data().iter().zip(explicit.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn matmul_nt_transposes_the_right_operand() {
        // a is [m=2, k=3]; a.matmul_nt(a) computes a × aᵀ — the [2, 2]
        // Gram matrix of a's rows.
        let a = Tensor::from_rows(&[&[1.0, -2.0, 0.5], &[3.0, 4.0, -1.0]]);
        let nt = a.matmul_nt(&a);
        let explicit = a.matmul(&a.transposed());
        assert_eq!(nt.shape(), (2, 2));
        for (x, y) in nt.data().iter().zip(explicit.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn gather_rows_copies_in_order() {
        let t = Tensor::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let g = t.gather_rows(&[2, 0, 2]);
        assert_eq!(g.data(), &[3.0, 1.0, 3.0]);
    }

    #[test]
    fn add_scaled_and_norms() {
        let mut a = Tensor::from_rows(&[&[1.0, 1.0]]);
        let b = Tensor::from_rows(&[&[2.0, -2.0]]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.data(), &[2.0, 0.0]);
        assert_eq!(a.sq_norm(), 4.0);
    }

    #[test]
    fn argmax_row_first_tie_wins() {
        let t = Tensor::from_rows(&[&[1.0, 3.0, 3.0, 2.0]]);
        assert_eq!(t.argmax_row(0), 1);
    }
}
