use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, contiguous, row-major `f32` tensor.
///
/// All tensors in this workspace are rank-2 matrices `[rows, cols]`; vectors
/// are `[1, d]` rows and scalars are `[1, 1]`. Keeping a single canonical
/// layout keeps every kernel a simple loop and removes stride bookkeeping
/// from the autograd engine.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// A `rows × cols` tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A `rows × cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor { rows, cols, data: vec![value; rows * cols] }
    }

    /// A `1 × 1` tensor holding a single scalar.
    pub fn scalar(value: f32) -> Self {
        Tensor { rows: 1, cols: 1, data: vec![value] }
    }

    /// Builds a tensor from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must match shape");
        Tensor { rows, cols, data }
    }

    /// Builds a tensor from row slices (all rows must share a length).
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Tensor { rows: rows.len(), cols, data }
    }

    /// A `1 × d` row vector.
    pub fn row_vector(values: &[f32]) -> Self {
        Tensor { rows: 1, cols: values.len(), data: values.to_vec() }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of the flat row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    #[inline]
    pub fn set2(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// The single element of a `1 × 1` tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not a scalar.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() requires a 1x1 tensor");
        self.data[0]
    }

    /// Immutable slice of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable slice of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a new tensor with the given rows copied, in order.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        let mut out = Tensor::zeros(indices.len(), self.cols);
        for (i, &ix) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(ix));
        }
        out
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Elementwise `self[i] += alpha * other[i]`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, alpha: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Scales all elements in place.
    pub fn scale_in_place(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Resets all elements to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Matrix product `self [m,k] × rhs [k,n] → [m,n]`.
    ///
    /// Straightforward i-k-j loop ordering: the innermost loop streams both
    /// the output row and the rhs row, which autovectorizes well.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.cols, rhs.rows, "matmul inner dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Tensor::zeros(m, n);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (p, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[p * n..(p + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ × rhs`, computed without materializing the transpose.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rows, rhs.rows, "matmul_tn dimension mismatch");
        let (k, m, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Tensor::zeros(m, n);
        for p in 0..k {
            let a_row = &self.data[p * m..(p + 1) * m];
            let b_row = &rhs.data[p * n..(p + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self × rhsᵀ`, computed without materializing the transpose.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.cols, rhs.cols, "matmul_nt dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        let mut out = Tensor::zeros(m, n);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &rhs.data[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                *o += acc;
            }
        }
        out
    }

    /// Returns the transposed tensor.
    pub fn transposed(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Index of the maximum element in row `r` (ties go to the first).
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        best
    }

    /// True when all elements are finite (no NaN/inf). Useful in debug
    /// assertions around numerically delicate code.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(t.shape(), (2, 2));
        assert_eq!(t.at2(1, 0), 3.0);
        assert_eq!(t.row(0), &[1.0, 2.0]);
        assert_eq!(t.sum(), 10.0);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(5.5).item(), 5.5);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_checks_shape() {
        let _ = Tensor::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_transposed_variants_agree_with_explicit_transpose() {
        let a = Tensor::from_rows(&[&[1.0, -2.0, 0.5], &[3.0, 4.0, -1.0]]);
        let b = Tensor::from_rows(&[&[2.0, 1.0], &[0.0, -1.0], &[1.0, 1.0]]);
        let tn = a.matmul_tn(&b.transposed()); // aᵀ × bᵀᵀ? — validate shapes carefully below
                                               // aᵀ is 3x2; bᵀ is 2x3 so matmul_tn(a, x) needs x with 2 rows.
        let explicit = a.transposed().matmul(&b.transposed());
        assert_eq!(tn.shape(), explicit.shape());
        for (x, y) in tn.data().iter().zip(explicit.data()) {
            assert!((x - y).abs() < 1e-6);
        }

        let nt = a.matmul_nt(&a); // a × aᵀ, 2x2 gram matrix
        let explicit = a.matmul(&a.transposed());
        for (x, y) in nt.data().iter().zip(explicit.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn gather_rows_copies_in_order() {
        let t = Tensor::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let g = t.gather_rows(&[2, 0, 2]);
        assert_eq!(g.data(), &[3.0, 1.0, 3.0]);
    }

    #[test]
    fn add_scaled_and_norms() {
        let mut a = Tensor::from_rows(&[&[1.0, 1.0]]);
        let b = Tensor::from_rows(&[&[2.0, -2.0]]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.data(), &[2.0, 0.0]);
        assert_eq!(a.sq_norm(), 4.0);
    }

    #[test]
    fn argmax_row_first_tie_wins() {
        let t = Tensor::from_rows(&[&[1.0, 3.0, 3.0, 2.0]]);
        assert_eq!(t.argmax_row(0), 1);
    }
}
