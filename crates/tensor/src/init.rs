//! Weight initializers. All take a caller-provided RNG so experiments are
//! reproducible end to end.

use crate::Tensor;
use rand::Rng;

/// Uniform initialization in `[-bound, bound]`.
pub fn uniform(rng: &mut impl Rng, rows: usize, cols: usize, bound: f32) -> Tensor {
    let data = (0..rows * cols).map(|_| rng.gen_range(-bound..=bound)).collect();
    Tensor::from_vec(rows, cols, data)
}

/// Xavier/Glorot uniform initialization: `bound = √(6/(fan_in+fan_out))`.
/// The default for tanh/sigmoid-activated layers (LSTM/GRU gates, attention).
pub fn xavier(rng: &mut impl Rng, rows: usize, cols: usize) -> Tensor {
    let bound = (6.0 / (rows + cols) as f32).sqrt();
    uniform(rng, rows, cols, bound)
}

/// He/Kaiming uniform initialization: `bound = √(6/fan_in)`.
/// The default for ReLU-activated layers (CNN filter banks, MLPs).
pub fn he(rng: &mut impl Rng, rows: usize, cols: usize) -> Tensor {
    let bound = (6.0 / rows as f32).sqrt();
    uniform(rng, rows, cols, bound)
}

/// Small-scale uniform initialization for embedding tables
/// (`±0.5/cols`, the word2vec convention).
pub fn embedding(rng: &mut impl Rng, vocab: usize, dim: usize) -> Tensor {
    uniform(rng, vocab, dim, 0.5 / dim as f32)
}

/// All-zeros — the conventional start for biases.
pub fn zeros(rows: usize, cols: usize) -> Tensor {
    Tensor::zeros(rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bounds_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = xavier(&mut rng, 100, 50);
        let bound = (6.0 / 150.0_f32).sqrt();
        assert!(x.data().iter().all(|&v| v.abs() <= bound + 1e-6));

        let h = he(&mut rng, 64, 64);
        let bound = (6.0 / 64.0_f32).sqrt();
        assert!(h.data().iter().all(|&v| v.abs() <= bound + 1e-6));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = xavier(&mut StdRng::seed_from_u64(9), 4, 4);
        let b = xavier(&mut StdRng::seed_from_u64(9), 4, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn embedding_scale_is_small() {
        let mut rng = StdRng::seed_from_u64(3);
        let e = embedding(&mut rng, 10, 100);
        assert!(e.data().iter().all(|&v| v.abs() <= 0.005 + 1e-6));
    }
}
