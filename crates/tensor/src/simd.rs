//! Runtime-dispatched SIMD lane kernels behind the `NER_SIMD` knob.
//!
//! Every vector kernel in this module upholds the repo-wide determinism
//! contract (see DESIGN.md "SIMD lane kernels"): results are **bit-identical**
//! to the scalar reference kernels in [`crate::kernels`] and
//! [`crate::fused`], at every shape, alignment and thread count. The trick
//! is the *column-lane layout*: vectors run across the output-column (`n`)
//! dimension, so each lane is an **independent output element** that
//! accumulates over the shared dimension `p` in the same ascending order as
//! the scalar loop. Vectorization then only changes *which elements* are in
//! flight together, never the operation sequence of any one element — the
//! same argument that already makes the blocked/parallel scalar kernels
//! bit-identical to the textbook loop.
//!
//! Two consequences shape the code:
//!
//! - **No FMA, ever.** A fused multiply-add rounds once where `mul` + `add`
//!   round twice, so an FMA kernel would diverge from the scalar oracle in
//!   the last bit. The CPU's FMA units are detected and reported (see
//!   [`cpu_features`]) but deliberately unused.
//! - **Transcendentals and sequential reductions stay scalar.** `tanh`,
//!   `exp`, `sigmoid`, softmax's running sum and layer-norm's mean/variance
//!   have no lane-exact vector equivalent, so those loops keep the scalar
//!   code and the vector win comes from the surrounding streaming stages.
//!
//! Dispatch is resolved once per process from `NER_SIMD`
//! (`off`/`sse2`/`avx2`, default: best level the CPU supports — threaded
//! through the environment exactly like `NER_THREADS`), with a thread-local
//! [`with_level`] override for tests and benches. Kernels capture the level
//! once at entry on the calling thread and pass it into the row-parallel
//! bodies, so a forced level propagates to `ner-par` workers.

use std::cell::Cell;
use std::sync::OnceLock;

/// Which lane width the compute kernels dispatch to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdLevel {
    /// Scalar reference kernels only — the bit-exact oracle every vector
    /// path is checked against.
    Off,
    /// 4-lane `f32x4` kernels (SSE2, baseline on every x86-64 CPU).
    Sse2,
    /// 8-lane `f32x8` kernels (AVX2, used only when detected at runtime).
    Avx2,
}

impl SimdLevel {
    /// Stable lowercase name, used in bench rows, CI logs and the run
    /// manifest (`off` / `sse2` / `avx2`).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Off => "off",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

/// Vector features detected on the running CPU.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CpuFeatures {
    /// 128-bit f32 lanes — architecturally guaranteed on x86-64.
    pub sse2: bool,
    /// 256-bit f32 lanes.
    pub avx2: bool,
    /// Fused multiply-add units. Detected and reported for the bench
    /// manifest, but never used by these kernels: FMA rounds once where
    /// `mul`+`add` round twice, which would break bit-identity with the
    /// scalar oracle.
    pub fma: bool,
}

/// Detects the CPU's vector features at runtime (all `false` off x86-64).
pub fn cpu_features() -> CpuFeatures {
    #[cfg(target_arch = "x86_64")]
    {
        CpuFeatures {
            sse2: is_x86_feature_detected!("sse2"),
            avx2: is_x86_feature_detected!("avx2"),
            fma: is_x86_feature_detected!("fma"),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        CpuFeatures::default()
    }
}

/// Whether `level` can execute on this CPU.
pub fn is_supported(level: SimdLevel) -> bool {
    match level {
        SimdLevel::Off => true,
        SimdLevel::Sse2 => cpu_features().sse2,
        SimdLevel::Avx2 => cpu_features().avx2,
    }
}

/// Best level the running CPU supports (`Off` on non-x86-64 targets).
fn best_supported() -> SimdLevel {
    let f = cpu_features();
    if f.avx2 {
        SimdLevel::Avx2
    } else if f.sse2 {
        SimdLevel::Sse2
    } else {
        SimdLevel::Off
    }
}

static CONFIGURED: OnceLock<SimdLevel> = OnceLock::new();

/// The process-wide level resolved from `NER_SIMD` on first use.
///
/// `off` (or `scalar`/`0`) forces the scalar oracle; `sse2`/`avx2` request a
/// specific lane width (silently clamped to what the CPU supports, with a
/// warning on stderr); anything else — including unset — auto-detects the
/// best supported level.
pub fn configured() -> SimdLevel {
    *CONFIGURED.get_or_init(|| match std::env::var("NER_SIMD") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "off" | "scalar" | "0" => SimdLevel::Off,
            "sse2" => {
                if is_supported(SimdLevel::Sse2) {
                    SimdLevel::Sse2
                } else {
                    eprintln!("NER_SIMD=sse2 requested but not available; using scalar kernels");
                    SimdLevel::Off
                }
            }
            "avx2" => {
                if is_supported(SimdLevel::Avx2) {
                    SimdLevel::Avx2
                } else {
                    let best = best_supported();
                    eprintln!(
                        "NER_SIMD=avx2 requested but not detected; falling back to {}",
                        best.name()
                    );
                    best
                }
            }
            "auto" | "" => best_supported(),
            other => {
                let best = best_supported();
                eprintln!("NER_SIMD={other} not recognized; auto-detected {}", best.name());
                best
            }
        },
        Err(_) => best_supported(),
    })
}

thread_local! {
    /// Per-thread override installed by [`with_level`].
    static FORCED: Cell<Option<SimdLevel>> = const { Cell::new(None) };
}

/// The level kernels on this thread dispatch to right now: the
/// [`with_level`] override if one is installed, else [`configured`].
///
/// Matrix kernels read this once at entry on the calling thread and thread
/// the value through their row-parallel bodies, so an override covers the
/// `ner-par` workers of the call it wraps.
pub fn active() -> SimdLevel {
    FORCED.with(|f| f.get()).unwrap_or_else(configured)
}

/// Runs `f` with kernels on this thread forced to `level` — the seam the
/// property tests and `exp_kernels` use to compare vector variants against
/// the scalar oracle inside one process.
///
/// # Panics
/// If `level` is not supported on this CPU (forcing it would execute
/// illegal instructions).
pub fn with_level<R>(level: SimdLevel, f: impl FnOnce() -> R) -> R {
    assert!(is_supported(level), "SIMD level {} not supported on this CPU", level.name());
    struct Restore(Option<SimdLevel>);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCED.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(FORCED.with(|c| c.replace(Some(level))));
    f()
}

/// One-line description of the configured kernel backend for manifests and
/// reports, e.g. `"avx2 (cpu: sse2+avx2+fma)"`.
pub fn descriptor() -> String {
    let f = cpu_features();
    let mut feats = Vec::new();
    if f.sse2 {
        feats.push("sse2");
    }
    if f.avx2 {
        feats.push("avx2");
    }
    if f.fma {
        feats.push("fma");
    }
    let cpu = if feats.is_empty() { "none".to_string() } else { feats.join("+") };
    format!("{} (cpu: {})", configured().name(), cpu)
}

// ---------------------------------------------------------------------------
// Vector kernels (x86-64). Each pub(crate) dispatcher below returns `true`
// when a vector path handled the call, so `kernels.rs`/`fused.rs` fall
// through to their scalar reference loops on `Off` and on non-x86 targets.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod lanes {
    use crate::kernels::{MC, NC, RB};

    /// 4-lane SSE2 primitives with the uniform names the kernel macro uses.
    pub(crate) mod p128 {
        use core::arch::x86_64::*;
        pub(crate) const W: usize = 4;
        pub(crate) type V = __m128;
        #[inline(always)]
        pub(crate) unsafe fn load(p: *const f32) -> V {
            _mm_loadu_ps(p)
        }
        #[inline(always)]
        pub(crate) unsafe fn store(p: *mut f32, v: V) {
            _mm_storeu_ps(p, v)
        }
        #[inline(always)]
        pub(crate) unsafe fn set1(x: f32) -> V {
            _mm_set1_ps(x)
        }
        #[inline(always)]
        pub(crate) unsafe fn zero() -> V {
            _mm_setzero_ps()
        }
        #[inline(always)]
        pub(crate) unsafe fn add(a: V, b: V) -> V {
            _mm_add_ps(a, b)
        }
        #[inline(always)]
        pub(crate) unsafe fn mul(a: V, b: V) -> V {
            _mm_mul_ps(a, b)
        }
        #[inline(always)]
        pub(crate) unsafe fn sub(a: V, b: V) -> V {
            _mm_sub_ps(a, b)
        }
        /// `MAXPS v, 0`: with the value as the *first* operand this returns
        /// the second operand on NaN and on `-0.0` vs `+0.0` ties — exactly
        /// the bits scalar `v.max(0.0)` produces (pinned by a unit test).
        #[inline(always)]
        pub(crate) unsafe fn relu(v: V) -> V {
            _mm_max_ps(v, _mm_setzero_ps())
        }
        /// Lane-wise `if cur > best { cur } else { best }` — the exact
        /// predicate of the scalar max-over-rows fold (NaN never wins,
        /// `+0.0` never replaces `-0.0`), built from cmp/and/or because
        /// blendv needs SSE4.1.
        #[inline(always)]
        pub(crate) unsafe fn pick_gt(cur: V, best: V) -> V {
            let m = _mm_cmpgt_ps(cur, best);
            _mm_or_ps(_mm_and_ps(m, cur), _mm_andnot_ps(m, best))
        }
    }

    /// 8-lane AVX2 primitives; same contract as [`p128`].
    pub(crate) mod p256 {
        use core::arch::x86_64::*;
        pub(crate) const W: usize = 8;
        pub(crate) type V = __m256;
        #[target_feature(enable = "avx2")]
        #[inline]
        pub(crate) unsafe fn load(p: *const f32) -> V {
            _mm256_loadu_ps(p)
        }
        #[target_feature(enable = "avx2")]
        #[inline]
        pub(crate) unsafe fn store(p: *mut f32, v: V) {
            _mm256_storeu_ps(p, v)
        }
        #[target_feature(enable = "avx2")]
        #[inline]
        pub(crate) unsafe fn set1(x: f32) -> V {
            _mm256_set1_ps(x)
        }
        #[target_feature(enable = "avx2")]
        #[inline]
        pub(crate) unsafe fn zero() -> V {
            _mm256_setzero_ps()
        }
        #[target_feature(enable = "avx2")]
        #[inline]
        pub(crate) unsafe fn add(a: V, b: V) -> V {
            _mm256_add_ps(a, b)
        }
        #[target_feature(enable = "avx2")]
        #[inline]
        pub(crate) unsafe fn mul(a: V, b: V) -> V {
            _mm256_mul_ps(a, b)
        }
        #[target_feature(enable = "avx2")]
        #[inline]
        pub(crate) unsafe fn sub(a: V, b: V) -> V {
            _mm256_sub_ps(a, b)
        }
        /// See [`p128::relu`]: value first, zero second, same tie bits as
        /// scalar `v.max(0.0)`.
        #[target_feature(enable = "avx2")]
        #[inline]
        pub(crate) unsafe fn relu(v: V) -> V {
            _mm256_max_ps(v, _mm256_setzero_ps())
        }
        /// See [`p128::pick_gt`]; `GT_OQ` is the quiet ordered `>` — NaN
        /// compares false, matching the scalar predicate.
        #[target_feature(enable = "avx2")]
        #[inline]
        pub(crate) unsafe fn pick_gt(cur: V, best: V) -> V {
            let m = _mm256_cmp_ps::<_CMP_GT_OQ>(cur, best);
            _mm256_blendv_ps(best, cur, m)
        }
    }

    /// Expands the full kernel set for one lane width. The generated loops
    /// mirror the scalar kernels in `kernels.rs`/`fused.rs` statement for
    /// statement; only the per-element *grouping* differs.
    macro_rules! lane_kernels {
        ($modname:ident, $prim:ident, $feat:literal) => {
            pub(crate) mod $modname {
                use super::$prim as p;
                use super::{MC, NC, RB};

                /// Register-tile width in columns: two vectors per row keep
                /// `RB × 2` accumulators resident across a full `p` sweep.
                const TW: usize = 2 * p::W;

                /// One row's contribution over the output panel `[jb, je)` —
                /// the vector form of `kernels::row_panel`. Lanes are output
                /// columns; `p` ascends and `av == 0.0` rows are skipped
                /// exactly as in the scalar loop.
                ///
                /// # Safety
                /// Requires the target feature and in-bounds `a`/`b`/`out`
                /// for the `(r0, jb, je, k, n)` panel addressed.
                #[target_feature(enable = $feat)]
                #[allow(clippy::too_many_arguments)]
                unsafe fn nn_panel(
                    a: &[f32],
                    b: &[f32],
                    out: &mut [f32],
                    i: usize,
                    r0: usize,
                    jb: usize,
                    je: usize,
                    k: usize,
                    n: usize,
                ) {
                    let w = je - jb;
                    let ap = a.as_ptr().add(i * k);
                    let op = out.as_mut_ptr().add((i - r0) * n + jb);
                    for ptick in 0..k {
                        let av = *ap.add(ptick);
                        if av == 0.0 {
                            continue;
                        }
                        let bp = b.as_ptr().add(ptick * n + jb);
                        let vb = p::set1(av);
                        let mut c = 0usize;
                        while c + p::W <= w {
                            let o = op.add(c);
                            p::store(o, p::add(p::load(o), p::mul(vb, p::load(bp.add(c)))));
                            c += p::W;
                        }
                        while c < w {
                            *op.add(c) += av * *bp.add(c);
                            c += 1;
                        }
                    }
                }

                /// Blocked `out[r0..r1] += a × b` — the vector form of
                /// `kernels::matmul_rows`: `MC`/`NC` cache blocks, `RB × TW`
                /// register tiles (accumulators seeded from `out`, per-row
                /// `av == 0.0` skip, ascending `p`), remainders through
                /// [`nn_panel`].
                ///
                /// # Safety
                /// Requires the target feature; `a ⊇ [r1, k]`, `b = [k, n]`,
                /// `out = [r1 - r0, n]`.
                #[target_feature(enable = $feat)]
                pub(crate) unsafe fn nn_rows(
                    a: &[f32],
                    b: &[f32],
                    out: &mut [f32],
                    r0: usize,
                    r1: usize,
                    k: usize,
                    n: usize,
                ) {
                    debug_assert!(a.len() >= r1 * k);
                    debug_assert_eq!(b.len(), k * n);
                    debug_assert_eq!(out.len(), (r1 - r0) * n);
                    let ap = a.as_ptr();
                    let bp = b.as_ptr();
                    let op = out.as_mut_ptr();
                    for ib in (r0..r1).step_by(MC) {
                        let ie = (ib + MC).min(r1);
                        for jb in (0..n).step_by(NC) {
                            let je = (jb + NC).min(n);
                            let mut i = ib;
                            while i + RB <= ie {
                                let mut j = jb;
                                while j + TW <= je {
                                    let mut acc = [[p::zero(); 2]; RB];
                                    for (r, acc_r) in acc.iter_mut().enumerate() {
                                        let orow = op.add((i + r - r0) * n + j);
                                        acc_r[0] = p::load(orow);
                                        acc_r[1] = p::load(orow.add(p::W));
                                    }
                                    for ptick in 0..k {
                                        let brow = bp.add(ptick * n + j);
                                        let b0 = p::load(brow);
                                        let b1 = p::load(brow.add(p::W));
                                        for (r, acc_r) in acc.iter_mut().enumerate() {
                                            let av = *ap.add((i + r) * k + ptick);
                                            if av == 0.0 {
                                                continue;
                                            }
                                            let vb = p::set1(av);
                                            acc_r[0] = p::add(acc_r[0], p::mul(vb, b0));
                                            acc_r[1] = p::add(acc_r[1], p::mul(vb, b1));
                                        }
                                    }
                                    for (r, acc_r) in acc.iter().enumerate() {
                                        let orow = op.add((i + r - r0) * n + j);
                                        p::store(orow, acc_r[0]);
                                        p::store(orow.add(p::W), acc_r[1]);
                                    }
                                    j += TW;
                                }
                                if j < je {
                                    for ii in i..i + RB {
                                        nn_panel(a, b, out, ii, r0, j, je, k, n);
                                    }
                                }
                                i += RB;
                            }
                            for ii in i..ie {
                                nn_panel(a, b, out, ii, r0, jb, je, k, n);
                            }
                        }
                    }
                }

                /// Vector form of `kernels::matmul_tn_rows` (`a: [k, m]`):
                /// same `p`-outer blocked loop, with the row update
                /// `out_row += av * b_row` run across column lanes.
                ///
                /// # Safety
                /// Requires the target feature; `a = [k, m]`, `b = [k, n]`,
                /// `out = [r1 - r0, n]`.
                #[target_feature(enable = $feat)]
                #[allow(clippy::too_many_arguments)]
                pub(crate) unsafe fn tn_rows(
                    a: &[f32],
                    b: &[f32],
                    out: &mut [f32],
                    r0: usize,
                    r1: usize,
                    k: usize,
                    n: usize,
                    m: usize,
                ) {
                    debug_assert_eq!(a.len(), k * m);
                    debug_assert_eq!(b.len(), k * n);
                    debug_assert_eq!(out.len(), (r1 - r0) * n);
                    let ap = a.as_ptr();
                    let op = out.as_mut_ptr();
                    for ib in (r0..r1).step_by(MC) {
                        let ie = (ib + MC).min(r1);
                        for ptick in 0..k {
                            let bp = b.as_ptr().add(ptick * n);
                            for i in ib..ie {
                                let av = *ap.add(ptick * m + i);
                                if av == 0.0 {
                                    continue;
                                }
                                let orow = op.add((i - r0) * n);
                                let vb = p::set1(av);
                                let mut c = 0usize;
                                while c + p::W <= n {
                                    let o = orow.add(c);
                                    p::store(o, p::add(p::load(o), p::mul(vb, p::load(bp.add(c)))));
                                    c += p::W;
                                }
                                while c < n {
                                    *orow.add(c) += av * *bp.add(c);
                                    c += 1;
                                }
                            }
                        }
                    }
                }

                /// `R × TW` register tile of the NT kernel over the packed
                /// `bᵀ` panel (`bt: [k, n]`): accumulators start at zero, no
                /// zero-skip, and the tile ends with `out += acc` — the
                /// exact per-element sequence of the historical per-row dot
                /// products.
                ///
                /// # Safety
                /// Requires the target feature and in-bounds `a`/`bt`/`out`
                /// for the `R`-row, `TW`-column tile at `(i0, j0)`.
                #[target_feature(enable = $feat)]
                #[allow(clippy::too_many_arguments)]
                unsafe fn nt_tile<const R: usize>(
                    a: &[f32],
                    bt: &[f32],
                    out: &mut [f32],
                    i0: usize,
                    r0: usize,
                    j0: usize,
                    k: usize,
                    n: usize,
                ) {
                    let ap = a.as_ptr();
                    let btp = bt.as_ptr();
                    let op = out.as_mut_ptr();
                    let mut acc = [[p::zero(); 2]; R];
                    for ptick in 0..k {
                        let brow = btp.add(ptick * n + j0);
                        let b0 = p::load(brow);
                        let b1 = p::load(brow.add(p::W));
                        for (r, acc_r) in acc.iter_mut().enumerate() {
                            let vb = p::set1(*ap.add((i0 + r) * k + ptick));
                            acc_r[0] = p::add(acc_r[0], p::mul(vb, b0));
                            acc_r[1] = p::add(acc_r[1], p::mul(vb, b1));
                        }
                    }
                    for (r, acc_r) in acc.iter().enumerate() {
                        let orow = op.add((i0 + r - r0) * n + j0);
                        p::store(orow, p::add(p::load(orow), acc_r[0]));
                        let ohi = orow.add(p::W);
                        p::store(ohi, p::add(p::load(ohi), acc_r[1]));
                    }
                }

                /// Blocked `out[r0..r1] += a × bᵀ` over the packed panel
                /// `bt = transpose(b)`; tile remainder columns fall back to
                /// the scalar dot over the original `b: [n, k]` rows, which
                /// is the historical NT loop itself.
                ///
                /// # Safety
                /// Requires the target feature; `a ⊇ [r1, k]`, `b = [n, k]`,
                /// `bt = [k, n]`, `out = [r1 - r0, n]`.
                #[target_feature(enable = $feat)]
                #[allow(clippy::too_many_arguments)]
                pub(crate) unsafe fn nt_rows(
                    a: &[f32],
                    b: &[f32],
                    bt: &[f32],
                    out: &mut [f32],
                    r0: usize,
                    r1: usize,
                    k: usize,
                    n: usize,
                ) {
                    debug_assert!(a.len() >= r1 * k);
                    debug_assert_eq!(b.len(), n * k);
                    debug_assert_eq!(bt.len(), k * n);
                    debug_assert_eq!(out.len(), (r1 - r0) * n);
                    for ib in (r0..r1).step_by(MC) {
                        let ie = (ib + MC).min(r1);
                        for jb in (0..n).step_by(NC) {
                            let je = (jb + NC).min(n);
                            let mut i = ib;
                            while i + RB <= ie {
                                let mut j = jb;
                                while j + TW <= je {
                                    nt_tile::<RB>(a, bt, out, i, r0, j, k, n);
                                    j += TW;
                                }
                                for ii in i..i + RB {
                                    for jj in j..je {
                                        nt_dot(a, b, out, ii, r0, jj, k, n);
                                    }
                                }
                                i += RB;
                            }
                            while i < ie {
                                let mut j = jb;
                                while j + TW <= je {
                                    nt_tile::<1>(a, bt, out, i, r0, j, k, n);
                                    j += TW;
                                }
                                for jj in j..je {
                                    nt_dot(a, b, out, i, r0, jj, k, n);
                                }
                                i += 1;
                            }
                        }
                    }
                }

                /// One NT output element as the historical dot product over a
                /// contiguous row of `b: [n, k]` (accumulate from zero, no
                /// skip, final `out += acc`).
                #[inline]
                #[allow(clippy::too_many_arguments)]
                fn nt_dot(
                    a: &[f32],
                    b: &[f32],
                    out: &mut [f32],
                    i: usize,
                    r0: usize,
                    j: usize,
                    k: usize,
                    n: usize,
                ) {
                    let a_row = &a[i * k..(i + 1) * k];
                    let b_row = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0;
                    for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                        acc += av * bv;
                    }
                    out[(i - r0) * n + j] += acc;
                }

                /// `out[i] += src[i]` across lanes (bias broadcast rows).
                ///
                /// # Safety
                /// Requires the target feature; `out.len() == src.len()`.
                #[target_feature(enable = $feat)]
                pub(crate) unsafe fn add_in_place(out: &mut [f32], src: &[f32]) {
                    debug_assert_eq!(out.len(), src.len());
                    let op = out.as_mut_ptr();
                    let sp = src.as_ptr();
                    let len = out.len();
                    let mut c = 0usize;
                    while c + p::W <= len {
                        p::store(op.add(c), p::add(p::load(op.add(c)), p::load(sp.add(c))));
                        c += p::W;
                    }
                    while c < len {
                        *op.add(c) += *sp.add(c);
                        c += 1;
                    }
                }

                /// `out[i] += s * src[i]` across lanes (conv taps).
                ///
                /// # Safety
                /// Requires the target feature; `out.len() == src.len()`.
                #[target_feature(enable = $feat)]
                pub(crate) unsafe fn axpy_in_place(out: &mut [f32], src: &[f32], s: f32) {
                    debug_assert_eq!(out.len(), src.len());
                    let op = out.as_mut_ptr();
                    let sp = src.as_ptr();
                    let len = out.len();
                    let vs = p::set1(s);
                    let mut c = 0usize;
                    while c + p::W <= len {
                        p::store(
                            op.add(c),
                            p::add(p::load(op.add(c)), p::mul(vs, p::load(sp.add(c)))),
                        );
                        c += p::W;
                    }
                    while c < len {
                        *op.add(c) += s * *sp.add(c);
                        c += 1;
                    }
                }

                /// `out[i] *= s` across lanes (softmax's reciprocal scale).
                ///
                /// # Safety
                /// Requires the target feature.
                #[target_feature(enable = $feat)]
                pub(crate) unsafe fn scale_in_place(out: &mut [f32], s: f32) {
                    let op = out.as_mut_ptr();
                    let len = out.len();
                    let vs = p::set1(s);
                    let mut c = 0usize;
                    while c + p::W <= len {
                        p::store(op.add(c), p::mul(p::load(op.add(c)), vs));
                        c += p::W;
                    }
                    while c < len {
                        *op.add(c) *= s;
                        c += 1;
                    }
                }

                /// `out[i] = out[i].max(0.0)` across lanes; operand order
                /// chosen so NaN and `-0.0` produce the scalar bits.
                ///
                /// # Safety
                /// Requires the target feature.
                #[target_feature(enable = $feat)]
                pub(crate) unsafe fn relu_in_place(out: &mut [f32]) {
                    let op = out.as_mut_ptr();
                    let len = out.len();
                    let mut c = 0usize;
                    while c + p::W <= len {
                        p::store(op.add(c), p::relu(p::load(op.add(c))));
                        c += p::W;
                    }
                    while c < len {
                        let v = *op.add(c);
                        *op.add(c) = v.max(0.0);
                        c += 1;
                    }
                }

                /// Layer-norm's normalize step across lanes:
                /// `out[c] = gain[c] * ((x[c] - mu) * istd) + bias[c]`, the
                /// same four rounding steps as the scalar loop.
                ///
                /// # Safety
                /// Requires the target feature; all slices share one length.
                #[target_feature(enable = $feat)]
                pub(crate) unsafe fn norm_scale_shift(
                    out: &mut [f32],
                    x: &[f32],
                    gain: &[f32],
                    bias: &[f32],
                    mu: f32,
                    istd: f32,
                ) {
                    debug_assert_eq!(out.len(), x.len());
                    debug_assert_eq!(out.len(), gain.len());
                    debug_assert_eq!(out.len(), bias.len());
                    let op = out.as_mut_ptr();
                    let len = out.len();
                    let vmu = p::set1(mu);
                    let vistd = p::set1(istd);
                    let mut c = 0usize;
                    while c + p::W <= len {
                        let t = p::mul(p::sub(p::load(x.as_ptr().add(c)), vmu), vistd);
                        let v = p::add(
                            p::mul(p::load(gain.as_ptr().add(c)), t),
                            p::load(bias.as_ptr().add(c)),
                        );
                        p::store(op.add(c), v);
                        c += p::W;
                    }
                    while c < len {
                        *op.add(c) = gain[c] * ((x[c] - mu) * istd) + bias[c];
                        c += 1;
                    }
                }

                /// `dst[i] = (x[i] + h[i]) + b[i]` across lanes — the LSTM/GRU
                /// pre-activation build, same two-add sequence as the scalar
                /// zip.
                ///
                /// # Safety
                /// Requires the target feature; all slices share one length.
                #[target_feature(enable = $feat)]
                pub(crate) unsafe fn add3(dst: &mut [f32], x: &[f32], h: &[f32], b: &[f32]) {
                    debug_assert_eq!(dst.len(), x.len());
                    debug_assert_eq!(dst.len(), h.len());
                    debug_assert_eq!(dst.len(), b.len());
                    let dp = dst.as_mut_ptr();
                    let len = dst.len();
                    let mut c = 0usize;
                    while c + p::W <= len {
                        let v = p::add(
                            p::add(p::load(x.as_ptr().add(c)), p::load(h.as_ptr().add(c))),
                            p::load(b.as_ptr().add(c)),
                        );
                        p::store(dp.add(c), v);
                        c += p::W;
                    }
                    while c < len {
                        *dp.add(c) = (x[c] + h[c]) + b[c];
                        c += 1;
                    }
                }

                /// `best[i] = if row[i] > best[i] { row[i] } else { best[i] }`
                /// across lanes — one fold step of max-over-rows with the
                /// exact scalar `>` predicate.
                ///
                /// # Safety
                /// Requires the target feature; `best.len() == row.len()`.
                #[target_feature(enable = $feat)]
                pub(crate) unsafe fn colmax_in_place(best: &mut [f32], row: &[f32]) {
                    debug_assert_eq!(best.len(), row.len());
                    let bp = best.as_mut_ptr();
                    let len = best.len();
                    let mut c = 0usize;
                    while c + p::W <= len {
                        p::store(
                            bp.add(c),
                            p::pick_gt(p::load(row.as_ptr().add(c)), p::load(bp.add(c))),
                        );
                        c += p::W;
                    }
                    while c < len {
                        let v = row[c];
                        if v > *bp.add(c) {
                            *bp.add(c) = v;
                        }
                        c += 1;
                    }
                }
            }
        };
    }

    lane_kernels!(sse2, p128, "sse2");
    lane_kernels!(avx2, p256, "avx2");
}

macro_rules! dispatch {
    ($lvl:expr, $($call:tt)*) => {
        #[cfg(target_arch = "x86_64")]
        match $lvl {
            SimdLevel::Off => {}
            // Safety: `SimdLevel::Sse2`/`Avx2` values only come from
            // `configured()`/`with_level()`, both of which verify CPU
            // support, so the target features are present.
            SimdLevel::Sse2 => return unsafe { lanes::sse2::$($call)* },
            SimdLevel::Avx2 => return unsafe { lanes::avx2::$($call)* },
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = $lvl;
    };
}

/// As [`dispatch!`], for the matmul dispatchers that report whether a
/// vector path handled the call.
macro_rules! dispatch_handled {
    ($lvl:expr, $($call:tt)*) => {
        #[cfg(target_arch = "x86_64")]
        match $lvl {
            SimdLevel::Off => {}
            // Safety: as `dispatch!` — non-`Off` levels imply CPU support.
            SimdLevel::Sse2 => {
                unsafe { lanes::sse2::$($call)* };
                return true;
            }
            SimdLevel::Avx2 => {
                unsafe { lanes::avx2::$($call)* };
                return true;
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = $lvl;
    };
}

/// Runs the vector NN kernel for `lvl`, returning `false` on [`SimdLevel::Off`]
/// (and always off x86-64) so the caller falls back to the scalar oracle.
#[allow(clippy::too_many_arguments)]
pub(crate) fn nn_rows(
    lvl: SimdLevel,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    r0: usize,
    r1: usize,
    k: usize,
    n: usize,
) -> bool {
    dispatch_handled!(lvl, nn_rows(a, b, out, r0, r1, k, n));
    let _ = (a, b, out, r0, r1, k, n);
    false
}

/// Vector TN kernel dispatch; see [`nn_rows`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn tn_rows(
    lvl: SimdLevel,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    r0: usize,
    r1: usize,
    k: usize,
    n: usize,
    m: usize,
) -> bool {
    dispatch_handled!(lvl, tn_rows(a, b, out, r0, r1, k, n, m));
    let _ = (a, b, out, r0, r1, k, n, m);
    false
}

/// Vector NT kernel dispatch over the packed `bt` panel; see [`nn_rows`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn nt_rows(
    lvl: SimdLevel,
    a: &[f32],
    b: &[f32],
    bt: &[f32],
    out: &mut [f32],
    r0: usize,
    r1: usize,
    k: usize,
    n: usize,
) -> bool {
    dispatch_handled!(lvl, nt_rows(a, b, bt, out, r0, r1, k, n));
    let _ = (a, b, bt, out, r0, r1, k, n);
    false
}

/// `out[i] += src[i]`, lane-parallel when `lvl` allows.
pub(crate) fn add_in_place(lvl: SimdLevel, out: &mut [f32], src: &[f32]) {
    assert_eq!(out.len(), src.len());
    dispatch!(lvl, add_in_place(out, src));
    for (o, &s) in out.iter_mut().zip(src.iter()) {
        *o += s;
    }
}

/// `out[i] += s * src[i]`, lane-parallel when `lvl` allows.
pub(crate) fn axpy_in_place(lvl: SimdLevel, out: &mut [f32], src: &[f32], s: f32) {
    assert_eq!(out.len(), src.len());
    dispatch!(lvl, axpy_in_place(out, src, s));
    for (o, &v) in out.iter_mut().zip(src.iter()) {
        *o += s * v;
    }
}

/// `out[i] *= s`, lane-parallel when `lvl` allows.
pub(crate) fn scale_in_place(lvl: SimdLevel, out: &mut [f32], s: f32) {
    dispatch!(lvl, scale_in_place(out, s));
    for o in out.iter_mut() {
        *o *= s;
    }
}

/// `out[i] = out[i].max(0.0)`, lane-parallel when `lvl` allows.
pub(crate) fn relu_in_place(lvl: SimdLevel, out: &mut [f32]) {
    dispatch!(lvl, relu_in_place(out));
    for o in out.iter_mut() {
        *o = o.max(0.0);
    }
}

/// Layer-norm normalize step, lane-parallel when `lvl` allows.
pub(crate) fn norm_scale_shift(
    lvl: SimdLevel,
    out: &mut [f32],
    x: &[f32],
    gain: &[f32],
    bias: &[f32],
    mu: f32,
    istd: f32,
) {
    assert_eq!(out.len(), x.len());
    assert_eq!(out.len(), gain.len());
    assert_eq!(out.len(), bias.len());
    dispatch!(lvl, norm_scale_shift(out, x, gain, bias, mu, istd));
    for c in 0..out.len() {
        out[c] = gain[c] * ((x[c] - mu) * istd) + bias[c];
    }
}

/// `dst[i] = (x[i] + h[i]) + b[i]`, lane-parallel when `lvl` allows.
pub(crate) fn add3(lvl: SimdLevel, dst: &mut [f32], x: &[f32], h: &[f32], b: &[f32]) {
    assert_eq!(dst.len(), x.len());
    assert_eq!(dst.len(), h.len());
    assert_eq!(dst.len(), b.len());
    dispatch!(lvl, add3(dst, x, h, b));
    for c in 0..dst.len() {
        dst[c] = (x[c] + h[c]) + b[c];
    }
}

/// One max-over-rows fold step, lane-parallel when `lvl` allows.
pub(crate) fn colmax_in_place(lvl: SimdLevel, best: &mut [f32], row: &[f32]) {
    assert_eq!(best.len(), row.len());
    dispatch!(lvl, colmax_in_place(best, row));
    for (b, &v) in best.iter_mut().zip(row.iter()) {
        if v > *b {
            *b = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn levels() -> Vec<SimdLevel> {
        let mut out = vec![SimdLevel::Off];
        if is_supported(SimdLevel::Sse2) {
            out.push(SimdLevel::Sse2);
        }
        if is_supported(SimdLevel::Avx2) {
            out.push(SimdLevel::Avx2);
        }
        out
    }

    fn ramp(len: usize, scale: f32) -> Vec<f32> {
        (0..len).map(|i| ((i % 13) as f32 - 6.0) * scale).collect()
    }

    #[test]
    fn with_level_overrides_and_restores() {
        let before = active();
        with_level(SimdLevel::Off, || {
            assert_eq!(active(), SimdLevel::Off);
        });
        assert_eq!(active(), before);
    }

    #[test]
    fn relu_lane_kernel_matches_scalar_bits_on_edge_values() {
        // The scalar oracle is `v.max(0.0)`; the vector kernels must
        // reproduce its exact bits for -0.0 ties, NaN and -inf, which pins
        // the MAXPS operand order (value first, zero second).
        let edge = [-0.0f32, 0.0, -1.5, 3.25, f32::NAN, f32::NEG_INFINITY, -f32::MIN_POSITIVE];
        for lvl in levels() {
            for width in 0..=9 {
                let input: Vec<f32> = edge.iter().cycle().take(width + 8).copied().collect();
                let mut want = input.clone();
                for v in want.iter_mut() {
                    *v = v.max(0.0);
                }
                let mut got = input.clone();
                relu_in_place(lvl, &mut got);
                let wb: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
                let gb: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
                assert_eq!(gb, wb, "level {} width {}", lvl.name(), width);
            }
        }
    }

    #[test]
    fn elementwise_lane_kernels_match_scalar_bits_at_remainder_widths() {
        for lvl in levels() {
            for len in [0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33] {
                let x = ramp(len, 0.3);
                let h = ramp(len, 0.7);
                let b = ramp(len, 0.11);

                let mut want = x.clone();
                for (o, &s) in want.iter_mut().zip(h.iter()) {
                    *o += s;
                }
                let mut got = x.clone();
                add_in_place(lvl, &mut got, &h);
                assert_eq!(got, want, "add len {len}");

                let mut want = x.clone();
                for (o, &s) in want.iter_mut().zip(h.iter()) {
                    *o += 0.37 * s;
                }
                let mut got = x.clone();
                axpy_in_place(lvl, &mut got, &h, 0.37);
                assert_eq!(got, want, "axpy len {len}");

                let mut want = x.clone();
                for o in want.iter_mut() {
                    *o *= 1.73;
                }
                let mut got = x.clone();
                scale_in_place(lvl, &mut got, 1.73);
                assert_eq!(got, want, "scale len {len}");

                let mut want = vec![0.0; len];
                for c in 0..len {
                    want[c] = h[c] * ((x[c] - 0.21) * 3.5) + b[c];
                }
                let mut got = vec![0.0; len];
                norm_scale_shift(lvl, &mut got, &x, &h, &b, 0.21, 3.5);
                assert_eq!(got, want, "norm len {len}");

                let mut want = vec![0.0; len];
                for c in 0..len {
                    want[c] = (x[c] + h[c]) + b[c];
                }
                let mut got = vec![0.0; len];
                add3(lvl, &mut got, &x, &h, &b);
                assert_eq!(got, want, "add3 len {len}");

                let mut want = x.clone();
                for (o, &v) in want.iter_mut().zip(h.iter()) {
                    if v > *o {
                        *o = v;
                    }
                }
                let mut got = x.clone();
                colmax_in_place(lvl, &mut got, &h);
                assert_eq!(got, want, "colmax len {len}");
            }
        }
    }

    #[test]
    fn descriptor_names_the_configured_level() {
        let d = descriptor();
        assert!(d.contains(configured().name()), "{d}");
    }
}
