//! Property tests for the threading/pooling contract: the blocked kernels,
//! at every thread count, must match a straightforward serial oracle — and
//! since blocking preserves each output element's accumulation order, they
//! must in fact match **bit for bit**. Pooled allocations must behave like
//! fresh zeroed memory.

use ner_tensor::simd::{self, SimdLevel};
use ner_tensor::{kernels, pool, Tensor, PAR_MIN_FLOPS};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes tests that touch the global thread pool: `set_global_threads`
/// swaps a process-wide pool, so these tests must not interleave.
static THREADS_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    ner_par::set_global_threads(threads);
    let out = f();
    ner_par::set_global_threads(1);
    out
}

/// The pre-blocking matmul (i → p-with-zero-skip → j), the numerical oracle.
fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Tensor::zeros(m, n);
    for i in 0..m {
        for p in 0..k {
            let av = a.at2(i, p);
            if av == 0.0 {
                continue;
            }
            for j in 0..n {
                let v = out.at2(i, j) + av * b.at2(p, j);
                out.set2(i, j, v);
            }
        }
    }
    out
}

/// Oracle for `aᵀ·b` with `a` of shape `(k, m)`: p-outer with zero-skip,
/// matching the original `matmul_tn` loop nest.
fn naive_matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = a.shape();
    let n = b.cols();
    let mut out = Tensor::zeros(m, n);
    for p in 0..k {
        for i in 0..m {
            let av = a.at2(p, i);
            if av == 0.0 {
                continue;
            }
            for j in 0..n {
                let v = out.at2(i, j) + av * b.at2(p, j);
                out.set2(i, j, v);
            }
        }
    }
    out
}

/// Oracle for `a·bᵀ` with `b` of shape `(n, k)`: a dot product per output
/// element, matching the original `matmul_nt`.
fn naive_matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let n = b.rows();
    let mut out = Tensor::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a.at2(i, p) * b.at2(j, p);
            }
            out.set2(i, j, acc);
        }
    }
    out
}

/// Exact (bit-level) equality with a readable failure message.
fn assert_bit_identical(got: &Tensor, want: &Tensor, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what} shape");
    let diff =
        got.data().iter().zip(want.data()).map(|(x, y)| (x - y).abs()).fold(0.0f32, f32::max);
    assert!(got.data() == want.data(), "{what} diverged from the serial oracle: max|Δ| = {diff:e}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `matmul` at 1/2/4 threads is bit-identical to the naive oracle for
    /// shapes spanning the serial/parallel threshold.
    #[test]
    fn matmul_matches_oracle_at_any_thread_count(
        m in 1usize..72, k in 1usize..72, n in 1usize..72,
        seed in prop::collection::vec(-2.0f32..2.0, 128)
    ) {
        let a = Tensor::from_vec(m, k, seed.iter().cycle().take(m * k).copied().collect());
        let b = Tensor::from_vec(k, n, seed.iter().rev().cycle().take(k * n).copied().collect());
        let want = naive_matmul(&a, &b);
        for threads in [1usize, 2, 4] {
            let got = with_threads(threads, || a.matmul(&b));
            assert_bit_identical(&got, &want, &format!("matmul@{threads}"));
        }
    }

    /// Same contract for the transposed variants.
    #[test]
    fn transposed_variants_match_oracles_at_any_thread_count(
        m in 1usize..40, k in 1usize..40, n in 1usize..40,
        seed in prop::collection::vec(-2.0f32..2.0, 96)
    ) {
        let at = Tensor::from_vec(k, m, seed.iter().cycle().take(k * m).copied().collect());
        let a = Tensor::from_vec(m, k, seed.iter().cycle().take(m * k).copied().collect());
        let b = Tensor::from_vec(k, n, seed.iter().rev().cycle().take(k * n).copied().collect());
        let bt = Tensor::from_vec(n, k, seed.iter().cycle().take(n * k).copied().collect());
        let want_tn = naive_matmul_tn(&at, &b);
        let want_nt = naive_matmul_nt(&a, &bt);
        for threads in [1usize, 2, 4] {
            let got_tn = with_threads(threads, || at.matmul_tn(&b));
            assert_bit_identical(&got_tn, &want_tn, &format!("matmul_tn@{threads}"));
            let got_nt = with_threads(threads, || a.matmul_nt(&bt));
            assert_bit_identical(&got_nt, &want_nt, &format!("matmul_nt@{threads}"));
        }
    }

    /// `transposed` round-trips and matches the definition at any thread
    /// count and ragged shape.
    #[test]
    fn transpose_matches_definition_at_any_thread_count(
        rows in 1usize..70, cols in 1usize..70,
        seed in prop::collection::vec(-2.0f32..2.0, 64)
    ) {
        let t = Tensor::from_vec(rows, cols, seed.iter().cycle().take(rows * cols).copied().collect());
        for threads in [1usize, 2, 4] {
            let tt = with_threads(threads, || t.transposed());
            prop_assert_eq!(tt.shape(), (cols, rows));
            for r in 0..rows.min(8) {
                for c in 0..cols.min(8) {
                    prop_assert_eq!(t.at2(r, c), tt.at2(c, r));
                }
            }
            let back = with_threads(threads, || tt.transposed());
            prop_assert!(back.data() == t.data(), "transpose must round-trip exactly");
        }
    }

    /// Pooled buffers behave like fresh zeroed memory: repeating an op after
    /// its intermediates were recycled yields bit-identical results.
    #[test]
    fn pooled_reruns_are_bit_identical(
        m in 4usize..32, k in 4usize..32, n in 4usize..32,
        seed in prop::collection::vec(-2.0f32..2.0, 64)
    ) {
        let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let a = Tensor::from_vec(m, k, seed.iter().cycle().take(m * k).copied().collect());
        let b = Tensor::from_vec(k, n, seed.iter().rev().cycle().take(k * n).copied().collect());
        let first = a.matmul(&b);
        // Poison the pool with the result's own (dirty) buffer, then rerun:
        // the recycled allocation must come back zeroed.
        pool::recycle(first.clone().into_data());
        let second = a.matmul(&b);
        prop_assert!(first.data() == second.data(), "pooled rerun diverged");
    }
}

/// The vector levels this CPU can actually run (empty on a pre-SSE2 host,
/// which cannot exist on x86-64; possibly empty elsewhere).
fn vector_levels() -> Vec<SimdLevel> {
    [SimdLevel::Sse2, SimdLevel::Avx2].into_iter().filter(|&l| simd::is_supported(l)).collect()
}

/// Deterministic fill with exact zeros sprinkled in (`i*7+salt ≡ 5 mod 11`),
/// so the kernels' zero-skip paths run.
fn fill(len: usize, salt: usize, scale: f32) -> Vec<f32> {
    (0..len).map(|i| (((i * 7 + salt) % 11) as f32 - 5.0) * scale).collect()
}

/// Forced-SIMD vs forced-scalar bit-identity at every lane-remainder width
/// around the 4- and 8-lane boundaries, for all three matmul variants at
/// 1/2/4 threads.
#[test]
fn simd_levels_match_forced_scalar_at_lane_remainder_widths() {
    let widths: Vec<usize> = (1usize..=9).chain([15, 17]).collect();
    for &n in &widths {
        for (m, k) in [(1usize, 3usize), (4, 16), (7, 33)] {
            let a = Tensor::from_vec(m, k, fill(m * k, 1, 0.37));
            let at = Tensor::from_vec(k, m, fill(k * m, 2, 0.29));
            let b = Tensor::from_vec(k, n, fill(k * n, 3, 0.23));
            let bt = Tensor::from_vec(n, k, fill(n * k, 4, 0.31));
            for threads in [1usize, 2, 4] {
                let (want_nn, want_tn, want_nt) = with_threads(threads, || {
                    simd::with_level(SimdLevel::Off, || {
                        (a.matmul(&b), at.matmul_tn(&b), a.matmul_nt(&bt))
                    })
                });
                for lvl in vector_levels() {
                    let (nn, tn, nt) = with_threads(threads, || {
                        simd::with_level(lvl, || (a.matmul(&b), at.matmul_tn(&b), a.matmul_nt(&bt)))
                    });
                    let ctx = format!("{m}x{k}x{n} {}@{threads}thr", lvl.name());
                    assert_bit_identical(&nn, &want_nn, &format!("matmul {ctx}"));
                    assert_bit_identical(&tn, &want_tn, &format!("matmul_tn {ctx}"));
                    assert_bit_identical(&nt, &want_nt, &format!("matmul_nt {ctx}"));
                }
            }
        }
    }
}

/// Buffer base alignment must never change the bits: the same values run
/// through the public slice kernels from a 64-byte-aligned pool panel and
/// from starts offset by 1..4 floats (so no vector width sees its natural
/// alignment), at every supported SIMD level.
#[test]
fn buffer_alignment_never_changes_the_bits() {
    let (m, k, n) = (7usize, 19usize, 17usize);
    let vals_a = fill(m * k, 5, 0.41); // also reads as (k, m) for tn
    let vals_b = fill(k * n, 6, 0.27);
    let vals_bt = fill(n * k, 8, 0.33);
    let run = |a: &[f32], b: &[f32], bt: &[f32]| {
        let mut nn = vec![0.0f32; m * n];
        kernels::matmul(a, b, &mut nn, m, k, n);
        let mut tn = vec![0.0f32; m * n];
        kernels::matmul_tn(a, b, &mut tn, k, m, n);
        let mut nt = vec![0.0f32; m * n];
        kernels::matmul_nt(a, bt, &mut nt, m, k, n);
        (nn, tn, nt)
    };
    let mut levels = vec![SimdLevel::Off];
    levels.extend(vector_levels());
    for lvl in levels {
        with_threads(1, || {
            simd::with_level(lvl, || {
                let want = run(&vals_a, &vals_b, &vals_bt);

                // 64-byte-aligned starts straight from the panel pool.
                let mut pa = pool::take_aligned(m * k);
                pa.as_mut_slice().copy_from_slice(&vals_a);
                let mut pb = pool::take_aligned(k * n);
                pb.as_mut_slice().copy_from_slice(&vals_b);
                let mut pbt = pool::take_aligned(n * k);
                pbt.as_mut_slice().copy_from_slice(&vals_bt);
                let got = run(pa.as_slice(), pb.as_slice(), pbt.as_slice());
                assert!(got == want, "aligned pool buffers diverged at {}", lvl.name());
                pool::recycle_aligned(pa);
                pool::recycle_aligned(pb);
                pool::recycle_aligned(pbt);

                // Misaligned starts: shift every operand by `off` floats.
                for off in 1usize..4 {
                    let shift = |v: &[f32]| {
                        let mut s = vec![0.0f32; off + v.len()];
                        s[off..].copy_from_slice(v);
                        s
                    };
                    let (sa, sb, sbt) = (shift(&vals_a), shift(&vals_b), shift(&vals_bt));
                    let got = run(&sa[off..], &sb[off..], &sbt[off..]);
                    assert!(got == want, "offset-{off} buffers diverged at {}", lvl.name());
                }
            })
        });
    }
}

/// The exact serial/parallel threshold: shapes straddling `PAR_MIN_FLOPS`
/// agree with the oracle on both sides of the gate.
#[test]
fn threshold_boundary_shapes_are_bit_identical() {
    // 64·64·64 == PAR_MIN_FLOPS; its neighbours sit just under/over.
    assert_eq!(64 * 64 * 64, PAR_MIN_FLOPS);
    for (m, k, n) in [(64, 64, 63), (64, 64, 64), (64, 64, 65), (63, 65, 64)] {
        let a = Tensor::from_vec(m, k, (0..m * k).map(|i| ((i % 13) as f32) - 6.0).collect());
        let b = Tensor::from_vec(k, n, (0..k * n).map(|i| ((i % 7) as f32) - 3.0).collect());
        let want = naive_matmul(&a, &b);
        for threads in [1usize, 2, 4] {
            let got = with_threads(threads, || a.matmul(&b));
            assert!(
                got.data() == want.data(),
                "matmul {m}x{k}x{n} at {threads} threads diverged at the threshold"
            );
        }
    }
}
