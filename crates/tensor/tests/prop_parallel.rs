//! Property tests for the threading/pooling contract: the blocked kernels,
//! at every thread count, must match a straightforward serial oracle — and
//! since blocking preserves each output element's accumulation order, they
//! must in fact match **bit for bit**. Pooled allocations must behave like
//! fresh zeroed memory.

use ner_tensor::{pool, Tensor, PAR_MIN_FLOPS};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes tests that touch the global thread pool: `set_global_threads`
/// swaps a process-wide pool, so these tests must not interleave.
static THREADS_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    ner_par::set_global_threads(threads);
    let out = f();
    ner_par::set_global_threads(1);
    out
}

/// The pre-blocking matmul (i → p-with-zero-skip → j), the numerical oracle.
fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Tensor::zeros(m, n);
    for i in 0..m {
        for p in 0..k {
            let av = a.at2(i, p);
            if av == 0.0 {
                continue;
            }
            for j in 0..n {
                let v = out.at2(i, j) + av * b.at2(p, j);
                out.set2(i, j, v);
            }
        }
    }
    out
}

/// Oracle for `aᵀ·b` with `a` of shape `(k, m)`: p-outer with zero-skip,
/// matching the original `matmul_tn` loop nest.
fn naive_matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = a.shape();
    let n = b.cols();
    let mut out = Tensor::zeros(m, n);
    for p in 0..k {
        for i in 0..m {
            let av = a.at2(p, i);
            if av == 0.0 {
                continue;
            }
            for j in 0..n {
                let v = out.at2(i, j) + av * b.at2(p, j);
                out.set2(i, j, v);
            }
        }
    }
    out
}

/// Oracle for `a·bᵀ` with `b` of shape `(n, k)`: a dot product per output
/// element, matching the original `matmul_nt`.
fn naive_matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let n = b.rows();
    let mut out = Tensor::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a.at2(i, p) * b.at2(j, p);
            }
            out.set2(i, j, acc);
        }
    }
    out
}

/// Exact (bit-level) equality with a readable failure message.
fn assert_bit_identical(got: &Tensor, want: &Tensor, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what} shape");
    let diff =
        got.data().iter().zip(want.data()).map(|(x, y)| (x - y).abs()).fold(0.0f32, f32::max);
    assert!(got.data() == want.data(), "{what} diverged from the serial oracle: max|Δ| = {diff:e}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `matmul` at 1/2/4 threads is bit-identical to the naive oracle for
    /// shapes spanning the serial/parallel threshold.
    #[test]
    fn matmul_matches_oracle_at_any_thread_count(
        m in 1usize..72, k in 1usize..72, n in 1usize..72,
        seed in prop::collection::vec(-2.0f32..2.0, 128)
    ) {
        let a = Tensor::from_vec(m, k, seed.iter().cycle().take(m * k).copied().collect());
        let b = Tensor::from_vec(k, n, seed.iter().rev().cycle().take(k * n).copied().collect());
        let want = naive_matmul(&a, &b);
        for threads in [1usize, 2, 4] {
            let got = with_threads(threads, || a.matmul(&b));
            assert_bit_identical(&got, &want, &format!("matmul@{threads}"));
        }
    }

    /// Same contract for the transposed variants.
    #[test]
    fn transposed_variants_match_oracles_at_any_thread_count(
        m in 1usize..40, k in 1usize..40, n in 1usize..40,
        seed in prop::collection::vec(-2.0f32..2.0, 96)
    ) {
        let at = Tensor::from_vec(k, m, seed.iter().cycle().take(k * m).copied().collect());
        let a = Tensor::from_vec(m, k, seed.iter().cycle().take(m * k).copied().collect());
        let b = Tensor::from_vec(k, n, seed.iter().rev().cycle().take(k * n).copied().collect());
        let bt = Tensor::from_vec(n, k, seed.iter().cycle().take(n * k).copied().collect());
        let want_tn = naive_matmul_tn(&at, &b);
        let want_nt = naive_matmul_nt(&a, &bt);
        for threads in [1usize, 2, 4] {
            let got_tn = with_threads(threads, || at.matmul_tn(&b));
            assert_bit_identical(&got_tn, &want_tn, &format!("matmul_tn@{threads}"));
            let got_nt = with_threads(threads, || a.matmul_nt(&bt));
            assert_bit_identical(&got_nt, &want_nt, &format!("matmul_nt@{threads}"));
        }
    }

    /// `transposed` round-trips and matches the definition at any thread
    /// count and ragged shape.
    #[test]
    fn transpose_matches_definition_at_any_thread_count(
        rows in 1usize..70, cols in 1usize..70,
        seed in prop::collection::vec(-2.0f32..2.0, 64)
    ) {
        let t = Tensor::from_vec(rows, cols, seed.iter().cycle().take(rows * cols).copied().collect());
        for threads in [1usize, 2, 4] {
            let tt = with_threads(threads, || t.transposed());
            prop_assert_eq!(tt.shape(), (cols, rows));
            for r in 0..rows.min(8) {
                for c in 0..cols.min(8) {
                    prop_assert_eq!(t.at2(r, c), tt.at2(c, r));
                }
            }
            let back = with_threads(threads, || tt.transposed());
            prop_assert!(back.data() == t.data(), "transpose must round-trip exactly");
        }
    }

    /// Pooled buffers behave like fresh zeroed memory: repeating an op after
    /// its intermediates were recycled yields bit-identical results.
    #[test]
    fn pooled_reruns_are_bit_identical(
        m in 4usize..32, k in 4usize..32, n in 4usize..32,
        seed in prop::collection::vec(-2.0f32..2.0, 64)
    ) {
        let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let a = Tensor::from_vec(m, k, seed.iter().cycle().take(m * k).copied().collect());
        let b = Tensor::from_vec(k, n, seed.iter().rev().cycle().take(k * n).copied().collect());
        let first = a.matmul(&b);
        // Poison the pool with the result's own (dirty) buffer, then rerun:
        // the recycled allocation must come back zeroed.
        pool::recycle(first.clone().into_data());
        let second = a.matmul(&b);
        prop_assert!(first.data() == second.data(), "pooled rerun diverged");
    }
}

/// The exact serial/parallel threshold: shapes straddling `PAR_MIN_FLOPS`
/// agree with the oracle on both sides of the gate.
#[test]
fn threshold_boundary_shapes_are_bit_identical() {
    // 64·64·64 == PAR_MIN_FLOPS; its neighbours sit just under/over.
    assert_eq!(64 * 64 * 64, PAR_MIN_FLOPS);
    for (m, k, n) in [(64, 64, 63), (64, 64, 64), (64, 64, 65), (63, 65, 64)] {
        let a = Tensor::from_vec(m, k, (0..m * k).map(|i| ((i % 13) as f32) - 6.0).collect());
        let b = Tensor::from_vec(k, n, (0..k * n).map(|i| ((i % 7) as f32) - 3.0).collect());
        let want = naive_matmul(&a, &b);
        for threads in [1usize, 2, 4] {
            let got = with_threads(threads, || a.matmul(&b));
            assert!(
                got.data() == want.data(),
                "matmul {m}x{k}x{n} at {threads} threads diverged at the threshold"
            );
        }
    }
}
