//! Property-based tests of the autograd op set: every differentiable op is
//! gradchecked on randomized shapes and values, and algebraic invariants
//! (softmax normalization, concat/slice inversion, matmul identities) are
//! verified against the straightforward definitions.

use ner_tensor::ops::gradcheck::max_grad_error;
use ner_tensor::{Tape, Tensor};
use proptest::prelude::*;

fn arb_tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn elementwise_chain_gradcheck(
        (r, c) in (1usize..5, 1usize..5),
        seed_data in prop::collection::vec(-1.5f32..1.5, 16)
    ) {
        let data: Vec<f32> = seed_data.iter().cycle().take(r * c).copied().collect();
        let x = Tensor::from_vec(r, c, data);
        let err = max_grad_error(x, |t, v| {
            let a = t.tanh(v);
            let b = t.sigmoid(a);
            let d = t.mul(b, v);
            let e = t.relu(d);
            let f = t.add_scalar(e, 0.3);
            t.sum(f)
        });
        prop_assert!(err < 2e-2, "gradcheck error {err}");
    }

    #[test]
    fn matmul_gradcheck_random_shapes(
        m in 1usize..4, k in 1usize..4, n in 1usize..4,
        seed in prop::collection::vec(-1.0f32..1.0, 64)
    ) {
        let a = Tensor::from_vec(m, k, seed.iter().cycle().take(m * k).copied().collect());
        let b = Tensor::from_vec(k, n, seed.iter().rev().cycle().take(k * n).copied().collect());
        let err = max_grad_error(a, move |t, v| {
            let bv = t.constant(b.clone());
            let p = t.matmul(v, bv);
            let sq = t.mul(p, p);
            t.sum(sq)
        });
        prop_assert!(err < 2e-2, "matmul gradcheck error {err}");
    }

    #[test]
    fn softmax_rows_sum_to_one_for_any_input(t in arb_tensor(3, 6)) {
        let mut tape = Tape::new();
        let v = tape.constant(t);
        let s = tape.softmax_rows(v);
        for r in 0..3 {
            let sum: f32 = tape.value(s).row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn logsumexp_upper_bounds_max(t in arb_tensor(4, 5)) {
        let mut tape = Tape::new();
        let v = tape.constant(t.clone());
        let l = tape.logsumexp_rows(v);
        for r in 0..4 {
            let max = t.row(r).iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let lse = tape.value(l).at2(r, 0);
            prop_assert!(lse >= max - 1e-5);
            prop_assert!(lse <= max + (5f32).ln() + 1e-5);
        }
    }

    #[test]
    fn concat_then_slice_is_identity(a in arb_tensor(3, 2), b in arb_tensor(3, 4)) {
        let mut tape = Tape::new();
        let va = tape.constant(a.clone());
        let vb = tape.constant(b.clone());
        let cat = tape.concat_cols(&[va, vb]);
        let back_a = tape.slice_cols(cat, 0, 2);
        let back_b = tape.slice_cols(cat, 2, 4);
        prop_assert_eq!(tape.value(back_a), &a);
        prop_assert_eq!(tape.value(back_b), &b);

        let b_cols = vb_rows(&mut tape, &b);
        let cat_r = tape.concat_rows(&[va, b_cols]);
        let back = tape.slice_rows(cat_r, 0, 3);
        prop_assert_eq!(tape.value(back), &a);
    }

    #[test]
    fn transpose_involution(t in arb_tensor(3, 5)) {
        let mut tape = Tape::new();
        let v = tape.constant(t.clone());
        let tt = tape.transpose(v);
        let ttt = tape.transpose(tt);
        prop_assert_eq!(tape.value(ttt), &t);
    }

    #[test]
    fn conv1d_gradcheck_random(
        n in 1usize..5, din in 1usize..3, dout in 1usize..3, dil in 1usize..3,
        seed in prop::collection::vec(-1.0f32..1.0, 64)
    ) {
        let x = Tensor::from_vec(n, din, seed.iter().cycle().take(n * din).copied().collect());
        let w = Tensor::from_vec(
            3 * din,
            dout,
            seed.iter().rev().cycle().take(3 * din * dout).copied().collect(),
        );
        let bias = Tensor::from_vec(1, dout, seed.iter().take(dout).copied().collect());
        let err = max_grad_error(x, move |t, v| {
            let wv = t.constant(w.clone());
            let bv = t.constant(bias.clone());
            let c = t.conv1d(v, wv, bv, 3, dil);
            let sq = t.mul(c, c);
            t.sum(sq)
        });
        prop_assert!(err < 2e-2, "conv gradcheck error {err}");
    }

    #[test]
    fn cross_entropy_is_nonnegative_and_zero_only_at_certainty(t in arb_tensor(4, 3)) {
        let mut tape = Tape::new();
        let v = tape.constant(t);
        let targets = [0usize, 1, 2, 0];
        let l = tape.cross_entropy_sum(v, &targets);
        prop_assert!(tape.value(l).item() > 0.0);
    }
}

/// Helper: lease `b` resized to 3 rows is unnecessary — concat_rows just
/// needs matching column counts, so reuse column width 2 from a 3x4 by
/// slicing.
fn vb_rows(tape: &mut Tape, b: &Tensor) -> ner_tensor::Var {
    let v = tape.constant(b.clone());
    tape.slice_cols(v, 0, 2)
}
