//! Property tests for the fused inference kernels: `affine_act`
//! (matmul + bias + activation) and `softmax_rows_in_place` must match the
//! unfused tape op sequence **bit for bit**, at 1, 2 and 4 threads — the
//! determinism contract the tape-free `ForwardPlan` path is built on.

use ner_tensor::fused::{self, Activation};
use ner_tensor::simd::{self, SimdLevel};
use ner_tensor::{Tape, Tensor, PAR_MIN_FLOPS};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes tests that touch the global thread pool: `set_global_threads`
/// swaps a process-wide pool, so these tests must not interleave.
static THREADS_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    ner_par::set_global_threads(threads);
    let out = f();
    ner_par::set_global_threads(1);
    out
}

const ACTIVATIONS: [Activation; 4] =
    [Activation::None, Activation::Relu, Activation::Tanh, Activation::Sigmoid];

/// The unfused reference: the exact tape node sequence the training path
/// builds (`affine` = matmul → add_bias, then the activation op).
fn tape_affine_act(x: &Tensor, w: &Tensor, b: &Tensor, act: Activation) -> Tensor {
    let mut tape = Tape::new();
    let xv = tape.constant(x.clone());
    let wv = tape.constant(w.clone());
    let bv = tape.constant(b.clone());
    let lin = tape.affine(xv, wv, bv);
    let out = match act {
        Activation::None => lin,
        Activation::Relu => tape.relu(lin),
        Activation::Tanh => tape.tanh(lin),
        Activation::Sigmoid => tape.sigmoid(lin),
    };
    tape.value(out).clone()
}

fn tape_softmax(x: &Tensor) -> Tensor {
    let mut tape = Tape::new();
    let xv = tape.constant(x.clone());
    let s = tape.softmax_rows(xv);
    tape.value(s).clone()
}

fn tensor_from(rows: usize, cols: usize, data: &[f32]) -> Tensor {
    Tensor::from_vec(rows, cols, data[..rows * cols].to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fused_affine_act_is_bit_identical_at_all_thread_counts(
        m in 1usize..8,
        k in 1usize..8,
        n in 1usize..8,
        data in prop::collection::vec(-3.0f32..3.0, 8 * 8 * 3),
        act_idx in 0usize..4,
    ) {
        let x = tensor_from(m, k, &data);
        let w = tensor_from(k, n, &data[64..]);
        let b = tensor_from(1, n, &data[128..]);
        let act = ACTIVATIONS[act_idx];
        let expect = tape_affine_act(&x, &w, &b, act);
        for threads in [1, 2, 4] {
            let fused = with_threads(threads, || fused::affine_act(&x, &w, &b, act));
            prop_assert_eq!(fused.data(), expect.data(), "threads={}", threads);
        }
    }

    #[test]
    fn fused_softmax_is_bit_identical_to_tape_softmax(
        m in 1usize..8,
        n in 1usize..8,
        data in prop::collection::vec(-30.0f32..30.0, 64),
    ) {
        let x = tensor_from(m, n, &data);
        let expect = tape_softmax(&x);
        for threads in [1, 2, 4] {
            let out = with_threads(threads, || {
                let mut t = x.clone();
                fused::softmax_rows_in_place(&mut t);
                t
            });
            prop_assert_eq!(out.data(), expect.data(), "threads={}", threads);
        }
    }
}

/// Every fused kernel that runs across SIMD lanes, executed once per call
/// so one comparison covers them all.
fn all_fused(
    x: &Tensor,
    w: &Tensor,
    b: &Tensor,
    xs: &Tensor,
    gain: &Tensor,
    bias: &Tensor,
    cw: &Tensor,
) -> Vec<Tensor> {
    let mut outs = Vec::new();
    for act in ACTIVATIONS {
        outs.push(fused::affine_act(x, w, b, act));
    }
    let mut sm = xs.clone();
    fused::softmax_rows_in_place(&mut sm);
    outs.push(sm);
    outs.push(fused::layer_norm(xs, gain, bias));
    outs.push(fused::max_over_rows(xs));
    outs.push(fused::conv1d_act(xs, cw, b, 3, 1, Activation::Relu));
    outs
}

/// Forced-SIMD vs forced-scalar bit-identity for every fused kernel at the
/// lane-remainder widths around the 4- and 8-lane boundaries, 1/2/4
/// threads.
#[test]
fn fused_kernels_match_forced_scalar_at_lane_remainder_widths() {
    let vector_levels: Vec<SimdLevel> =
        [SimdLevel::Sse2, SimdLevel::Avx2].into_iter().filter(|&l| simd::is_supported(l)).collect();
    let fill = |rows: usize, cols: usize, salt: usize| {
        Tensor::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|i| (((i * 7 + salt) % 11) as f32 - 5.0) * 0.19).collect(),
        )
    };
    let widths: Vec<usize> = (1usize..=9).chain([15, 17]).collect();
    for &n in &widths {
        let x = fill(5, 7, 1);
        let w = fill(7, n, 2);
        let b = fill(1, n, 3);
        let xs = fill(6, n, 4);
        let gain = fill(1, n, 5);
        let bias = fill(1, n, 6);
        let cw = fill(3 * n, n, 7); // conv1d filter bank, k=3, d_in=d_out=n
        for threads in [1usize, 2, 4] {
            let want = with_threads(threads, || {
                simd::with_level(SimdLevel::Off, || all_fused(&x, &w, &b, &xs, &gain, &bias, &cw))
            });
            for &lvl in &vector_levels {
                let got = with_threads(threads, || {
                    simd::with_level(lvl, || all_fused(&x, &w, &b, &xs, &gain, &bias, &cw))
                });
                for (i, (g, e)) in got.iter().zip(&want).enumerate() {
                    assert!(
                        g.data() == e.data(),
                        "fused kernel #{i} diverged from scalar: width={n} {}@{threads}thr",
                        lvl.name()
                    );
                }
            }
        }
    }
}

/// Shapes straddling the kernel's parallel threshold: below it the matmul
/// runs serially, above it rows split across the pool — both must match
/// the tape bit for bit.
#[test]
fn fused_affine_act_crosses_the_parallel_threshold() {
    let (m, k) = (72, 64);
    let n = PAR_MIN_FLOPS / (m * k) + 8; // comfortably above the threshold
    let fill = |rows: usize, cols: usize, salt: usize| {
        Tensor::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|i| (((i * 7 + salt) % 23) as f32 - 11.0) * 0.13).collect(),
        )
    };
    let x = fill(m, k, 1);
    let w = fill(k, n, 2);
    let b = fill(1, n, 3);
    assert!(m * k * n >= PAR_MIN_FLOPS, "shape must trigger the parallel kernel");
    for act in ACTIVATIONS {
        let expect = tape_affine_act(&x, &w, &b, act);
        for threads in [1, 2, 4] {
            let fused = with_threads(threads, || fused::affine_act(&x, &w, &b, act));
            assert_eq!(fused.data(), expect.data(), "{act:?} at {threads} threads");
        }
    }
}
