use crate::{EntitySpan, TagScheme};
use serde::{Deserialize, Serialize};

/// A single token (word, number or punctuation mark).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    /// Surface form.
    pub text: String,
}

impl Token {
    /// Wraps a surface form.
    pub fn new(text: impl Into<String>) -> Self {
        Token { text: text.into() }
    }
}

/// A tokenized sentence with gold entity annotations stored as spans.
///
/// Spans are the canonical representation (they survive tag-scheme changes
/// and support nesting); per-token tags are derived on demand via
/// [`Sentence::tags`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize, Default)]
pub struct Sentence {
    /// The tokens, in order.
    pub tokens: Vec<Token>,
    /// Gold entity mentions. For flat NER these never overlap; nested
    /// corpora (GENIA-style) may contain contained spans.
    pub entities: Vec<EntitySpan>,
}

impl Sentence {
    /// Builds a sentence from token strings and spans.
    ///
    /// # Panics
    /// Panics if any span reaches past the end of the sentence.
    pub fn new<S: AsRef<str>>(tokens: &[S], entities: Vec<EntitySpan>) -> Self {
        let tokens: Vec<Token> = tokens.iter().map(|t| Token::new(t.as_ref())).collect();
        for e in &entities {
            assert!(e.end <= tokens.len(), "entity span out of sentence bounds");
        }
        Sentence { tokens, entities }
    }

    /// A sentence with no annotations (e.g. raw text for LM pretraining).
    pub fn unlabeled<S: AsRef<str>>(tokens: &[S]) -> Self {
        Sentence::new(tokens, vec![])
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True for the empty sentence.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Token surface forms as `&str`s.
    pub fn texts(&self) -> Vec<&str> {
        self.tokens.iter().map(|t| t.text.as_str()).collect()
    }

    /// Lowercased surface forms (for embedding lookup).
    pub fn lower_texts(&self) -> Vec<String> {
        self.tokens.iter().map(|t| t.text.to_lowercase()).collect()
    }

    /// Per-token tag strings under `scheme`, using only the *outermost*
    /// entities when spans nest (the flat-NER projection).
    pub fn tags(&self, scheme: TagScheme) -> Vec<String> {
        scheme.spans_to_tags(self.len(), &self.outermost_entities())
    }

    /// Entities that are not strictly contained in another entity.
    pub fn outermost_entities(&self) -> Vec<EntitySpan> {
        self.entities
            .iter()
            .filter(|e| !self.entities.iter().any(|o| o.strictly_contains(e)))
            .cloned()
            .collect()
    }

    /// Entities strictly contained inside some other entity (the "inner"
    /// layer of a nested corpus).
    pub fn nested_entities(&self) -> Vec<EntitySpan> {
        self.entities
            .iter()
            .filter(|e| self.entities.iter().any(|o| o.strictly_contains(e)))
            .cloned()
            .collect()
    }

    /// True if any entity nests inside another.
    pub fn has_nesting(&self) -> bool {
        !self.nested_entities().is_empty()
    }

    /// Renders the sentence with bracketed entities, e.g.
    /// `"[PER Michael Jordan] was born in [LOC Brooklyn]"`.
    /// Useful for examples and error analysis output.
    pub fn render_brackets(&self) -> String {
        let outer = self.outermost_entities();
        let mut parts: Vec<String> = Vec::new();
        let mut i = 0;
        while i < self.len() {
            if let Some(e) = outer.iter().find(|e| e.start == i) {
                let text: Vec<&str> =
                    self.tokens[e.start..e.end].iter().map(|t| t.text.as_str()).collect();
                parts.push(format!("[{} {}]", e.label, text.join(" ")));
                i = e.end;
            } else {
                parts.push(self.tokens[i].text.clone());
                i += 1;
            }
        }
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Sentence {
        // "Michael Jordan was born in Brooklyn ."
        Sentence::new(
            &["Michael", "Jordan", "was", "born", "in", "Brooklyn", "."],
            vec![EntitySpan::new(0, 2, "PER"), EntitySpan::new(5, 6, "LOC")],
        )
    }

    #[test]
    fn construction_and_tags() {
        let s = example();
        assert_eq!(s.len(), 7);
        let tags = s.tags(TagScheme::Bio);
        assert_eq!(tags, vec!["B-PER", "I-PER", "O", "O", "O", "B-LOC", "O"]);
    }

    #[test]
    #[should_panic(expected = "out of sentence bounds")]
    fn span_bounds_enforced() {
        let _ = Sentence::new(&["a"], vec![EntitySpan::new(0, 2, "PER")]);
    }

    #[test]
    fn nesting_partition() {
        let s = Sentence::new(
            &["University", "of", "Singapore"],
            vec![EntitySpan::new(0, 3, "ORG"), EntitySpan::new(2, 3, "LOC")],
        );
        assert!(s.has_nesting());
        assert_eq!(s.outermost_entities(), vec![EntitySpan::new(0, 3, "ORG")]);
        assert_eq!(s.nested_entities(), vec![EntitySpan::new(2, 3, "LOC")]);
        // Flat projection keeps only the outer entity.
        assert_eq!(s.tags(TagScheme::Bio), vec!["B-ORG", "I-ORG", "I-ORG"]);
    }

    #[test]
    fn bracket_rendering() {
        assert_eq!(
            example().render_brackets(),
            "[PER Michael Jordan] was born in [LOC Brooklyn] ."
        );
    }
}
