//! A lightweight rule-based part-of-speech tagger.
//!
//! Several hybrid NER systems in the survey (Collobert et al., Yao et al.,
//! Lin et al.) concatenate POS features with embeddings (§3.2.3). We provide
//! the substrate: a closed-class-lexicon plus suffix-heuristic tagger over a
//! coarse universal-style tag set. It is deliberately simple — the NER
//! experiments only require a *correlated* syntactic signal, not a perfect
//! parser.

use serde::{Deserialize, Serialize};

/// Coarse part-of-speech tags.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PosTag {
    /// Common noun.
    Noun,
    /// Proper noun (capitalized, non-initial heuristic).
    PropN,
    /// Verb (including auxiliaries).
    Verb,
    /// Adjective.
    Adj,
    /// Adverb.
    Adv,
    /// Pronoun.
    Pron,
    /// Determiner / article.
    Det,
    /// Adposition (preposition).
    Adp,
    /// Conjunction.
    Conj,
    /// Numeral.
    Num,
    /// Punctuation.
    Punct,
    /// Everything else.
    Other,
}

/// Number of distinct [`PosTag`] values (one-hot width).
pub const POS_DIM: usize = 12;

impl PosTag {
    /// Dense index for one-hot encoding.
    pub fn index(self) -> usize {
        match self {
            PosTag::Noun => 0,
            PosTag::PropN => 1,
            PosTag::Verb => 2,
            PosTag::Adj => 3,
            PosTag::Adv => 4,
            PosTag::Pron => 5,
            PosTag::Det => 6,
            PosTag::Adp => 7,
            PosTag::Conj => 8,
            PosTag::Num => 9,
            PosTag::Punct => 10,
            PosTag::Other => 11,
        }
    }

    /// One-hot feature vector.
    pub fn one_hot(self) -> [f32; POS_DIM] {
        let mut v = [0.0; POS_DIM];
        v[self.index()] = 1.0;
        v
    }
}

const DETERMINERS: &[&str] = &[
    "the", "a", "an", "this", "that", "these", "those", "its", "his", "her", "their", "our", "my",
    "your",
];
const PRONOUNS: &[&str] = &[
    "he", "she", "it", "they", "we", "i", "you", "him", "her", "them", "us", "me", "who", "which",
];
const ADPOSITIONS: &[&str] = &[
    "in", "on", "at", "of", "to", "from", "with", "by", "for", "near", "over", "under", "into",
    "about", "after", "before", "against",
];
const CONJUNCTIONS: &[&str] =
    &["and", "or", "but", "nor", "yet", "so", "while", "because", "although"];
const AUX_VERBS: &[&str] = &[
    "is", "are", "was", "were", "be", "been", "being", "has", "have", "had", "will", "would",
    "can", "could", "may", "might", "shall", "should", "must", "do", "does", "did", "said", "says",
    "say",
];
const COMMON_ADVERBS: &[&str] = &[
    "very",
    "quite",
    "also",
    "not",
    "never",
    "always",
    "often",
    "here",
    "there",
    "now",
    "then",
    "yesterday",
    "today",
    "tomorrow",
    "reportedly",
];

/// Tags one token given its sentence context.
pub fn tag_token(tokens: &[&str], position: usize) -> PosTag {
    let word = tokens[position];
    let lower = word.to_lowercase();
    let chars: Vec<char> = word.chars().collect();

    if chars.iter().all(|c| c.is_ascii_punctuation()) && !chars.is_empty() {
        return PosTag::Punct;
    }
    if chars.iter().all(|c| c.is_ascii_digit() || *c == '.' || *c == ',')
        && chars.iter().any(|c| c.is_ascii_digit())
    {
        return PosTag::Num;
    }
    if DETERMINERS.contains(&lower.as_str()) {
        return PosTag::Det;
    }
    if PRONOUNS.contains(&lower.as_str()) {
        return PosTag::Pron;
    }
    if ADPOSITIONS.contains(&lower.as_str()) {
        return PosTag::Adp;
    }
    if CONJUNCTIONS.contains(&lower.as_str()) {
        return PosTag::Conj;
    }
    if AUX_VERBS.contains(&lower.as_str()) {
        return PosTag::Verb;
    }
    if COMMON_ADVERBS.contains(&lower.as_str()) {
        return PosTag::Adv;
    }

    // Capitalized away from the sentence start → proper noun; at the start,
    // only if it doesn't carry a common suffix.
    let capitalized = chars.first().is_some_and(|c| c.is_uppercase());
    if capitalized && position > 0 {
        return PosTag::PropN;
    }

    if lower.ends_with("ly") {
        return PosTag::Adv;
    }
    if lower.ends_with("ing")
        || lower.ends_with("ed")
        || lower.ends_with("ise")
        || lower.ends_with("ize")
    {
        return PosTag::Verb;
    }
    if lower.ends_with("ous")
        || lower.ends_with("ful")
        || lower.ends_with("ive")
        || lower.ends_with("able")
        || lower.ends_with("al")
        || lower.ends_with("ic")
    {
        return PosTag::Adj;
    }
    // Simple present 3sg verb between a likely subject and object is hard
    // without a lexicon; default content words to Noun, matching the
    // majority class.
    if capitalized {
        return PosTag::PropN;
    }
    PosTag::Noun
}

/// Tags every token of a sentence.
pub fn tag_sentence(tokens: &[&str]) -> Vec<PosTag> {
    (0..tokens.len()).map(|i| tag_token(tokens, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_classes() {
        let toks = ["the", "cat", "sat", "on", "a", "mat", "."];
        let tags = tag_sentence(&toks);
        assert_eq!(tags[0], PosTag::Det);
        assert_eq!(tags[3], PosTag::Adp);
        assert_eq!(tags[6], PosTag::Punct);
    }

    #[test]
    fn proper_nouns_mid_sentence() {
        let toks = ["Yesterday", "Jordan", "visited", "Brooklyn"];
        let tags = tag_sentence(&toks);
        assert_eq!(tags[1], PosTag::PropN);
        assert_eq!(tags[3], PosTag::PropN);
        assert_eq!(tags[2], PosTag::Verb); // -ed suffix
    }

    #[test]
    fn morphology_heuristics() {
        assert_eq!(tag_token(&["running"], 0), PosTag::Verb);
        assert_eq!(tag_token(&["quickly"], 0), PosTag::Adv);
        assert_eq!(tag_token(&["beautiful"], 0), PosTag::Adj);
        assert_eq!(tag_token(&["3.5"], 0), PosTag::Num);
    }

    #[test]
    fn one_hot_is_valid() {
        for tag in [PosTag::Noun, PosTag::Punct, PosTag::Other] {
            let v = tag.one_hot();
            assert_eq!(v.iter().sum::<f32>(), 1.0);
            assert_eq!(v[tag.index()], 1.0);
        }
    }
}
