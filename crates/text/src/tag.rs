use crate::EntitySpan;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Tag notation for casting span annotation as per-token sequence labeling
/// (paper §3.1: B/I/E/S/O and BIO notations).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TagScheme {
    /// Inside/Outside only: `I-TYPE` or `O`. Adjacent same-type entities
    /// merge — lossy but minimal.
    Io,
    /// Begin/Inside/Outside: `B-TYPE`, `I-TYPE`, `O` (CoNLL-2003 style).
    Bio,
    /// Begin/Inside/End/Single/Outside (also known as BILOU/IOBES), the
    /// scheme in the paper's Fig. 2 example.
    Bioes,
}

impl TagScheme {
    /// The tag strings this scheme assigns to an entity of `label` spanning
    /// `len` tokens, in order.
    fn span_tags(&self, label: &str, len: usize) -> Vec<String> {
        match self {
            TagScheme::Io => (0..len).map(|_| format!("I-{label}")).collect(),
            TagScheme::Bio => (0..len)
                .map(|i| if i == 0 { format!("B-{label}") } else { format!("I-{label}") })
                .collect(),
            TagScheme::Bioes => {
                if len == 1 {
                    vec![format!("S-{label}")]
                } else {
                    (0..len)
                        .map(|i| {
                            if i == 0 {
                                format!("B-{label}")
                            } else if i == len - 1 {
                                format!("E-{label}")
                            } else {
                                format!("I-{label}")
                            }
                        })
                        .collect()
                }
            }
        }
    }

    /// Converts non-overlapping spans into a full tag sequence of length
    /// `n` (`"O"` outside all spans).
    ///
    /// # Panics
    /// Panics if spans overlap or run past `n` — nested input must be
    /// projected to outermost spans first (see
    /// [`crate::Sentence::outermost_entities`]).
    pub fn spans_to_tags(&self, n: usize, spans: &[EntitySpan]) -> Vec<String> {
        let mut tags = vec!["O".to_string(); n];
        let mut occupied = vec![false; n];
        for s in spans {
            assert!(s.end <= n, "span out of bounds");
            for (i, tag) in self.span_tags(&s.label, s.len()).into_iter().enumerate() {
                let pos = s.start + i;
                assert!(!occupied[pos], "overlapping spans passed to spans_to_tags");
                occupied[pos] = true;
                tags[pos] = tag;
            }
        }
        tags
    }

    /// Decodes a tag sequence back into spans.
    ///
    /// Lenient, in the style of the CoNLL evaluation script: an `I-X` that
    /// does not continue a compatible entity opens a new one, a label change
    /// closes the previous entity, and trailing entities are closed at the
    /// end. This tolerance matters because *predicted* sequences from
    /// greedy decoders are frequently ill-formed.
    pub fn tags_to_spans<S: AsRef<str>>(&self, tags: &[S]) -> Vec<EntitySpan> {
        let mut spans = Vec::new();
        let mut open: Option<(usize, String)> = None;
        for (i, tag) in tags.iter().enumerate() {
            let tag = tag.as_ref();
            let (prefix, label) = split_tag(tag);
            let continues =
                matches!(prefix, 'I' | 'E') && open.as_ref().is_some_and(|(_, l)| l == label);
            match prefix {
                'O' => {
                    if let Some((start, l)) = open.take() {
                        spans.push(EntitySpan::new(start, i, l));
                    }
                }
                'B' | 'S' => {
                    if let Some((start, l)) = open.take() {
                        spans.push(EntitySpan::new(start, i, l));
                    }
                    open = Some((i, label.to_string()));
                    if prefix == 'S' {
                        let (start, l) = open.take().unwrap();
                        spans.push(EntitySpan::new(start, i + 1, l));
                    }
                }
                'I' | 'E' => {
                    if !continues {
                        if let Some((start, l)) = open.take() {
                            spans.push(EntitySpan::new(start, i, l));
                        }
                        open = Some((i, label.to_string()));
                    }
                    if prefix == 'E' {
                        let (start, l) = open.take().unwrap();
                        spans.push(EntitySpan::new(start, i + 1, l));
                    }
                }
                _ => {
                    // Unknown prefix: treat as O.
                    if let Some((start, l)) = open.take() {
                        spans.push(EntitySpan::new(start, i, l));
                    }
                }
            }
        }
        if let Some((start, l)) = open.take() {
            spans.push(EntitySpan::new(start, tags.len(), l));
        }
        spans
    }

    /// True when the tag sequence is well-formed under this scheme (e.g. in
    /// BIOES, `B-X` must be followed by `I-X` or `E-X`).
    pub fn is_valid<S: AsRef<str>>(&self, tags: &[S]) -> bool {
        let round_trip = self.spans_to_tags(tags.len(), &self.tags_to_spans(tags));
        round_trip.iter().zip(tags).all(|(a, b)| a == b.as_ref())
    }

    /// Converts a tag sequence from this scheme to `target` (via spans).
    pub fn convert<S: AsRef<str>>(&self, tags: &[S], target: TagScheme) -> Vec<String> {
        target.spans_to_tags(tags.len(), &self.tags_to_spans(tags))
    }
}

/// Splits `"B-PER"` into `('B', "PER")`; bare `"O"` becomes `('O', "")`.
fn split_tag(tag: &str) -> (char, &str) {
    if tag == "O" || tag.is_empty() {
        return ('O', "");
    }
    match tag.split_once('-') {
        Some((p, label)) if p.len() == 1 => (p.chars().next().unwrap(), label),
        _ => ('?', tag),
    }
}

/// A closed set of tag strings with dense indices, as required by neural
/// tag decoders (each output neuron = one tag).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TagSet {
    scheme: TagScheme,
    tags: Vec<String>,
}

impl TagSet {
    /// Builds the tag set for `scheme` over the given entity types.
    /// `"O"` is always index 0; remaining tags are sorted for determinism.
    pub fn new<S: AsRef<str>>(scheme: TagScheme, entity_types: &[S]) -> Self {
        let mut tags: BTreeSet<String> = BTreeSet::new();
        for ty in entity_types {
            let ty = ty.as_ref();
            match scheme {
                TagScheme::Io => {
                    tags.insert(format!("I-{ty}"));
                }
                TagScheme::Bio => {
                    tags.insert(format!("B-{ty}"));
                    tags.insert(format!("I-{ty}"));
                }
                TagScheme::Bioes => {
                    for p in ["B", "I", "E", "S"] {
                        tags.insert(format!("{p}-{ty}"));
                    }
                }
            }
        }
        let mut all = vec!["O".to_string()];
        all.extend(tags);
        TagSet { scheme, tags: all }
    }

    /// The scheme this set was built for.
    pub fn scheme(&self) -> TagScheme {
        self.scheme
    }

    /// Number of tags (the decoder's output dimensionality).
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Tag sets always contain at least `"O"`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Index of a tag string; `None` if absent.
    pub fn index(&self, tag: &str) -> Option<usize> {
        self.tags.iter().position(|t| t == tag)
    }

    /// Tag string at `index`.
    pub fn tag(&self, index: usize) -> &str {
        &self.tags[index]
    }

    /// All tag strings, `"O"` first.
    pub fn tags(&self) -> &[String] {
        &self.tags
    }

    /// Encodes a tag-string sequence to indices, treating unknown tags as
    /// `"O"` (robustness against label mismatch in transfer settings, §4.2).
    pub fn encode<S: AsRef<str>>(&self, tags: &[S]) -> Vec<usize> {
        tags.iter().map(|t| self.index(t.as_ref()).unwrap_or(0)).collect()
    }

    /// Decodes indices back to tag strings.
    pub fn decode(&self, ids: &[usize]) -> Vec<String> {
        ids.iter().map(|&i| self.tags[i].clone()).collect()
    }

    /// True when tag `to` may follow tag `from` in a well-formed sequence
    /// under this scheme — the structural constraint a CRF's transition
    /// matrix learns, exposed so decoders can also hard-mask transitions.
    pub fn transition_allowed(&self, from: usize, to: usize) -> bool {
        let (fp, fl) = split_tag(&self.tags[from]);
        let (tp, tl) = split_tag(&self.tags[to]);
        match self.scheme {
            TagScheme::Io => true,
            TagScheme::Bio => match tp {
                // I-X must extend a same-typed B-X or I-X.
                'I' => (fp == 'B' || fp == 'I') && fl == tl,
                _ => true,
            },
            TagScheme::Bioes => {
                let from_open = fp == 'B' || fp == 'I';
                match (fp, tp) {
                    // an open entity must continue with same-typed I/E
                    _ if from_open => (tp == 'I' || tp == 'E') && fl == tl,
                    // a closed position cannot continue an entity
                    (_, 'I') | (_, 'E') => false,
                    _ => true,
                }
            }
        }
    }

    /// True when a well-formed sequence may *start* with tag `t`.
    pub fn start_allowed(&self, t: usize) -> bool {
        let (tp, _) = split_tag(&self.tags[t]);
        match self.scheme {
            TagScheme::Io => true,
            TagScheme::Bio => tp != 'I',
            TagScheme::Bioes => !matches!(tp, 'I' | 'E'),
        }
    }

    /// True when a well-formed sequence may *end* with tag `t`.
    pub fn end_allowed(&self, t: usize) -> bool {
        let (tp, _) = split_tag(&self.tags[t]);
        match self.scheme {
            TagScheme::Io | TagScheme::Bio => true,
            TagScheme::Bioes => !matches!(tp, 'B' | 'I'),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spans() -> Vec<EntitySpan> {
        vec![
            EntitySpan::new(0, 3, "PER"),
            EntitySpan::new(6, 7, "LOC"),
            EntitySpan::new(8, 10, "LOC"),
        ]
    }

    #[test]
    fn bioes_matches_paper_figure2() {
        // "Michael Jeffrey Jordan was born in Brooklyn , New York ."
        let tags = TagScheme::Bioes.spans_to_tags(11, &spans());
        assert_eq!(
            tags,
            vec!["B-PER", "I-PER", "E-PER", "O", "O", "O", "S-LOC", "O", "B-LOC", "E-LOC", "O"]
        );
    }

    #[test]
    fn bio_and_io_render() {
        assert_eq!(
            TagScheme::Bio.spans_to_tags(4, &[EntitySpan::new(1, 3, "ORG")]),
            vec!["O", "B-ORG", "I-ORG", "O"]
        );
        assert_eq!(
            TagScheme::Io.spans_to_tags(3, &[EntitySpan::new(0, 2, "ORG")]),
            vec!["I-ORG", "I-ORG", "O"]
        );
    }

    #[test]
    fn round_trip_all_schemes() {
        for scheme in [TagScheme::Io, TagScheme::Bio, TagScheme::Bioes] {
            let tags = scheme.spans_to_tags(11, &spans());
            let mut back = scheme.tags_to_spans(&tags);
            back.sort();
            let mut expect = spans();
            expect.sort();
            assert_eq!(back, expect, "round trip failed for {scheme:?}");
        }
    }

    #[test]
    fn io_merges_adjacent_same_type() {
        // IO cannot distinguish adjacent same-type entities — documented lossiness.
        let adjacent = vec![EntitySpan::new(0, 1, "LOC"), EntitySpan::new(1, 2, "LOC")];
        let tags = TagScheme::Io.spans_to_tags(2, &adjacent);
        let back = TagScheme::Io.tags_to_spans(&tags);
        assert_eq!(back, vec![EntitySpan::new(0, 2, "LOC")]);
    }

    #[test]
    fn lenient_decoding_of_illformed_sequences() {
        // Orphan I- opens an entity.
        let spans = TagScheme::Bio.tags_to_spans(&["O", "I-PER", "I-PER", "O"]);
        assert_eq!(spans, vec![EntitySpan::new(1, 3, "PER")]);
        // Label switch without B closes and reopens.
        let spans = TagScheme::Bio.tags_to_spans(&["B-PER", "I-LOC"]);
        assert_eq!(spans, vec![EntitySpan::new(0, 1, "PER"), EntitySpan::new(1, 2, "LOC")]);
        // Trailing open entity is closed at the end.
        let spans = TagScheme::Bioes.tags_to_spans(&["B-ORG", "I-ORG"]);
        assert_eq!(spans, vec![EntitySpan::new(0, 2, "ORG")]);
    }

    #[test]
    fn validity_check() {
        assert!(TagScheme::Bio.is_valid(&["B-PER", "I-PER", "O"]));
        assert!(!TagScheme::Bio.is_valid(&["O", "I-PER"]));
        assert!(TagScheme::Bioes.is_valid(&["B-PER", "E-PER", "S-LOC"]));
        assert!(!TagScheme::Bioes.is_valid(&["B-PER", "O"]));
    }

    #[test]
    fn scheme_conversion() {
        let bio = ["B-PER", "I-PER", "O", "B-LOC"];
        let bioes = TagScheme::Bio.convert(&bio, TagScheme::Bioes);
        assert_eq!(bioes, vec!["B-PER", "E-PER", "O", "S-LOC"]);
        let back = TagScheme::Bioes.convert(&bioes, TagScheme::Bio);
        assert_eq!(back, bio.to_vec());
    }

    #[test]
    fn tagset_indexing_deterministic() {
        let ts = TagSet::new(TagScheme::Bio, &["PER", "LOC"]);
        assert_eq!(ts.tag(0), "O");
        assert_eq!(ts.len(), 5);
        assert_eq!(ts.index("B-LOC"), Some(1)); // sorted: B-LOC, B-PER, I-LOC, I-PER
        assert_eq!(ts.encode(&["O", "B-PER", "B-MISC"]), vec![0, 2, 0]);
        assert_eq!(ts.decode(&[0, 2]), vec!["O", "B-PER"]);
    }

    #[test]
    fn transition_constraints_bio() {
        let ts = TagSet::new(TagScheme::Bio, &["PER", "LOC"]);
        let o = ts.index("O").unwrap();
        let b_per = ts.index("B-PER").unwrap();
        let i_per = ts.index("I-PER").unwrap();
        let i_loc = ts.index("I-LOC").unwrap();
        assert!(ts.transition_allowed(b_per, i_per));
        assert!(!ts.transition_allowed(o, i_per));
        assert!(!ts.transition_allowed(b_per, i_loc));
        assert!(ts.transition_allowed(i_per, o));
    }

    #[test]
    fn transition_constraints_bioes() {
        let ts = TagSet::new(TagScheme::Bioes, &["PER"]);
        let o = ts.index("O").unwrap();
        let b = ts.index("B-PER").unwrap();
        let i = ts.index("I-PER").unwrap();
        let e = ts.index("E-PER").unwrap();
        let s = ts.index("S-PER").unwrap();
        assert!(ts.transition_allowed(b, i));
        assert!(ts.transition_allowed(b, e));
        assert!(!ts.transition_allowed(b, o));
        assert!(!ts.transition_allowed(b, s));
        assert!(ts.transition_allowed(e, o));
        assert!(ts.transition_allowed(s, b));
        assert!(!ts.transition_allowed(o, e));
        assert!(ts.start_allowed(b) && ts.start_allowed(s) && ts.start_allowed(o));
        assert!(!ts.start_allowed(i) && !ts.start_allowed(e));
        assert!(ts.end_allowed(e) && ts.end_allowed(s) && ts.end_allowed(o));
        assert!(!ts.end_allowed(b) && !ts.end_allowed(i));
    }
}
