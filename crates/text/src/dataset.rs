use crate::{Sentence, Vocab};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A collection of annotated sentences, plus split and statistics helpers.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Sentences in corpus order.
    pub sentences: Vec<Sentence>,
}

/// Summary statistics of a dataset, in the spirit of the paper's Table 1
/// dataset inventory.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of sentences.
    pub sentences: usize,
    /// Number of tokens.
    pub tokens: usize,
    /// Total entity mentions.
    pub entities: usize,
    /// Number of distinct entity types ("#Tags" in Table 1).
    pub entity_types: usize,
    /// Mentions per type.
    pub per_type: BTreeMap<String, usize>,
    /// Fraction of entities nested inside another entity (×100 = the
    /// "17% in GENIA / 30% of ACE sentences" statistic of §5.1).
    pub nested_fraction: f64,
    /// Mean sentence length in tokens.
    pub mean_len: f64,
}

impl Dataset {
    /// Wraps a sentence list.
    pub fn new(sentences: Vec<Sentence>) -> Self {
        Dataset { sentences }
    }

    /// Number of sentences.
    pub fn len(&self) -> usize {
        self.sentences.len()
    }

    /// True when there are no sentences.
    pub fn is_empty(&self) -> bool {
        self.sentences.is_empty()
    }

    /// The distinct entity-type labels, sorted.
    pub fn entity_types(&self) -> Vec<String> {
        let set: BTreeSet<String> = self
            .sentences
            .iter()
            .flat_map(|s| s.entities.iter().map(|e| e.label.clone()))
            .collect();
        set.into_iter().collect()
    }

    /// Shuffles and splits into (train, dev, test) by the given fractions
    /// (test receives the remainder).
    ///
    /// # Panics
    /// Panics if the fractions are not in `(0,1)` or sum to ≥ 1.
    pub fn split(&self, rng: &mut impl Rng, train: f64, dev: f64) -> (Dataset, Dataset, Dataset) {
        assert!(train > 0.0 && dev > 0.0 && train + dev < 1.0, "invalid split fractions");
        let mut order: Vec<usize> = (0..self.sentences.len()).collect();
        order.shuffle(rng);
        let n_train = (self.len() as f64 * train).round() as usize;
        let n_dev = (self.len() as f64 * dev).round() as usize;
        let pick =
            |ix: &[usize]| Dataset::new(ix.iter().map(|&i| self.sentences[i].clone()).collect());
        (
            pick(&order[..n_train]),
            pick(&order[n_train..n_train + n_dev]),
            pick(&order[n_train + n_dev..]),
        )
    }

    /// Builds the word vocabulary (lowercased) with a frequency floor.
    pub fn word_vocab(&self, min_count: usize) -> Vocab {
        Vocab::build(self.sentences.iter().flat_map(|s| s.lower_texts()), min_count)
    }

    /// Builds the character vocabulary.
    pub fn char_vocab(&self) -> Vocab {
        Vocab::build_chars(
            self.sentences.iter().flat_map(|s| s.tokens.iter().map(|t| t.text.clone())),
            1,
        )
    }

    /// Computes Table-1-style summary statistics.
    pub fn stats(&self) -> DatasetStats {
        let tokens: usize = self.sentences.iter().map(Sentence::len).sum();
        let mut per_type: BTreeMap<String, usize> = BTreeMap::new();
        let mut entities = 0;
        let mut nested = 0;
        for s in &self.sentences {
            entities += s.entities.len();
            nested += s.nested_entities().len();
            for e in &s.entities {
                *per_type.entry(e.label.clone()).or_insert(0) += 1;
            }
        }
        DatasetStats {
            sentences: self.len(),
            tokens,
            entities,
            entity_types: per_type.len(),
            nested_fraction: if entities == 0 { 0.0 } else { nested as f64 / entities as f64 },
            per_type,
            mean_len: if self.is_empty() { 0.0 } else { tokens as f64 / self.len() as f64 },
        }
    }

    /// The set of distinct entity surface forms (lowercased) — used to
    /// measure *unseen entity* recall (§5.1): test entities whose surface
    /// never occurs as a training entity.
    pub fn entity_surfaces(&self) -> BTreeSet<String> {
        let mut set = BTreeSet::new();
        for s in &self.sentences {
            for e in &s.entities {
                let surface: Vec<String> =
                    s.tokens[e.start..e.end].iter().map(|t| t.text.to_lowercase()).collect();
                set.insert(surface.join(" "));
            }
        }
        set
    }

    /// Concatenates two datasets.
    pub fn concat(&self, other: &Dataset) -> Dataset {
        let mut sentences = self.sentences.clone();
        sentences.extend(other.sentences.clone());
        Dataset::new(sentences)
    }

    /// A dataset of the first `n` sentences (for budget/low-resource sweeps).
    pub fn take(&self, n: usize) -> Dataset {
        Dataset::new(self.sentences.iter().take(n).cloned().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EntitySpan;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample(n: usize) -> Dataset {
        let sentences = (0..n)
            .map(|i| {
                Sentence::new(
                    &["Jordan", "visited", "Brooklyn", &format!("x{i}")],
                    vec![EntitySpan::new(0, 1, "PER"), EntitySpan::new(2, 3, "LOC")],
                )
            })
            .collect();
        Dataset::new(sentences)
    }

    #[test]
    fn stats_reflect_content() {
        let d = sample(10);
        let st = d.stats();
        assert_eq!(st.sentences, 10);
        assert_eq!(st.tokens, 40);
        assert_eq!(st.entities, 20);
        assert_eq!(st.entity_types, 2);
        assert_eq!(st.per_type["PER"], 10);
        assert_eq!(st.nested_fraction, 0.0);
        assert_eq!(st.mean_len, 4.0);
    }

    #[test]
    fn split_partitions_everything() {
        let d = sample(100);
        let mut rng = StdRng::seed_from_u64(5);
        let (tr, dv, te) = d.split(&mut rng, 0.7, 0.15);
        assert_eq!(tr.len() + dv.len() + te.len(), 100);
        assert_eq!(tr.len(), 70);
        assert_eq!(dv.len(), 15);
    }

    #[test]
    fn vocab_building() {
        let d = sample(3);
        let v = d.word_vocab(1);
        assert!(v.get("jordan").is_some());
        assert!(v.get("Jordan").is_none(), "vocab is lowercased");
        let cv = d.char_vocab();
        assert!(cv.get("J").is_some());
    }

    #[test]
    fn entity_surfaces_lowercased() {
        let d = sample(1);
        let s = d.entity_surfaces();
        assert!(s.contains("jordan"));
        assert!(s.contains("brooklyn"));
    }

    #[test]
    fn take_and_concat() {
        let d = sample(5);
        assert_eq!(d.take(2).len(), 2);
        assert_eq!(d.concat(&d.take(2)).len(), 7);
    }

    #[test]
    fn nested_fraction_counts_inner() {
        let s = Sentence::new(
            &["University", "of", "Singapore"],
            vec![EntitySpan::new(0, 3, "ORG"), EntitySpan::new(2, 3, "LOC")],
        );
        let st = Dataset::new(vec![s]).stats();
        assert!((st.nested_fraction - 0.5).abs() < 1e-12);
    }
}
