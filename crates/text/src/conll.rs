//! CoNLL-format reading and writing.
//!
//! The two-column variant (`token<space-or-tab>tag`, blank line between
//! sentences) used by the CoNLL-2003 shared task and virtually every NER
//! toolkit since. Reading is scheme-lenient: tags are decoded to spans with
//! the tolerant parser of [`TagScheme::tags_to_spans`].

use crate::{Sentence, TagScheme};
use std::fmt::Write as _;

/// Serializes a dataset slice to CoNLL format under the given scheme.
pub fn write_conll(sentences: &[Sentence], scheme: TagScheme) -> String {
    let mut out = String::new();
    for s in sentences {
        let tags = s.tags(scheme);
        for (tok, tag) in s.tokens.iter().zip(tags) {
            writeln!(out, "{} {}", tok.text, tag).expect("writing to String cannot fail");
        }
        out.push('\n');
    }
    out
}

/// Parses CoNLL text; tags are interpreted under `scheme`.
///
/// Tolerates: repeated blank lines, trailing whitespace, and extra middle
/// columns (token is first, tag last, as in the 4-column CoNLL-2003
/// layout). Lines are never treated as comments: `#`-initial tokens are
/// real data in social-media corpora.
pub fn read_conll(text: &str, scheme: TagScheme) -> Vec<Sentence> {
    let mut sentences = Vec::new();
    let mut tokens: Vec<String> = Vec::new();
    let mut tags: Vec<String> = Vec::new();

    let mut flush = |tokens: &mut Vec<String>, tags: &mut Vec<String>| {
        if tokens.is_empty() {
            return;
        }
        let spans = scheme.tags_to_spans(tags);
        sentences.push(Sentence::new(tokens.as_slice(), spans));
        tokens.clear();
        tags.clear();
    };

    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            flush(&mut tokens, &mut tags);
            continue;
        }
        let mut fields = line.split_whitespace();
        let token = fields.next().expect("non-empty line has a first field");
        let tag = fields.last().unwrap_or("O");
        tokens.push(token.to_string());
        tags.push(tag.to_string());
    }
    flush(&mut tokens, &mut tags);
    sentences
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EntitySpan;

    fn sample() -> Vec<Sentence> {
        vec![
            Sentence::new(
                &["Jordan", "visited", "New", "York", "."],
                vec![EntitySpan::new(0, 1, "PER"), EntitySpan::new(2, 4, "LOC")],
            ),
            Sentence::new(&["No", "entities", "here"], vec![]),
        ]
    }

    #[test]
    fn round_trip_bio_and_bioes() {
        for scheme in [TagScheme::Bio, TagScheme::Bioes] {
            let text = write_conll(&sample(), scheme);
            let back = read_conll(&text, scheme);
            assert_eq!(back, sample(), "round trip failed for {scheme:?}");
        }
    }

    #[test]
    fn format_shape() {
        let text = write_conll(&sample()[..1], TagScheme::Bio);
        let first_line = text.lines().next().unwrap();
        assert_eq!(first_line, "Jordan B-PER");
        assert!(text.ends_with("\n\n"));
    }

    #[test]
    fn tolerant_reading() {
        let text = "Jordan NNP B-PER\nvisited VBD O\n\n\n#Brooklyn B-LOC\n";
        let sents = read_conll(text, TagScheme::Bio);
        assert_eq!(sents.len(), 2);
        assert_eq!(sents[0].entities, vec![EntitySpan::new(0, 1, "PER")]);
        assert_eq!(sents[1].entities, vec![EntitySpan::new(0, 1, "LOC")]);
        assert_eq!(sents[1].tokens[0].text, "#Brooklyn", "hashtag tokens are data, not comments");
    }

    #[test]
    fn empty_input() {
        assert!(read_conll("", TagScheme::Bio).is_empty());
        assert!(read_conll("\n\n\n", TagScheme::Bio).is_empty());
    }
}
