//! Hand-crafted word features (paper §2.4.3) packaged as dense vectors for
//! hybrid neural input representations (paper §3.2.3).
//!
//! The feature groups mirror the classics: Chiu & Nichols' 4-way character
//! type and capitalization features, Strubell et al.'s 5-dimensional word
//! shape vector, and affix/lexical indicators.

use serde::{Deserialize, Serialize};

/// Coarse casing category of a token (Chiu & Nichols 2016).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Casing {
    /// Entirely lowercase letters.
    Lower,
    /// Entirely uppercase letters ("NASA").
    Upper,
    /// First letter uppercase, rest lowercase ("London").
    Title,
    /// Mixed case ("iPhone").
    Mixed,
    /// No letters at all (digits, punctuation).
    NoLetters,
}

/// Classifies the casing of a word.
pub fn casing(word: &str) -> Casing {
    let letters: Vec<char> = word.chars().filter(|c| c.is_alphabetic()).collect();
    if letters.is_empty() {
        return Casing::NoLetters;
    }
    let upper = letters.iter().filter(|c| c.is_uppercase()).count();
    if upper == 0 {
        Casing::Lower
    } else if upper == letters.len() {
        Casing::Upper
    } else if letters[0].is_uppercase() && upper == 1 {
        Casing::Title
    } else {
        Casing::Mixed
    }
}

/// Compressed word shape: uppercase→`X`, lowercase→`x`, digit→`d`,
/// other→`-`, with runs collapsed ("Brooklyn"→"Xx", "W-NUT17"→"X-Xd").
pub fn word_shape(word: &str) -> String {
    let mut out = String::new();
    let mut last = '\0';
    for c in word.chars() {
        let s = if c.is_uppercase() {
            'X'
        } else if c.is_lowercase() {
            'x'
        } else if c.is_ascii_digit() {
            'd'
        } else {
            '-'
        };
        if s != last {
            out.push(s);
            last = s;
        }
    }
    out
}

/// Width of the dense feature vector produced by [`token_features`].
pub const FEATURE_DIM: usize = 16;

/// Encodes one token (with its neighbors for boundary awareness) as a dense
/// `FEATURE_DIM`-dimensional 0/1 vector:
///
/// * dims 0–4: one-hot casing category,
/// * dim 5: all characters are digits,
/// * dim 6: contains a digit,
/// * dim 7: contains a hyphen,
/// * dim 8: contains an apostrophe,
/// * dim 9: is punctuation-only,
/// * dim 10: length == 1,
/// * dim 11: length >= 8,
/// * dim 12: starts a sentence (position 0),
/// * dim 13: previous token is sentence punctuation,
/// * dim 14: looks like an @mention or #hashtag,
/// * dim 15: looks like a URL.
pub fn token_features(tokens: &[&str], position: usize) -> [f32; FEATURE_DIM] {
    let word = tokens[position];
    let mut f = [0.0f32; FEATURE_DIM];
    f[match casing(word) {
        Casing::Lower => 0,
        Casing::Upper => 1,
        Casing::Title => 2,
        Casing::Mixed => 3,
        Casing::NoLetters => 4,
    }] = 1.0;
    let chars: Vec<char> = word.chars().collect();
    if !chars.is_empty() && chars.iter().all(|c| c.is_ascii_digit()) {
        f[5] = 1.0;
    }
    if chars.iter().any(|c| c.is_ascii_digit()) {
        f[6] = 1.0;
    }
    if word.contains('-') {
        f[7] = 1.0;
    }
    if word.contains('\'') {
        f[8] = 1.0;
    }
    if !chars.is_empty() && chars.iter().all(|c| c.is_ascii_punctuation()) {
        f[9] = 1.0;
    }
    if chars.len() == 1 {
        f[10] = 1.0;
    }
    if chars.len() >= 8 {
        f[11] = 1.0;
    }
    if position == 0 {
        f[12] = 1.0;
    }
    if position > 0 && matches!(tokens[position - 1], "." | "!" | "?") {
        f[13] = 1.0;
    }
    if word.starts_with('@') || word.starts_with('#') {
        f[14] = 1.0;
    }
    if word.starts_with("http://") || word.starts_with("https://") {
        f[15] = 1.0;
    }
    f
}

/// The lowercase prefix of `word` up to `n` characters (affix feature).
pub fn prefix(word: &str, n: usize) -> String {
    word.chars().take(n).collect::<String>().to_lowercase()
}

/// The lowercase suffix of `word` up to `n` characters (affix feature).
pub fn suffix(word: &str, n: usize) -> String {
    let chars: Vec<char> = word.chars().collect();
    let start = chars.len().saturating_sub(n);
    chars[start..].iter().collect::<String>().to_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn casing_categories() {
        assert_eq!(casing("london"), Casing::Lower);
        assert_eq!(casing("NASA"), Casing::Upper);
        assert_eq!(casing("London"), Casing::Title);
        assert_eq!(casing("iPhone"), Casing::Mixed);
        assert_eq!(casing("42"), Casing::NoLetters);
        assert_eq!(casing("McDonald"), Casing::Mixed);
    }

    #[test]
    fn shapes_collapse_runs() {
        assert_eq!(word_shape("Brooklyn"), "Xx");
        assert_eq!(word_shape("W-NUT17"), "X-Xd");
        assert_eq!(word_shape("3.5"), "d-d");
        assert_eq!(word_shape(""), "");
    }

    #[test]
    fn feature_vector_flags() {
        let toks = ["He", "visited", "Brooklyn", ".", "Great"];
        let f = token_features(&toks, 2);
        assert_eq!(f[2], 1.0, "Title case");
        assert_eq!(f[12], 0.0, "not sentence start");
        let f0 = token_features(&toks, 0);
        assert_eq!(f0[12], 1.0, "sentence start");
        let f4 = token_features(&toks, 4);
        assert_eq!(f4[13], 1.0, "after period");
        let toks2 = ["#nyc", "42", "https://x.io"];
        assert_eq!(token_features(&toks2, 0)[14], 1.0);
        assert_eq!(token_features(&toks2, 1)[5], 1.0);
        assert_eq!(token_features(&toks2, 2)[15], 1.0);
    }

    #[test]
    fn affixes() {
        assert_eq!(prefix("Washington", 3), "was");
        assert_eq!(suffix("Washington", 3), "ton");
        assert_eq!(suffix("ab", 5), "ab");
    }
}
