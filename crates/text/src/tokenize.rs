//! Rule-based tokenization of raw strings.
//!
//! Whitespace splitting plus punctuation peeling, adequate for the
//! news-register and social-media text this workspace generates. The
//! tokenizer deliberately keeps `@mentions`, `#hashtags` and `URLs` intact,
//! since those are entity-bearing units in user-generated content (§5.1).

/// Splits raw text into tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for chunk in text.split_whitespace() {
        split_chunk(chunk, &mut out);
    }
    out
}

fn is_protected(chunk: &str) -> bool {
    chunk.starts_with('@')
        || chunk.starts_with('#')
        || chunk.starts_with("http://")
        || chunk.starts_with("https://")
}

fn split_chunk(chunk: &str, out: &mut Vec<String>) {
    if chunk.is_empty() {
        return;
    }
    if is_protected(chunk) {
        // Peel only trailing sentence punctuation from protected tokens.
        let trimmed = chunk.trim_end_matches(['.', ',', '!', '?']);
        if trimmed.is_empty() {
            out.push(chunk.to_string());
            return;
        }
        out.push(trimmed.to_string());
        for c in chunk[trimmed.len()..].chars() {
            out.push(c.to_string());
        }
        return;
    }

    // Peel leading punctuation.
    let mut rest = chunk;
    while let Some(c) = rest.chars().next() {
        if c.is_ascii_punctuation() && rest.chars().count() > 1 && c != '$' {
            out.push(c.to_string());
            rest = &rest[c.len_utf8()..];
        } else {
            break;
        }
    }
    // Peel trailing punctuation (but keep interior ones: "U.S." stays whole
    // apart from its final period handling below, "don't" stays whole).
    let mut tail: Vec<char> = Vec::new();
    while let Some(c) = rest.chars().last() {
        let peel = match c {
            ',' | '!' | '?' | ';' | ':' | ')' | ']' | '}' | '"' | '\'' | '%' => true,
            '.' => {
                // Keep the period of abbreviation-like tokens ("U.S.").
                let body = &rest[..rest.len() - 1];
                !body.contains('.')
            }
            _ => false,
        };
        if peel && rest.chars().count() > 1 {
            tail.push(c);
            rest = &rest[..rest.len() - c.len_utf8()];
        } else {
            break;
        }
    }
    if !rest.is_empty() {
        out.push(rest.to_string());
    }
    for c in tail.into_iter().rev() {
        out.push(c.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_sentence() {
        assert_eq!(
            tokenize("Michael Jordan was born in Brooklyn, New York."),
            vec!["Michael", "Jordan", "was", "born", "in", "Brooklyn", ",", "New", "York", "."]
        );
    }

    #[test]
    fn abbreviations_keep_periods() {
        assert_eq!(tokenize("He works at I.B.M. now"), vec!["He", "works", "at", "I.B.M.", "now"]);
    }

    #[test]
    fn social_tokens_protected() {
        assert_eq!(
            tokenize("@jordan23 landed in #Brooklyn!"),
            vec!["@jordan23", "landed", "in", "#Brooklyn", "!"]
        );
        assert_eq!(tokenize("see https://x.io/a."), vec!["see", "https://x.io/a", "."]);
    }

    #[test]
    fn quotes_and_brackets_peel() {
        assert_eq!(tokenize("(\"hello\")"), vec!["(", "\"", "hello", "\"", ")"]);
    }

    #[test]
    fn currency_and_percent() {
        assert_eq!(tokenize("$5 rose 3%"), vec!["$5", "rose", "3", "%"]);
    }

    #[test]
    fn empty_and_whitespace() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n ").is_empty());
    }
}
