use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A frequency-built vocabulary with reserved `<pad>` (index 0) and `<unk>`
/// (index 1) entries. Used for words, characters and BPE pieces alike.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Vocab {
    items: Vec<String>,
    index: HashMap<String, usize>,
}

/// Reserved padding index.
pub const PAD: usize = 0;
/// Reserved unknown-item index.
pub const UNK: usize = 1;

impl Vocab {
    /// An empty vocabulary containing only the reserved entries.
    pub fn new() -> Self {
        let mut v = Vocab { items: Vec::new(), index: HashMap::new() };
        v.add("<pad>");
        v.add("<unk>");
        v
    }

    /// Builds a vocabulary from an iterator of items, keeping those with
    /// `count >= min_count`. Ties and ordering are made deterministic by
    /// sorting on (-count, item).
    pub fn build<I, S>(items: I, min_count: usize) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut counts: HashMap<String, usize> = HashMap::new();
        for it in items {
            *counts.entry(it.as_ref().to_string()).or_insert(0) += 1;
        }
        let mut ranked: Vec<(String, usize)> = counts.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut v = Vocab::new();
        for (item, count) in ranked {
            if count >= min_count {
                v.add(&item);
            }
        }
        v
    }

    /// Builds a character vocabulary from an iterator of words.
    pub fn build_chars<I, S>(words: I, min_count: usize) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let chars: Vec<String> = words
            .into_iter()
            .flat_map(|w| w.as_ref().chars().map(String::from).collect::<Vec<_>>())
            .collect();
        Vocab::build(chars, min_count)
    }

    /// Inserts an item if absent; returns its index either way.
    pub fn add(&mut self, item: &str) -> usize {
        if let Some(&i) = self.index.get(item) {
            return i;
        }
        self.items.push(item.to_string());
        let i = self.items.len() - 1;
        self.index.insert(item.to_string(), i);
        i
    }

    /// Index of an item, or `None` if out of vocabulary.
    pub fn get(&self, item: &str) -> Option<usize> {
        self.index.get(item).copied()
    }

    /// Index of an item, falling back to `<unk>`.
    pub fn get_or_unk(&self, item: &str) -> usize {
        self.get(item).unwrap_or(UNK)
    }

    /// The item at `index`.
    pub fn item(&self, index: usize) -> &str {
        &self.items[index]
    }

    /// Vocabulary size including reserved entries.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Never true: reserved entries always exist.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Encodes a sequence of items to indices with `<unk>` fallback.
    pub fn encode<S: AsRef<str>>(&self, items: &[S]) -> Vec<usize> {
        items.iter().map(|i| self.get_or_unk(i.as_ref())).collect()
    }

    /// Encodes the characters of one word.
    pub fn encode_chars(&self, word: &str) -> Vec<usize> {
        word.chars().map(|c| self.get_or_unk(&c.to_string())).collect()
    }

    /// Fraction of `items` that are out of vocabulary — the OOV rate, a key
    /// covariate in the paper's informal-text discussion (§5.1).
    pub fn oov_rate<S: AsRef<str>>(&self, items: &[S]) -> f64 {
        if items.is_empty() {
            return 0.0;
        }
        let oov = items.iter().filter(|i| self.get(i.as_ref()).is_none()).count();
        oov as f64 / items.len() as f64
    }
}

impl Default for Vocab {
    fn default() -> Self {
        Vocab::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_entries() {
        let v = Vocab::new();
        assert_eq!(v.len(), 2);
        assert_eq!(v.item(PAD), "<pad>");
        assert_eq!(v.item(UNK), "<unk>");
    }

    #[test]
    fn build_respects_min_count_and_is_deterministic() {
        let words = ["b", "a", "a", "c", "c", "c", "rare"];
        let v = Vocab::build(words, 2);
        assert_eq!(v.get("c"), Some(2)); // most frequent first
        assert_eq!(v.get("a"), Some(3));
        assert_eq!(v.get("b"), None);
        assert_eq!(v.get("rare"), None);
        assert_eq!(v.get_or_unk("rare"), UNK);
    }

    #[test]
    fn encode_with_unk_fallback() {
        let v = Vocab::build(["x", "x", "y", "y"], 1);
        assert_eq!(
            v.encode(&["x", "zzz", "y"]),
            vec![v.get("x").unwrap(), UNK, v.get("y").unwrap()]
        );
    }

    #[test]
    fn char_vocab_and_encoding() {
        let v = Vocab::build_chars(["ab", "ba"], 1);
        let enc = v.encode_chars("abq");
        assert_eq!(enc.len(), 3);
        assert_eq!(enc[2], UNK);
        assert_ne!(enc[0], enc[1]);
    }

    #[test]
    fn oov_rate_counts_misses() {
        let v = Vocab::build(["a", "b"], 1);
        assert!((v.oov_rate(&["a", "zz", "b", "qq"]) - 0.5).abs() < 1e-12);
        assert_eq!(v.oov_rate::<&str>(&[]), 0.0);
    }

    #[test]
    fn add_is_idempotent() {
        let mut v = Vocab::new();
        let i = v.add("tok");
        assert_eq!(v.add("tok"), i);
        assert_eq!(v.len(), 3);
    }
}
