use serde::{Deserialize, Serialize};

/// A labeled entity mention: token span `[start, end)` with an entity type.
///
/// This mirrors the paper's formal task definition (§2.1): NER outputs
/// tuples ⟨I_s, I_e, t⟩ of start index, end index and type.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EntitySpan {
    /// First token index of the mention (inclusive).
    pub start: usize,
    /// One past the last token index (exclusive). Always `> start`.
    pub end: usize,
    /// Entity type, e.g. `"PER"`, `"LOC"`, or fine-grained `"LOC.city"`.
    pub label: String,
}

impl EntitySpan {
    /// Creates a span; panics if `end <= start`.
    pub fn new(start: usize, end: usize, label: impl Into<String>) -> Self {
        assert!(end > start, "entity span must be non-empty");
        EntitySpan { start, end, label: label.into() }
    }

    /// Number of tokens covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Spans are never empty; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True when the token ranges share at least one position — the
    /// "relaxed match" overlap criterion of MUC-6 (§2.3.2).
    pub fn overlaps(&self, other: &EntitySpan) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// True when token ranges are identical (labels may differ).
    pub fn same_boundaries(&self, other: &EntitySpan) -> bool {
        self.start == other.start && self.end == other.end
    }

    /// True when `other` is strictly inside `self` (proper nesting, as in
    /// GENIA/ACE nested entities, §5.1).
    pub fn strictly_contains(&self, other: &EntitySpan) -> bool {
        self.start <= other.start && other.end <= self.end && self.len() > other.len()
    }

    /// The coarse part of a possibly fine-grained label:
    /// `"LOC.city"` → `"LOC"`, `"PER"` → `"PER"`.
    pub fn coarse_label(&self) -> &str {
        self.label.split('.').next().unwrap_or(&self.label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_geometry() {
        let a = EntitySpan::new(1, 3, "PER");
        assert_eq!(a.len(), 2);
        assert!(a.overlaps(&EntitySpan::new(2, 5, "LOC")));
        assert!(!a.overlaps(&EntitySpan::new(3, 5, "LOC")));
        assert!(a.same_boundaries(&EntitySpan::new(1, 3, "ORG")));
    }

    #[test]
    fn nesting() {
        let outer = EntitySpan::new(0, 4, "ORG");
        let inner = EntitySpan::new(2, 4, "LOC");
        assert!(outer.strictly_contains(&inner));
        assert!(!inner.strictly_contains(&outer));
        assert!(!outer.strictly_contains(&outer));
    }

    #[test]
    fn coarse_label_strips_subtype() {
        assert_eq!(EntitySpan::new(0, 1, "LOC.city").coarse_label(), "LOC");
        assert_eq!(EntitySpan::new(0, 1, "PER").coarse_label(), "PER");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_span_rejected() {
        let _ = EntitySpan::new(2, 2, "PER");
    }
}
