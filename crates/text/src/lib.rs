//! # ner-text — text processing for `neural-ner`
//!
//! The "data-processing" module the survey's future-work section calls for:
//!
//! * [`Token`] / [`Sentence`] / [`Dataset`] — the core data model. Gold
//!   annotations are stored as [`EntitySpan`]s (start, end, type), matching
//!   the paper's formal definition of NER output (§2.1), and converted to
//!   per-token tags on demand.
//! * [`TagScheme`] (IO / BIO / BIOES) with span↔tag conversion, validation
//!   and scheme conversion, plus [`TagSet`] mapping tag strings to indices.
//! * [`Vocab`] — frequency-thresholded token/character vocabularies with
//!   `<unk>` handling.
//! * [`tokenize`] — a rule tokenizer for raw strings.
//! * [`features`] — the hand-crafted features of feature-based NER (§2.4.3)
//!   reused as *hybrid* neural inputs (§3.2.3): word shape, casing, affixes.
//! * [`pos`] — a lightweight rule POS tagger (POS features, §3.2.3).
//! * [`Gazetteer`] — longest-match phrase lists (gazetteer features, §3.2.3).
//! * [`conll`] — CoNLL-format reading and writing.

#![warn(missing_docs)]

pub mod conll;
mod dataset;
pub mod features;
mod gazetteer;
pub mod pos;
mod sentence;
mod span;
mod tag;
pub mod tokenize;
mod vocab;

pub use dataset::{Dataset, DatasetStats};
pub use gazetteer::Gazetteer;
pub use sentence::{Sentence, Token};
pub use span::EntitySpan;
pub use tag::{TagScheme, TagSet};
pub use vocab::{Vocab, PAD, UNK};
