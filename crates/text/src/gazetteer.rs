use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};

/// A typed phrase list with longest-match lookup — the classic gazetteer
/// feature (paper §2.4.1, §3.2.3; Huang et al. 2015's BiLSTM-CRF uses
/// exactly this as an extra input feature).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Gazetteer {
    /// type name → set of lowercased phrases (token-joined with a space)
    entries: BTreeMap<String, HashSet<String>>,
    max_phrase_len: usize,
}

impl Gazetteer {
    /// An empty gazetteer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a phrase (given as tokens) under an entity type.
    pub fn add<S: AsRef<str>>(&mut self, entity_type: &str, phrase_tokens: &[S]) {
        assert!(!phrase_tokens.is_empty(), "empty gazetteer phrase");
        let key =
            phrase_tokens.iter().map(|t| t.as_ref().to_lowercase()).collect::<Vec<_>>().join(" ");
        self.max_phrase_len = self.max_phrase_len.max(phrase_tokens.len());
        self.entries.entry(entity_type.to_string()).or_default().insert(key);
    }

    /// The entity types present, in sorted order (stable feature layout).
    pub fn types(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// Number of phrases across all types.
    pub fn len(&self) -> usize {
        self.entries.values().map(HashSet::len).sum()
    }

    /// True when no phrases have been added.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the token span matches a phrase of `entity_type`
    /// (case-insensitive).
    pub fn contains<S: AsRef<str>>(&self, entity_type: &str, phrase_tokens: &[S]) -> bool {
        let key =
            phrase_tokens.iter().map(|t| t.as_ref().to_lowercase()).collect::<Vec<_>>().join(" ");
        self.entries.get(entity_type).is_some_and(|set| set.contains(&key))
    }

    /// Per-token gazetteer features: for each token a 0/1 vector over
    /// [`Gazetteer::types`] where dimension `k` is 1 when the token is
    /// covered by a longest-first match of any phrase of type `k`.
    pub fn features(&self, tokens: &[&str]) -> Vec<Vec<f32>> {
        let types = self.types();
        let mut feats = vec![vec![0.0; types.len()]; tokens.len()];
        for (k, ty) in types.iter().enumerate() {
            let mut i = 0;
            while i < tokens.len() {
                let mut matched = 0;
                let longest = self.max_phrase_len.min(tokens.len() - i);
                for len in (1..=longest).rev() {
                    if self.contains(ty, &tokens[i..i + len]) {
                        matched = len;
                        break;
                    }
                }
                if matched > 0 {
                    for f in feats.iter_mut().skip(i).take(matched) {
                        f[k] = 1.0;
                    }
                    i += matched;
                } else {
                    i += 1;
                }
            }
        }
        feats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Gazetteer {
        let mut g = Gazetteer::new();
        g.add("LOC", &["New", "York"]);
        g.add("LOC", &["Brooklyn"]);
        g.add("PER", &["Jordan"]);
        g
    }

    #[test]
    fn membership_is_case_insensitive() {
        let g = sample();
        assert!(g.contains("LOC", &["new", "york"]));
        assert!(g.contains("LOC", &["NEW", "YORK"]));
        assert!(!g.contains("LOC", &["York"]));
        assert!(!g.contains("ORG", &["Brooklyn"]));
    }

    #[test]
    fn features_mark_longest_matches() {
        let g = sample();
        let toks = ["Jordan", "visited", "New", "York"];
        let f = g.features(&toks);
        let types = g.types(); // ["LOC", "PER"]
        assert_eq!(types, vec!["LOC", "PER"]);
        assert_eq!(f[0], vec![0.0, 1.0]); // Jordan = PER
        assert_eq!(f[1], vec![0.0, 0.0]);
        assert_eq!(f[2], vec![1.0, 0.0]); // New York = LOC
        assert_eq!(f[3], vec![1.0, 0.0]);
    }

    #[test]
    fn counts_and_types() {
        let g = sample();
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
        assert!(Gazetteer::new().is_empty());
    }
}
