#!/usr/bin/env sh
# Continuous-integration gate for the neural-ner workspace.
#
# Runs the same checks as .github/workflows/ci.yml:
#   1. formatting       (cargo fmt --check, rustfmt.toml style)
#   2. lints            (cargo clippy --workspace, warnings are errors)
#      + docs           (cargo doc --no-deps, rustdoc warnings are errors)
#   3. tier-1 tests     (release build + full test suite, serial and at
#      4 threads — the parallel paths must not change results — and once
#      more at NER_SIMD=off so forced-scalar kernels reproduce the same
#      bits the default SIMD level produced)
#   4. kernel smoke     (exp_kernels --smoke exits non-zero on any
#      blocked/SIMD/parallel-vs-naive kernel divergence, run at both the
#      default SIMD level and NER_SIMD=off)
#   5. inference smoke  (exp_inference --smoke at 1 and 4 threads exits
#      non-zero if the tape-free plan's tags — or the batched [B,T]
#      backend's — diverge from the tape path)
#   6. training smoke   (exp_train --smoke at 1 and 4 threads exits
#      non-zero if the batched packed-autograd trainer's loss curve
#      diverges in any f64 bit from the per-sentence oracle under the
#      shared bucketed schedule; zoo-wide final-weight/F1 bit-identity
#      is covered by ner-core's train_parity suite in step 3)
#   7. prometheus lint  (the /metrics exposition must have typed, unique
#      families with cumulative histogram buckets)
#   8. serving smoke    (serve integration tests — including the request
#      tracing, flight-recorder, batch-formation, slow-client and
#      shutdown-race suites — + exp_serving --smoke at 1 and 4 threads:
#      its overload-and-recovery soak drives the server into SLO shedding,
#      hot-reloads it under load, and drains it, exiting non-zero if a
#      batched response diverges from offline annotate, an accepted
#      request is lost, or the server fails to recover after overload)
#
# The build is fully offline: every external dependency is a vendored stub
# under compat/, so no network access is required.
set -eu

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (deny rustdoc warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

echo "== tier-1: release build + tests (NER_THREADS=1) =="
cargo build --release
NER_THREADS=1 cargo test -q

echo "== tier-1: tests again on the parallel paths (NER_THREADS=4) =="
NER_THREADS=4 cargo test -q

echo "== tier-1: tests with SIMD forced off (NER_SIMD=off, NER_THREADS=1) =="
NER_SIMD=off NER_THREADS=1 cargo test -q

echo "== tier-1: tests with SIMD forced off (NER_SIMD=off, NER_THREADS=4) =="
NER_SIMD=off NER_THREADS=4 cargo test -q

echo "== kernel smoke: blocked/SIMD/parallel must match the naive oracle =="
cargo run --release -p ner-bench --bin exp_kernels -- --smoke

echo "== kernel smoke again with SIMD forced off (NER_SIMD=off) =="
NER_SIMD=off cargo run --release -p ner-bench --bin exp_kernels -- --smoke

echo "== inference smoke: plan and batched [B,T] must reproduce the tape (NER_THREADS=1) =="
NER_THREADS=1 cargo run --release -p ner-bench --bin exp_inference -- --smoke

echo "== inference smoke: plan and batched [B,T] must reproduce the tape (NER_THREADS=4) =="
NER_THREADS=4 cargo run --release -p ner-bench --bin exp_inference -- --smoke

echo "== training smoke: batched trainer must reproduce the per-sentence oracle (NER_THREADS=1) =="
NER_THREADS=1 cargo run --release -p ner-bench --bin exp_train -- --smoke

echo "== training smoke: batched trainer must reproduce the per-sentence oracle (NER_THREADS=4) =="
NER_THREADS=4 cargo run --release -p ner-bench --bin exp_train -- --smoke

echo "== prometheus lint: /metrics families must be typed, unique, cumulative =="
cargo test --release -p ner-serve --lib -q prometheus

echo "== serving: poll-loop integration + exp_serving soak (overload, reload, recovery; NER_THREADS=1) =="
NER_THREADS=1 cargo test --release -p ner-serve --test serve_integration -q
NER_THREADS=1 cargo run --release -p ner-bench --bin exp_serving -- --smoke

echo "== serving: poll-loop integration + exp_serving soak (overload, reload, recovery; NER_THREADS=4) =="
NER_THREADS=4 cargo test --release -p ner-serve --test serve_integration -q
NER_THREADS=4 cargo run --release -p ner-bench --bin exp_serving -- --smoke

echo "CI OK"
