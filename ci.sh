#!/usr/bin/env sh
# Continuous-integration gate for the neural-ner workspace.
#
# Runs the same three checks as .github/workflows/ci.yml:
#   1. formatting       (cargo fmt --check, rustfmt.toml style)
#   2. lints            (cargo clippy --workspace, warnings are errors)
#   3. tier-1 tests     (release build + full test suite)
#
# The build is fully offline: every external dependency is a vendored stub
# under compat/, so no network access is required.
set -eu

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: release build + tests =="
cargo build --release
cargo test -q

echo "CI OK"
