//! A minimal stand-in for [`proptest`](https://crates.io/crates/proptest):
//! seeded random property testing with the strategy combinators this
//! workspace uses (`prop_map`, `prop_flat_map`, `Just`, ranges, tuples and
//! `prop::collection::vec`). No shrinking — a failing case reports its seed
//! and case index instead; runs are fully deterministic per test name.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// The generator handed to strategies.
pub type TestRng = StdRng;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and samples it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// String strategies from a regex subset: sequences of literal characters
/// and character classes `[a-z0-9,.]`, each optionally repeated `{n}` or
/// `{m,n}`. This covers the patterns used in this workspace's tests.
impl Strategy for str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let atoms = parse_regex_subset(self);
        let mut out = String::new();
        for (chars, lo, hi) in &atoms {
            let n = rng.gen_range(*lo..=*hi);
            for _ in 0..n {
                out.push(chars[rng.gen_range(0..chars.len())]);
            }
        }
        out
    }
}

/// Parses the supported regex subset into (choices, min_reps, max_reps) atoms.
fn parse_regex_subset(pattern: &str) -> Vec<(Vec<char>, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unclosed '[' in regex strategy {pattern:?}"))
                + i;
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (a, b) = (chars[j], chars[j + 2]);
                    assert!(a <= b, "bad class range {a}-{b} in {pattern:?}");
                    set.extend((a..=b).filter(|c| c.is_ascii()));
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            assert!(
                !matches!(c, '(' | ')' | '|' | '\\' | '.' | '*' | '+' | '?'),
                "regex strategy stub does not support {c:?} in {pattern:?}"
            );
            i += 1;
            vec![c]
        };
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed '{{' in regex strategy {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repeat lower bound"),
                    hi.trim().parse().expect("bad repeat upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push((choices, lo, hi));
    }
    atoms
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

pub mod strategy {
    //! Strategy types (upstream-compatible module path).
    pub use super::{FlatMap, Just, Map, Strategy};
}

pub mod prop {
    //! The `prop::` namespace (`prop::collection::vec` etc.).

    pub mod collection {
        //! Collection strategies.

        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::Range;

        /// Anything usable as the length argument of [`vec()`].
        pub trait SizeRange {
            /// Picks a concrete length.
            fn pick(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        /// Generates `Vec`s whose elements come from `element` and whose
        /// length comes from `size` (a fixed `usize` or a range).
        pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
            VecStrategy { element, size }
        }

        /// See [`vec()`].
        pub struct VecStrategy<S, L> {
            element: S,
            size: L,
        }

        impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Deterministic per-test seed: FNV-1a over the test path, so adding or
/// reordering tests never perturbs another test's stream.
pub fn seed_for(test_path: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Runs `body` for `cases` deterministic random cases. Used by the
/// [`proptest!`] macro; not intended to be called directly.
pub fn run_cases(cases: u32, test_path: &str, mut body: impl FnMut(&mut TestRng, u32)) {
    let seed = seed_for(test_path);
    for case in 0..cases {
        let mut rng =
            TestRng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)));
        body(&mut rng, case);
    }
}

/// Convenience prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use super::{prop, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each function runs its body over many sampled
/// inputs. Supports the upstream syntax subset used in this workspace.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(cfg.cases, concat!(module_path!(), "::", stringify!($name)), |rng, _case| {
                    $(let $pat = $crate::Strategy::sample(&($strat), rng);)+
                    $body
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts inside a property body (no shrinking: behaves like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..5, 1i32..=3), x in -1.0f32..1.0) {
            prop_assert!(a < 5);
            prop_assert!((1..=3).contains(&b));
            prop_assert!((-1.0..1.0).contains(&x));
        }

        #[test]
        fn vec_and_map(xs in prop::collection::vec(0u8..10, 3).prop_map(|v| v.len())) {
            prop_assert_eq!(xs, 3);
        }

        #[test]
        fn flat_map_links_strategies(
            (n, xs) in (1usize..6).prop_flat_map(|n| (Just(n), prop::collection::vec(0usize..100, n)))
        ) {
            prop_assert_eq!(xs.len(), n);
        }
    }

    #[test]
    fn runs_are_deterministic_per_test_path() {
        let mut first = Vec::new();
        super::run_cases(5, "mod::test_a", |rng, _| {
            first.push(super::Strategy::sample(&(0u64..1_000_000), rng))
        });
        let mut second = Vec::new();
        super::run_cases(5, "mod::test_a", |rng, _| {
            second.push(super::Strategy::sample(&(0u64..1_000_000), rng))
        });
        assert_eq!(first, second);
        let mut other = Vec::new();
        super::run_cases(5, "mod::test_b", |rng, _| {
            other.push(super::Strategy::sample(&(0u64..1_000_000), rng))
        });
        assert_ne!(first, other);
    }
}
