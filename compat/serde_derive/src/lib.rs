//! Derive macros for the in-tree `serde` stub.
//!
//! Supports the shapes this workspace actually uses — no generics, no
//! `#[serde(...)]` attributes:
//!
//! * structs with named fields → JSON objects
//! * one-field tuple structs (newtypes) → the inner value, transparently
//! * multi-field tuple structs → JSON arrays
//! * unit enum variants → `"Variant"` strings
//! * struct enum variants → `{"Variant": {..fields..}}` (externally tagged)
//! * tuple enum variants → `{"Variant": value}` (newtype) or `{"Variant": [..]}`
//!
//! The input item is parsed directly from the raw [`TokenStream`]; generated
//! impls are rendered as source text and re-parsed, which keeps this crate
//! free of `syn`/`quote` (unavailable offline).

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

/// What a derive input turned out to be.
enum Item {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Tuple struct with `arity` unnamed fields.
    TupleStruct { name: String, arity: usize },
    /// Unit struct.
    UnitStruct { name: String },
    /// Enum; each variant is (name, shape).
    Enum { name: String, variants: Vec<(String, VariantShape)> },
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Generates `impl serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let mut out = String::new();
    match &item {
        Item::Struct { name, fields } => {
            let mut body = String::from("let mut fields = Vec::new();\n");
            for f in fields {
                let _ = writeln!(
                    body,
                    "fields.push(({f:?}.to_string(), ::serde::Serialize::serialize(&self.{f})));"
                );
            }
            body.push_str("::serde::Value::Object(fields)");
            let _ = write!(out, "{}", impl_serialize(name, &body));
        }
        Item::TupleStruct { name, arity: 1 } => {
            let _ =
                write!(out, "{}", impl_serialize(name, "::serde::Serialize::serialize(&self.0)"));
        }
        Item::TupleStruct { name, arity } => {
            let items = (0..*arity)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            let body = format!("::serde::Value::Array(vec![{items}])");
            let _ = write!(out, "{}", impl_serialize(name, &body));
        }
        Item::UnitStruct { name } => {
            let _ = write!(out, "{}", impl_serialize(name, "::serde::Value::Null"));
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (v, shape) in variants {
                match shape {
                    VariantShape::Unit => {
                        let _ = writeln!(
                            arms,
                            "{name}::{v} => ::serde::Value::Str({v:?}.to_string()),"
                        );
                    }
                    VariantShape::Tuple(arity) => {
                        let binds =
                            (0..*arity).map(|i| format!("f{i}")).collect::<Vec<_>>().join(", ");
                        let inner = if *arity == 1 {
                            "::serde::Serialize::serialize(f0)".to_string()
                        } else {
                            let items = (0..*arity)
                                .map(|i| format!("::serde::Serialize::serialize(f{i})"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!("::serde::Value::Array(vec![{items}])")
                        };
                        let _ = writeln!(
                            arms,
                            "{name}::{v}({binds}) => ::serde::Value::Object(vec![({v:?}.to_string(), {inner})]),"
                        );
                    }
                    VariantShape::Struct(fields) => {
                        let binds = fields.join(", ");
                        let mut inner = String::from("let mut fields = Vec::new();\n");
                        for f in fields {
                            let _ = writeln!(
                                inner,
                                "fields.push(({f:?}.to_string(), ::serde::Serialize::serialize({f})));"
                            );
                        }
                        inner.push_str("::serde::Value::Object(fields)");
                        let _ = writeln!(
                            arms,
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![({v:?}.to_string(), {{ {inner} }})]),"
                        );
                    }
                }
            }
            let body = format!("match self {{\n{arms}\n}}");
            let _ = write!(out, "{}", impl_serialize(name, &body));
        }
    }
    out.parse().expect("serde_derive generated invalid Serialize impl")
}

/// Generates `impl serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let mut out = String::new();
    match &item {
        Item::Struct { name, fields } => {
            let mut body = format!(
                "if v.as_object().is_none() {{\n\
                 return Err(::serde::DeError::new(format!(\"expected object for {name}, found {{}}\", v.kind())));\n\
                 }}\nOk({name} {{\n"
            );
            for f in fields {
                let _ = writeln!(body, "{f}: ::serde::field(v, {f:?})?,");
            }
            body.push_str("})");
            let _ = write!(out, "{}", impl_deserialize(name, &body));
        }
        Item::TupleStruct { name, arity: 1 } => {
            let body = format!("Ok({name}(::serde::Deserialize::deserialize(v)?))");
            let _ = write!(out, "{}", impl_deserialize(name, &body));
        }
        Item::TupleStruct { name, arity } => {
            let mut body = format!(
                "let items = v.as_array().ok_or_else(|| ::serde::DeError::new(\
                 format!(\"expected array for {name}, found {{}}\", v.kind())))?;\n\
                 if items.len() != {arity} {{\n\
                 return Err(::serde::DeError::new(format!(\"expected {arity} elements for {name}, found {{}}\", items.len())));\n\
                 }}\nOk({name}(\n"
            );
            for i in 0..*arity {
                let _ = writeln!(body, "::serde::Deserialize::deserialize(&items[{i}])?,");
            }
            body.push_str("))");
            let _ = write!(out, "{}", impl_deserialize(name, &body));
        }
        Item::UnitStruct { name } => {
            let body = format!("Ok({name})");
            let _ = write!(out, "{}", impl_deserialize(name, &body));
        }
        Item::Enum { name, variants } => {
            // Unit variants arrive as strings; data variants as 1-key objects.
            let mut str_arms = String::new();
            let mut obj_arms = String::new();
            for (v, shape) in variants {
                match shape {
                    VariantShape::Unit => {
                        let _ = writeln!(str_arms, "{v:?} => return Ok({name}::{v}),");
                    }
                    VariantShape::Tuple(arity) => {
                        let ctor = if *arity == 1 {
                            format!("{name}::{v}(::serde::Deserialize::deserialize(inner)?)")
                        } else {
                            let mut c = format!(
                                "{{ let items = inner.as_array().ok_or_else(|| ::serde::DeError::new(\
                                 format!(\"expected array for {name}::{v}\")))?;\n\
                                 if items.len() != {arity} {{ return Err(::serde::DeError::new(\
                                 format!(\"expected {arity} elements for {name}::{v}\"))); }}\n\
                                 {name}::{v}(\n"
                            );
                            for i in 0..*arity {
                                let _ =
                                    writeln!(c, "::serde::Deserialize::deserialize(&items[{i}])?,");
                            }
                            c.push_str(") }");
                            c
                        };
                        let _ = writeln!(obj_arms, "{v:?} => return Ok({ctor}),");
                    }
                    VariantShape::Struct(fields) => {
                        let mut c = format!("{name}::{v} {{\n");
                        for f in fields {
                            let _ = writeln!(c, "{f}: ::serde::field(inner, {f:?})?,");
                        }
                        c.push('}');
                        let _ = writeln!(obj_arms, "{v:?} => return Ok({c}),");
                    }
                }
            }
            let body = format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n{str_arms}\n\
                 other => Err(::serde::DeError::new(format!(\"unknown {name} variant {{other:?}}\"))),\n}},\n\
                 ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                 let (tag, inner) = &fields[0];\n\
                 #[allow(clippy::match_single_binding)]\n\
                 match tag.as_str() {{\n{obj_arms}\n\
                 other => Err(::serde::DeError::new(format!(\"unknown {name} variant {{other:?}}\"))),\n}}\n}},\n\
                 other => Err(::serde::DeError::new(format!(\"expected {name} variant, found {{}}\", other.kind()))),\n\
                 }}"
            );
            let _ = write!(out, "{}", impl_deserialize(name, &body));
        }
    }
    out.parse().expect("serde_derive generated invalid Deserialize impl")
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}

// ---------------------------------------------------------------------------
// Token-level parsing of the derive input
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kw = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stub derive does not support generic type `{name}`");
    }

    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Struct { name, fields: parse_named_fields(g.stream()) }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct { name, arity: count_tuple_fields(g.stream()) }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum { name, variants: parse_variants(g.stream()) }
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde stub derive supports struct/enum, found `{other}`"),
    }
}

/// Advances past `#[...]` attributes (incl. doc comments) and `pub`/`pub(...)`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' and the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Splits a token run on top-level commas, treating `<...>` as nesting (angle
/// brackets are punctuation, not groups, so depth must be tracked by hand).
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    parts.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        parts.last_mut().expect("parts is never empty").push(tt);
    }
    if parts.last().is_some_and(Vec::is_empty) {
        parts.pop(); // trailing comma
    }
    parts
}

/// Field names of `{ vis name: Type, ... }`.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|part| {
            let mut i = 0;
            skip_attrs_and_vis(&part, &mut i);
            expect_ident(&part, &mut i)
        })
        .collect()
}

/// Arity of `( vis Type, ... )`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level_commas(stream).len()
}

/// Variants of `{ Name, Name(T, ..), Name { f: T, .. }, ... }`.
fn parse_variants(stream: TokenStream) -> Vec<(String, VariantShape)> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|part| {
            let mut i = 0;
            skip_attrs_and_vis(&part, &mut i);
            let name = expect_ident(&part, &mut i);
            let shape = match part.get(i) {
                None => VariantShape::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Struct(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantShape::Tuple(count_tuple_fields(g.stream()))
                }
                other => panic!("unsupported enum variant shape after `{name}`: {other:?}"),
            };
            (name, shape)
        })
        .collect()
}
