//! A minimal, dependency-free stand-in for [`serde`](https://serde.rs),
//! providing the subset this workspace uses: `#[derive(Serialize, Deserialize)]`
//! on plain structs and enums, and JSON conversion through the sibling
//! `serde_json` stub. The build environment has no network access to
//! crates.io, so the workspace vendors this compatible implementation.
//!
//! Unlike upstream serde's zero-copy visitor architecture, this stub uses a
//! concrete [`Value`] tree as the interchange format: `Serialize` renders a
//! value tree, `Deserialize` reads one. That is dramatically simpler and
//! entirely sufficient for checkpointing, run logs and experiment reports.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the interchange format between `Serialize`,
/// `Deserialize` and the `serde_json` reader/writer.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats, as upstream serde_json does).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integral values print without `.0`).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved when printing.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// One-word description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: a human-readable message with coarse path context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// A new error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// Prefixes the message with a location (field or variant name).
    pub fn context(self, what: &str) -> Self {
        DeError(format!("{what}: {}", self.0))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

/// Reads a struct field from an object, erroring with the field name.
/// Used by generated `Deserialize` impls.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(f) => T::deserialize(f).map_err(|e| e.context(name)),
        None => Err(DeError::new(format!("missing field {name:?}"))),
    }
}

// ---------------------------------------------------------------------------
// Serialize / Deserialize impls for std types
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_serde_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let n = *self as f64;
                if n.is_finite() { Value::Num(n) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            #[allow(clippy::float_cmp, clippy::cast_nan_to_int)]
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => {
                        let cast = *n as $t;
                        // Reject lossy narrowing for integer targets.
                        if !matches!(stringify!($t), "f32" | "f64") && (cast as f64) != *n {
                            return Err(DeError::new(format!(
                                "number {n} does not fit in {}", stringify!($t)
                            )));
                        }
                        Ok(cast)
                    }
                    // Upstream serde_json writes non-finite floats as null.
                    Value::Null if matches!(stringify!($t), "f32" | "f64") => Ok(f64::NAN as $t),
                    other => Err(DeError::new(format!(
                        "expected number for {}, found {}", stringify!($t), other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let s = String::deserialize(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new(format!("expected single-char string, found {s:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError::new(format!("expected array, found {}", v.kind())))?;
        items.iter().map(T::deserialize).collect()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let items = v
                    .as_array()
                    .ok_or_else(|| DeError::new(format!("expected tuple array, found {}", v.kind())))?;
                let arity = [$($idx),+].len();
                if items.len() != arity {
                    return Err(DeError::new(format!(
                        "expected {arity}-tuple, found array of {}", items.len()
                    )));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Map keys must render as JSON object keys (strings).
pub trait SerdeKey: Ord {
    /// The key as an object-key string.
    fn to_key(&self) -> String;
    /// The key parsed back from an object-key string.
    fn from_key(s: &str) -> Result<Self, DeError>
    where
        Self: Sized;
}

impl SerdeKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_string())
    }
}

macro_rules! impl_serde_key_int {
    ($($t:ty),*) => {$(
        impl SerdeKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, DeError> {
                s.parse().map_err(|_| DeError::new(format!("bad integer key {s:?}")))
            }
        }
    )*};
}
impl_serde_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: SerdeKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_key(), v.serialize())).collect())
    }
}

impl<K: SerdeKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| DeError::new(format!("expected object, found {}", v.kind())))?;
        fields.iter().map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?))).collect()
    }
}

impl<K: SerdeKey + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        // Deterministic output: sort keys like a BTreeMap would.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(entries.into_iter().map(|(k, v)| (k.to_key(), v.serialize())).collect())
    }
}

impl<K: SerdeKey + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| DeError::new(format!("expected object, found {}", v.kind())))?;
        fields.iter().map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?))).collect()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(Vec::<T>::deserialize(v)?.into_iter().collect())
    }
}

impl<T: Serialize + Ord + std::hash::Hash> Serialize for HashSet<T> {
    fn serialize(&self) -> Value {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Array(items.into_iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(Vec::<T>::deserialize(v)?.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(usize::deserialize(&7usize.serialize()).unwrap(), 7);
        assert_eq!(f32::deserialize(&1.5f32.serialize()).unwrap(), 1.5);
        assert_eq!(String::deserialize(&"hi".to_string().serialize()).unwrap(), "hi");
        assert_eq!(Option::<u8>::deserialize(&Value::Null).unwrap(), None);
        assert!(usize::deserialize(&Value::Num(1.5)).is_err(), "lossy narrowing must fail");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.serialize(), Value::Null);
        assert!(f64::deserialize(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn collections_round_trip() {
        let m: BTreeMap<String, usize> =
            [("a".to_string(), 1), ("b".to_string(), 2)].into_iter().collect();
        assert_eq!(BTreeMap::<String, usize>::deserialize(&m.serialize()).unwrap(), m);
        let h: HashMap<String, Vec<f32>> =
            [("x".to_string(), vec![1.0, 2.0])].into_iter().collect();
        assert_eq!(HashMap::<String, Vec<f32>>::deserialize(&h.serialize()).unwrap(), h);
        let t = ("k".to_string(), 3usize);
        assert_eq!(<(String, usize)>::deserialize(&t.serialize()).unwrap(), t);
    }
}
