//! A minimal stand-in for [`serde_json`](https://crates.io/crates/serde_json):
//! a strict JSON reader and a compact/pretty printer over the in-tree `serde`
//! stub's [`Value`] tree. Provides `to_string`, `to_string_pretty`, and
//! `from_str` — the full surface this workspace uses.

use serde::{DeError, Deserialize, Serialize};
use std::fmt::Write as _;

pub use serde::Value;

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// The error message.
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    print_value(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    print_value(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_strict(s)?;
    Ok(T::deserialize(&value)?)
}

/// Parses JSON text into a [`Value`] tree, requiring the full input to be
/// consumed (modulo trailing whitespace).
fn parse_value_strict(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn print_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => print_number(*n, out),
        Value::Str(s) => print_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                print_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                print_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                print_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn print_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn print_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error("unexpected end of input".to_string())),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(Error(format!("invalid literal at byte {pos}", pos = *pos)))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if matches!(bytes.get(*pos), Some(b'-')) {
        *pos += 1;
    }
    while matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| Error(format!("invalid number {text:?} at byte {start}")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error("unterminated string".to_string())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error("non-ASCII \\u escape".to_string()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error(format!("bad \\u escape {hex:?}")))?;
                        // Surrogate pairs are not produced by our printer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    other => return Err(Error(format!("bad escape {other:?}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (multi-byte aware).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error("invalid UTF-8 in string".to_string()))?;
                let c = rest.chars().next().expect("non-empty by match arm");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if matches!(bytes.get(*pos), Some(b']')) {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(Error(format!("expected ',' or ']' at byte {pos}", pos = *pos))),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if matches!(bytes.get(*pos), Some(b'}')) {
        *pos += 1;
        return Ok(Value::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if !matches!(bytes.get(*pos), Some(b'"')) {
            return Err(Error(format!("expected object key at byte {pos}", pos = *pos)));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if !matches!(bytes.get(*pos), Some(b':')) {
            return Err(Error(format!("expected ':' at byte {pos}", pos = *pos)));
        }
        *pos += 1;
        fields.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            _ => return Err(Error(format!("expected ',' or '}}' at byte {pos}", pos = *pos))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_text() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::Str("a \"quoted\"\nline".to_string())),
            ("xs".to_string(), Value::Array(vec![Value::Num(1.0), Value::Num(-2.5)])),
            ("flag".to_string(), Value::Bool(true)),
            ("none".to_string(), Value::Null),
            ("unicode".to_string(), Value::Str("naïve — ∞".to_string())),
        ]);
        let compact = to_string(&v).unwrap();
        let parsed: Value = from_str(&compact).unwrap();
        assert_eq!(parsed, v);
        let pretty = to_string_pretty(&v).unwrap();
        let parsed: Value = from_str(&pretty).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(to_string(&vec![1usize, 42]).unwrap(), "[1,42]");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[0.1f32, -3.25e-7, f32::MAX, f32::MIN_POSITIVE] {
            let s = to_string(&x).unwrap();
            let back: f32 = from_str(&s).unwrap();
            assert_eq!(back, x, "{s}");
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }
}
