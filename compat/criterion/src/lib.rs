//! A minimal stand-in for [`criterion`](https://crates.io/crates/criterion):
//! wall-clock micro-benchmarks with per-sample median/mean reporting, the
//! API subset this workspace's `benches/` use. No statistical regression
//! testing — each benchmark prints `name  time: [median]  (mean, n samples)`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        run_benchmark(name, self.sample_size, f);
    }
}

/// A named set of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.0), self.criterion.sample_size, f);
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.0), self.criterion.sample_size, |b| {
            f(b, input)
        });
    }

    /// Ends the group (drop would do; mirrors the upstream API).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally `function/parameter`-shaped.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the payload.
pub struct Bencher {
    /// Duration of the most recent timed batch.
    sample: Duration,
    /// Iterations per timed batch (chosen during warm-up).
    iters: u64,
}

impl Bencher {
    /// Times `f`, running it enough times for a stable wall-clock reading.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.sample = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // Warm-up: find an iteration count putting one batch near ~2 ms.
    let mut bencher = Bencher { sample: Duration::ZERO, iters: 1 };
    loop {
        f(&mut bencher);
        if bencher.sample >= Duration::from_millis(2) || bencher.iters >= 1 << 20 {
            break;
        }
        bencher.iters *= 4;
    }

    let mut per_iter: Vec<f64> = (0..sample_size)
        .map(|_| {
            f(&mut bencher);
            bencher.sample.as_secs_f64() / bencher.iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{name:<40} time: [{}]   mean {}   ({sample_size} samples x {} iters)",
        format_time(median),
        format_time(mean),
        bencher.iters,
    );
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Declares a group of benchmark functions (both upstream forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                {
                    let mut criterion: $crate::Criterion = $cfg;
                    $target(&mut criterion);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("demo");
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| {
                runs += 1;
                (0..n).sum::<u64>()
            })
        });
        group.finish();
        assert!(runs > 0, "payload must actually execute");
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).0, "7");
    }
}
