//! A minimal, dependency-free stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, providing exactly the API subset this workspace uses. The build
//! environment has no network access to crates.io, so the workspace vendors
//! this compatible implementation instead.
//!
//! Implemented surface:
//! * [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! * [`rngs::StdRng`] — xoshiro256** seeded via SplitMix64 (deterministic,
//!   high-quality; **not** the same stream as upstream `StdRng`)
//! * [`rngs::mock::StepRng`] — arithmetic-sequence generator for tests
//! * [`seq::SliceRandom`] — `choose` and Fisher–Yates `shuffle`
//!
//! Streams differ from upstream `rand`; everything in-tree only relies on
//! determinism for a fixed seed, not on upstream-exact sequences.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit generator.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Uniform sampling of a "standard" value: `f32`/`f64` in `[0, 1)`, full-range
/// integers. Mirrors `rand::distributions::Standard` for `rng.gen()`.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 random bits scaled into [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Element types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128 + inclusive as i128) as u128;
                assert!(span > 0, "cannot sample empty range");
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// A range understood by [`Rng::gen_range`]. The blanket impls tie the range's
/// element type to the sampled type, which is what lets integer-literal ranges
/// (`rng.gen_range(2..95)`) infer without annotations.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A standard draw: floats in `[0, 1)`, full-range integers.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seeding. Fast, passes statistical test batteries, deterministic.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// A small generator; alias of [`StdRng`] here.
    pub type SmallRng = StdRng;

    pub mod mock {
        //! Deterministic mock generators for tests.

        use crate::RngCore;

        /// Yields `start`, `start + step`, `start + 2·step`, … (wrapping).
        #[derive(Clone, Debug)]
        pub struct StepRng {
            next: u64,
            step: u64,
        }

        impl StepRng {
            /// A generator counting from `start` by `step`.
            pub fn new(start: u64, step: u64) -> Self {
                StepRng { next: start, step }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let v = self.next;
                self.next = self.next.wrapping_add(self.step);
                v
            }
        }
    }
}

pub mod seq {
    //! Sequence-related randomization.

    use super::{Rng, RngCore};

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f32 = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}/10000 at p=0.25");
    }

    #[test]
    fn shuffle_permutes_and_choose_covers() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(Vec::<usize>::new().choose(&mut rng).is_none());
        let picks: std::collections::BTreeSet<usize> =
            (0..200).map(|_| *[1usize, 2, 3].choose(&mut rng).unwrap()).collect();
        assert_eq!(picks.len(), 3);
    }

    #[test]
    fn step_rng_counts() {
        let mut rng = StepRng::new(5, 2);
        use crate::RngCore;
        assert_eq!(rng.next_u64(), 5);
        assert_eq!(rng.next_u64(), 7);
    }
}
