//! The informal-text scenario from the survey's motivation (§5.1): a model
//! trained on clean newswire meets user-generated content (typos, slang,
//! lost casing, hashtags) — and the standard mitigation, transfer learning
//! into the noisy domain (§4.2).
//!
//! ```text
//! cargo run --release -p ner-examples --bin social_media
//! ```

use ner_applied::transfer::{transfer_train, TransferScheme};
use ner_core::prelude::*;
use ner_corpus::noise::{corrupt_dataset, NoiseModel};
use ner_corpus::{GeneratorConfig, NewsGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(17);
    let gen = NewsGenerator::new(GeneratorConfig::default());

    // Source domain: clean newswire. Target domain: the same text through
    // the W-NUT-style noise channel.
    let source_train = gen.dataset(&mut rng, 300);
    let target_train =
        corrupt_dataset(&gen.dataset(&mut rng, 40), &NoiseModel::social_media(), &mut rng);
    let target_test =
        corrupt_dataset(&gen.dataset(&mut rng, 120), &NoiseModel::social_media(), &mut rng);

    println!("clean:  {}", source_train.sentences[0].render_brackets());
    println!("noisy:  {}", target_test.sentences[0].render_brackets());

    let cfg = NerConfig::default();
    let encoder = SentenceEncoder::from_dataset(&source_train, cfg.scheme, 1);
    let source_enc = encoder.encode_dataset(&source_train, None);
    let tgt_train_enc = encoder.encode_dataset(&target_train, None);
    let tgt_test_enc = encoder.encode_dataset(&target_test, None);

    println!("\ntraining the newswire model ...");
    let mut source_model = NerModel::new(cfg.clone(), &encoder, None, &mut rng);
    ner_core::trainer::train(
        &mut source_model,
        &source_enc,
        None,
        &TrainConfig::default(),
        &mut rng,
    );

    let clean_f1 = {
        let clean_test = encoder.encode_dataset(&gen.dataset(&mut rng, 120), None);
        evaluate_model(&source_model, &clean_test).micro.f1
    };
    let zero_shot = evaluate_model(&source_model, &tgt_test_enc).micro.f1;
    println!(
        "newswire F1 {:.1}%  →  social-media F1 {:.1}% (the §5.1 gap)",
        100.0 * clean_f1,
        100.0 * zero_shot
    );

    println!("\nfine-tuning on 40 noisy sentences (transfer, §4.2) ...");
    let tc = TrainConfig { epochs: 6, patience: None, ..TrainConfig::default() };
    let (tuned, _) = transfer_train(
        &cfg,
        &encoder,
        Some(&source_model),
        &tgt_train_enc,
        TransferScheme::FineTuneAll,
        None,
        &tc,
        &mut rng,
    );
    let (scratch, _) = transfer_train(
        &cfg,
        &encoder,
        None,
        &tgt_train_enc,
        TransferScheme::FromScratch,
        None,
        &tc,
        &mut rng,
    );
    println!(
        "social-media F1 after fine-tuning:   {:.1}%",
        100.0 * evaluate_model(&tuned, &tgt_test_enc).micro.f1
    );
    println!(
        "social-media F1 training from scratch: {:.1}%",
        100.0 * evaluate_model(&scratch, &tgt_test_enc).micro.f1
    );

    // Show the fine-tuned model reading a tweetish line.
    let pipeline = NerPipeline::new(encoder, tuned);
    let tweet = "omg sarah chen just landed in #brooklyn w/ da acme corp crew";
    println!("\nin : {tweet}");
    println!("out: {}", pipeline.extract(tweet).render_brackets());
}
