//! The "new paradigm" of the survey (§3.3.5): pretrain language models on
//! unlabeled text, then feed their contextual representations to a small
//! tagger. Walks through all four pretraining regimes in this workspace
//! (skip-gram static vectors, char-LM contextual strings, ELMo-lite,
//! BERT-lite) on a low-resource NER task.
//!
//! ```text
//! cargo run --release -p ner-examples --bin pretrain_and_finetune
//! ```

use ner_core::config::{CharRepr, EncoderKind, NerConfig, WordRepr};
use ner_core::prelude::*;
use ner_corpus::{GeneratorConfig, NewsGenerator};
use ner_embed::bert_lite::{BertConfig, BertLite};
use ner_embed::charlm::{CharLm, CharLmConfig};
use ner_embed::elmo::{ElmoConfig, ElmoLm};
use ner_embed::skipgram::{self, SkipGramConfig};
use ner_embed::ContextualEmbedder;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tagger_f1(
    train: &Dataset,
    test: &Dataset,
    pretrained: Option<&ner_embed::WordEmbeddings>,
    ctx: Option<&dyn ContextualEmbedder>,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut encoder = SentenceEncoder::from_dataset(train, TagScheme::Bio, 1);
    if let Some(emb) = pretrained {
        encoder = encoder.with_pretrained_vocab(emb);
    }
    let cfg = NerConfig {
        scheme: TagScheme::Bio,
        word: if pretrained.is_some() {
            WordRepr::Pretrained { fine_tune: true }
        } else {
            WordRepr::Random { dim: 24 }
        },
        char_repr: CharRepr::None,
        encoder: EncoderKind::Lstm { hidden: 32, bidirectional: true, layers: 1 },
        context_dim: ctx.map_or(0, |c| c.dim()),
        ..NerConfig::default()
    };
    let mut model = NerModel::new(cfg, &encoder, pretrained, &mut rng);
    let train_enc = encoder.encode_dataset(train, ctx);
    ner_core::trainer::train(&mut model, &train_enc, None, &TrainConfig::default(), &mut rng);
    evaluate_model(&model, &encoder.encode_dataset(test, ctx)).micro.f1
}

fn main() {
    let mut rng = StdRng::seed_from_u64(31);
    let gen = NewsGenerator::new(GeneratorConfig::default());

    // Plenty of unlabeled text, very little labeled data.
    let lm_corpus = gen.lm_sentences(&mut rng, 1000);
    let train_ds = gen.dataset(&mut rng, 60);
    let test_ds =
        NewsGenerator::new(GeneratorConfig { unseen_entity_rate: 0.4, ..Default::default() })
            .dataset(&mut rng, 120);
    println!(
        "{} unlabeled sentences, {} labeled training sentences\n",
        lm_corpus.len(),
        train_ds.len()
    );

    println!("[1/4] skip-gram static vectors ...");
    let skip = skipgram::train(
        &lm_corpus,
        &SkipGramConfig { dim: 32, epochs: 5, min_count: 1, ..Default::default() },
        &mut rng,
    );
    println!("[2/4] char-LM contextual strings ...");
    let (charlm, _) = CharLm::train(
        &lm_corpus[..700],
        &CharLmConfig { hidden: 48, dim: 24, epochs: 3, ..Default::default() },
        &mut rng,
    );
    println!("[3/4] ELMo-lite biLSTM LM ...");
    let (elmo, _) =
        ElmoLm::train(&lm_corpus, &ElmoConfig { epochs: 3, ..Default::default() }, &mut rng);
    println!("[4/4] BERT-lite masked-LM transformer ...");
    let (bert, _) =
        BertLite::train(&lm_corpus, &BertConfig { epochs: 3, ..Default::default() }, &mut rng);

    println!("\ndownstream tagger F1 on unseen-entity test (60 labeled sentences):");
    println!(
        "  random init:             {:.1}%",
        100.0 * tagger_f1(&train_ds, &test_ds, None, None, 1)
    );
    println!(
        "  + skip-gram vectors:     {:.1}%",
        100.0 * tagger_f1(&train_ds, &test_ds, Some(&skip), None, 1)
    );
    println!(
        "  + char-LM contextual:    {:.1}%",
        100.0 * tagger_f1(&train_ds, &test_ds, None, Some(&charlm), 1)
    );
    println!(
        "  + ELMo-lite contextual:  {:.1}%",
        100.0 * tagger_f1(&train_ds, &test_ds, None, Some(&elmo), 1)
    );
    println!(
        "  + BERT-lite contextual:  {:.1}%",
        100.0 * tagger_f1(&train_ds, &test_ds, None, Some(&bert), 1)
    );
    println!("\nThe survey's §3.3.5 conclusion: pretrained contextual representations are the");
    println!("new paradigm — they carry most of the lift when labeled data is scarce.");
}
