//! A simulated annotation campaign (§4.3): you have a large unlabeled pool
//! and a fixed labeling budget — which sentences should the annotators do
//! first? Compares MNLP uncertainty sampling against random selection, the
//! way an annotation tool built on this library would drive its queue.
//!
//! ```text
//! cargo run --release -p ner-examples --bin active_annotation
//! ```

use ner_applied::active::{rank_pool, run, Strategy};
use ner_core::prelude::*;
use ner_corpus::{GeneratorConfig, NewsGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(23);
    let gen = NewsGenerator::new(GeneratorConfig::default());
    let pool_ds = gen.dataset(&mut rng, 240);
    let test_ds =
        NewsGenerator::new(GeneratorConfig { unseen_entity_rate: 0.4, ..Default::default() })
            .dataset(&mut rng, 120);

    let cfg = NerConfig::default();
    let encoder = SentenceEncoder::from_dataset(&pool_ds, cfg.scheme, 1);
    let pool = encoder.encode_dataset(&pool_ds, None);
    let test = encoder.encode_dataset(&test_ds, None);

    let budgets = [12, 36, 60, 120];
    println!("annotation budgets: {budgets:?} of {} pool sentences\n", pool.len());

    for strategy in [Strategy::Random, Strategy::LeastConfidence] {
        let mut rng = StdRng::seed_from_u64(24);
        let model = NerModel::new(cfg.clone(), &encoder, None, &mut rng);
        let (result, final_model) = run(model, &pool, &test, strategy, &budgets, 4, &mut rng);
        println!("strategy {strategy:?}:");
        for point in &result.curve {
            println!(
                "  after {:>3} annotations ({:>5.1}% of pool): test F1 {:.1}%",
                point.annotated,
                100.0 * point.fraction,
                100.0 * point.test_f1
            );
        }
        // Show what the strategy would ask the annotator for NEXT.
        if strategy == Strategy::LeastConfidence {
            let all: Vec<usize> = (0..pool.len()).collect();
            let ranked = rank_pool(&final_model, &pool, &all, strategy, &mut rng);
            println!("  next sentences the model is least sure about:");
            for &i in ranked.iter().take(3) {
                println!(
                    "    (conf {:>7.3}) {}",
                    final_model.confidence(&pool[i]),
                    pool_ds.sentences[i].render_brackets()
                );
            }
        }
        println!();
    }
    println!("Uncertainty sampling reaches the same F1 with a fraction of the annotations —");
    println!("the paper reports 99% of full-data performance at ~25% of the data (§4.3).");
}
