//! Quickstart: train the survey's workhorse architecture (char-CNN + word
//! embeddings → BiLSTM → CRF) on a generated news corpus and run it on the
//! paper's own Fig. 1 example sentence.
//!
//! ```text
//! cargo run --release -p ner-examples --bin quickstart
//! ```

use ner_core::prelude::*;
use ner_corpus::{GeneratorConfig, NewsGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // 1. Data: a synthetic CoNLL-analog news corpus (see DESIGN.md §1).
    let gen = NewsGenerator::new(GeneratorConfig::default());
    let train_ds = gen.dataset(&mut rng, 300);
    let dev_ds = gen.dataset(&mut rng, 80);
    println!("generated {} training / {} dev sentences", train_ds.len(), dev_ds.len());
    println!("sample: {}", train_ds.sentences[0].render_brackets());

    // 2. Model: the default config IS the survey's dominant architecture.
    let encoder = SentenceEncoder::from_dataset(&train_ds, TagScheme::Bioes, 1);
    let cfg = NerConfig::default();
    println!("\narchitecture: {}", cfg.signature());
    let mut model = NerModel::new(cfg, &encoder, None, &mut rng);
    println!("parameters: {}", model.num_params());

    // 3. Train with dev-based early stopping.
    let train_enc = encoder.encode_dataset(&train_ds, None);
    let dev_enc = encoder.encode_dataset(&dev_ds, None);
    let report = ner_core::trainer::train(
        &mut model,
        &train_enc,
        Some(&dev_enc),
        &TrainConfig::default(),
        &mut rng,
    );
    for e in &report.epochs {
        println!(
            "epoch {:>2}  loss {:>8.4}  dev-F1 {}",
            e.epoch,
            e.train_loss,
            e.dev_f1.map_or("-".to_string(), |f| format!("{:.1}%", 100.0 * f))
        );
    }

    // 4. Extract entities from raw text — the paper's Fig. 1 sentence.
    let pipeline = NerPipeline::new(encoder, model);
    for text in [
        "Michael Jeffrey Jordan was born in Brooklyn, New York.",
        "Shares of Acme Corp fell 7 percent in London trading on Monday.",
        "The French striker joined Quantum Industries from Helios Labs.",
    ] {
        let annotated = pipeline.extract(text);
        println!("\nin : {text}");
        println!("out: {}", annotated.render_brackets());
    }
}
