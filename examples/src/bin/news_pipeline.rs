//! A fuller newsroom pipeline: pretrained word embeddings, hybrid features
//! and a gazetteer feeding a BiLSTM-CRF; evaluation with the paper's full
//! metric suite (exact micro/macro, relaxed MUC-style, per-type breakdown)
//! plus a worked error analysis on the hardest sentences.
//!
//! ```text
//! cargo run --release -p ner-examples --bin news_pipeline
//! ```

use ner_core::config::{CharRepr, NerConfig, WordRepr};
use ner_core::prelude::*;
use ner_corpus::{GeneratorConfig, NewsGenerator};
use ner_embed::skipgram::{self, SkipGramConfig};
use ner_text::Gazetteer;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let gen = NewsGenerator::new(GeneratorConfig::default());

    // Pretrain word embeddings on unlabeled text (the Word2Vec analog).
    println!("pretraining skip-gram embeddings ...");
    let lm_corpus = gen.lm_sentences(&mut rng, 1500);
    let embeddings = skipgram::train(
        &lm_corpus,
        &SkipGramConfig { dim: 32, epochs: 5, min_count: 1, ..Default::default() },
        &mut rng,
    );
    println!("nearest to 'brooklyn': {:?}", embeddings.nearest("brooklyn", 3));

    // Annotated data + a gazetteer compiled from the training annotations.
    let train_ds = gen.dataset(&mut rng, 300);
    let test_gen =
        NewsGenerator::new(GeneratorConfig { unseen_entity_rate: 0.4, ..Default::default() });
    let test_ds = test_gen.dataset(&mut rng, 150);
    let mut gazetteer = Gazetteer::new();
    for s in &train_ds.sentences {
        for e in &s.entities {
            let toks: Vec<&str> =
                s.tokens[e.start..e.end].iter().map(|t| t.text.as_str()).collect();
            gazetteer.add(e.coarse_label(), &toks);
        }
    }
    println!("gazetteer: {} phrases over {:?}", gazetteer.len(), gazetteer.types());

    let encoder = SentenceEncoder::from_dataset(&train_ds, TagScheme::Bioes, 1)
        .with_pretrained_vocab(&embeddings)
        .with_features(true)
        .with_gazetteer(gazetteer);
    let cfg = NerConfig {
        word: WordRepr::Pretrained { fine_tune: true },
        char_repr: CharRepr::Cnn { dim: 16, filters: 16 },
        use_features: true,
        use_gazetteer: true,
        ..NerConfig::default()
    };
    println!("architecture: {}", cfg.signature());

    let mut model = NerModel::new(cfg, &encoder, Some(&embeddings), &mut rng);
    let train_enc = encoder.encode_dataset(&train_ds, None);
    ner_core::trainer::train(&mut model, &train_enc, None, &TrainConfig::default(), &mut rng);

    // Full metric suite (paper §2.3).
    let test_enc = encoder.encode_dataset(&test_ds, None);
    let result = evaluate_model(&model, &test_enc);
    println!("\n== evaluation (unseen-entity test set) ==");
    println!(
        "exact micro:   P {:.1}%  R {:.1}%  F1 {:.1}%",
        100.0 * result.micro.precision,
        100.0 * result.micro.recall,
        100.0 * result.micro.f1
    );
    println!("exact macro-F1: {:.1}%", 100.0 * result.macro_f1);
    println!("relaxed type (MUC): F1 {:.1}%", 100.0 * result.relaxed_type.f1);
    println!("boundary only:      F1 {:.1}%", 100.0 * result.boundary.f1);
    for (ty, prf) in &result.per_type {
        println!(
            "  {ty:<6} P {:.1}%  R {:.1}%  F1 {:.1}%",
            100.0 * prf.precision,
            100.0 * prf.recall,
            100.0 * prf.f1
        );
    }

    // Error analysis: show the sentences with the most disagreements.
    println!("\n== hardest sentences ==");
    let mut scored: Vec<(usize, usize)> = test_enc
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let pred = model.predict_spans(e);
            let misses = e.gold.iter().filter(|g| !pred.contains(g)).count()
                + pred.iter().filter(|p| !e.gold.contains(p)).count();
            (i, misses)
        })
        .collect();
    scored.sort_by_key(|&(_, m)| std::cmp::Reverse(m));
    for &(i, misses) in scored.iter().take(3) {
        if misses == 0 {
            break;
        }
        let sent = &test_ds.sentences[i];
        let pred = model.predict_spans(&test_enc[i]);
        println!("({misses} errors)");
        println!("  gold: {}", sent.render_brackets());
        let pred_sent = Sentence { tokens: sent.tokens.clone(), entities: pred };
        println!("  pred: {}", pred_sent.render_brackets());
    }
}
